"""Shim so `pip install -e .` works offline with legacy setuptools (no wheel)."""
from setuptools import setup

setup()
