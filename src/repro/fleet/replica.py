"""``python -m repro.fleet.replica``: one serving-fleet replica process.

Boots the PR-8 asyncio server (:class:`repro.serve.aio.AsyncPredictionServer`)
on its own port, loading the checkpoint with ``mmap_mode="r"`` by default
so all co-located replicas share one copy of the bulk checkpoint data
through the OS page cache.

The replica binds port 0 (the kernel picks a free port) and reports its
address by atomically writing a JSON state file::

    {"host": "...", "port": 12345, "pid": 4242}

The supervisor polls for that file, then health-probes the address before
admitting the replica to the router's hash ring.  SIGTERM/SIGINT request
a clean drain-and-exit; SIGKILL (what the drill uses) is the crash case
the supervisor must detect and repair.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-fleet-replica")
    parser.add_argument("--checkpoint", required=True)
    parser.add_argument("--state-file", required=True,
                        help="JSON file to write the bound address into")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument("--micro-batch", type=int, default=256)
    parser.add_argument("--no-mmap", action="store_true",
                        help="materialize the checkpoint privately instead "
                             "of memory-mapping it")
    parser.add_argument("--max-batch-size", type=int, default=256)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--queue-depth", type=int, default=4096)
    return parser


async def _amain(args: argparse.Namespace) -> int:
    from ..resilience import atomic_write_text
    from ..serve import InferenceEngine
    from ..serve.aio import AsyncPredictionServer, BatchSettings

    engine = InferenceEngine.from_checkpoint(
        args.checkpoint, cache_size=args.cache_size,
        micro_batch=args.micro_batch,
        mmap_mode=None if args.no_mmap else "r",
    )
    settings = BatchSettings(max_batch_size=args.max_batch_size,
                             max_wait_ms=args.max_wait_ms,
                             max_queue_depth=args.queue_depth)
    app = AsyncPredictionServer(engine, settings=settings)
    host, port = await app.start(args.host, args.port)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    # Address goes out only after the listener is accepting, so a state
    # file's existence always implies a connectable socket.
    atomic_write_text(args.state_file, json.dumps(
        {"host": host, "port": port, "pid": os.getpid()}))

    await stop.wait()
    await app.stop()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    raise SystemExit(main())
