"""Warm-standby router: mirror, lease, take over (DESIGN §18).

The :class:`~repro.fleet.router.FleetRouter` is the fleet's only public
address, which made it the last single point of failure.  This module
removes it with a two-node active/standby pair over the DESIGN §18
transport:

- the **active** router serves the public port and exposes its
  membership op log through :class:`RouterControl` (one ``sync`` RPC);
- the **standby** (:class:`RouterStandby`) keeps a warm mirror
  :class:`~repro.fleet.router.FleetRouter` — same ring seed, same vnode
  count, membership replayed from the op log — and treats each
  successful sync as a renewal of the active's **lease**;
- when the lease expires (the active died, or is partitioned badly
  enough that it can no longer prove liveness), the standby binds the
  *same public host:port* — retrying until the dead active's socket is
  released — and starts serving.  Identical ring seed + replayed
  membership means the promoted router computes the same affinity
  placements the active would have, so replica caches stay warm through
  the failover.

Clients never learn any of this happened: the public address is
unchanged, and the connection-refused window between death and takeover
is shorter than a client's retry budget
(:data:`repro.fleet.client.CLIENT_RETRIES`), so a router kill under
load completes with zero failed requests — which is exactly what the
``router-failover`` drill asserts.

Split-brain note: the standby only promotes when the active has stopped
answering *its own control port* for a full lease TTL, and it takes the
public port by binding it — the OS will not let both serve the same
address, so the port itself is the arbiter of who is active.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Tuple

from .router import BackgroundRouter, FleetRouter
from .transport import (CallTimeout, LeaseTable, PeerDead, RpcClient,
                        RpcError, RpcServer, backoff_delays)

__all__ = ["RouterControl", "RouterStandby"]

#: Default lease the active must keep renewing (by answering syncs).
ACTIVE_LEASE_TTL = 0.75
#: Standby sync cadence; several fit inside one TTL so one lost sync
#: does not trigger a takeover.
SYNC_INTERVAL = 0.15
#: Per-sync RPC deadline — well under the TTL, so a hung active cannot
#: stall the standby past its own detection window.
SYNC_DEADLINE = 0.5
#: How long the standby keeps retrying to bind the public port.
TAKEOVER_DEADLINE = 30.0


class RouterControl:
    """Active-side control endpoint: serves the membership op log.

    Deliberately tiny — one read-only method — so the standby's view of
    the active is exactly "answers syncs with a growing op log".  The
    RPC port doubles as the active's liveness signal: this server dying
    with the router is what lets the standby detect a whole-process
    death with no extra machinery.
    """

    def __init__(self, router: FleetRouter, *,
                 host: str = "127.0.0.1") -> None:
        self.router = router
        self._server = RpcServer({"sync": self._handle_sync}, host=host)
        self._started = False

    def start(self) -> Tuple[str, int]:
        address = self._server.start()
        self._started = True
        return address

    def stop(self) -> None:
        if self._started:
            self._server.stop()
            self._started = False

    def _handle_sync(self, payload: dict) -> dict:
        seq, ops = self.router.membership_since(int(payload.get("since", 0)))
        return {"seq": seq, "ops": ops}


class RouterStandby:
    """Warm mirror of the active router, promoted on lease expiry."""

    def __init__(self, control_addr: Tuple[str, int],
                 public_addr: Tuple[str, int], *,
                 ring_seed: int = 0, vnodes: int = 64,
                 status_provider: Optional[Callable[[], dict]] = None,
                 reload_handler: Optional[Callable[[str], dict]] = None,
                 lease_ttl: float = ACTIVE_LEASE_TTL,
                 sync_interval: float = SYNC_INTERVAL,
                 on_promote: Optional[
                     Callable[["RouterStandby"], None]] = None,
                 jitter_seed: Optional[int] = None) -> None:
        # The mirror must be ring-identical to the active (same seed,
        # same vnodes) or the promoted router would re-shuffle affinity
        # and cold-start every replica cache.
        self.router = FleetRouter(ring_seed=ring_seed, vnodes=vnodes,
                                  status_provider=status_provider,
                                  reload_handler=reload_handler)
        self._control_addr = control_addr
        self._public_addr = public_addr
        self._leases = LeaseTable(lease_ttl)
        self._sync_interval = float(sync_interval)
        self._on_promote = on_promote
        self._jitter_seed = jitter_seed
        self._synced_seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None  # not-guarded: start/stop only, one control thread
        self._bg: Optional[BackgroundRouter] = None  # not-guarded: written by the standby thread before `promoted` is set
        #: Set once the standby is serving the public port.
        self.promoted = threading.Event()
        #: Lease-expiry → serving latency of the takeover, for the bench.
        self.takeover_seconds: Optional[float] = None
        self.syncs = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._leases.grant("active")  # the active gets one full TTL to speak
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-router-standby")
        self._thread.start()

    def stop(self, timeout: float = 15.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        if self._bg is not None:
            self._bg.shutdown(timeout=timeout)
            self._bg = None

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        client = RpcClient(self._control_addr[0], self._control_addr[1],
                           jitter_seed=self._jitter_seed)
        try:
            while not self._stop.is_set():
                try:
                    resp = client.call("sync", {"since": self._synced_seq},
                                       deadline=SYNC_DEADLINE)
                except (PeerDead, CallTimeout, RpcError):  # noqa: R005 — the lease decides, not one failure
                    pass
                else:
                    self.router.apply_membership(resp.get("ops", []))
                    self._synced_seq = int(resp.get("seq", self._synced_seq))
                    self._leases.renew("active")
                    self.syncs += 1
                if not self._leases.held("active"):
                    self._take_over()
                    return
                self._stop.wait(self._sync_interval)
        finally:
            client.close()

    def _take_over(self) -> None:
        """Bind the public address the dead active was serving.

        The active's listening socket may take a beat to be released
        (the OS, not us, owns that timing), so binding retries with
        seeded jittered backoff up to :data:`TAKEOVER_DEADLINE`.
        """
        t0 = time.monotonic()
        delays = backoff_delays(0.02, 0.5, seed=self._jitter_seed)
        deadline = t0 + TAKEOVER_DEADLINE
        while not self._stop.is_set():
            bg = BackgroundRouter(self.router, self._public_addr[0],
                                  self._public_addr[1])
            try:
                bg.start(timeout=10.0)
            except RuntimeError:
                bg.shutdown(timeout=5.0)
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"standby could not bind "
                        f"{self._public_addr} within "
                        f"{TAKEOVER_DEADLINE}s of lease expiry")
                time.sleep(next(delays))
                continue
            self._bg = bg
            self.takeover_seconds = time.monotonic() - t0
            self.promoted.set()
            if self._on_promote is not None:
                self._on_promote(self)
            return