"""Fault-hardened TCP message transport for the fleet (DESIGN §18).

Everything the fleet does across a machine boundary — gradient exchange,
membership mirroring, router failover — rides this stdlib-only layer.
Its design rules, in order of importance:

1. **Every wait is bounded.**  Sockets are created with ``settimeout``
   (analyzer rule A007), every RPC carries a per-call deadline, and the
   only two terminal outcomes a caller can see are explicit:
   :class:`CallTimeout` (the peer exists but did not answer in time) and
   :class:`PeerDead` (no connection could be established within the
   deadline).  There is no code path that blocks forever on a dead peer.
2. **Corruption is loud.**  Frames are length-prefixed with a magic
   marker, a format version, a per-connection sequence number, and a
   CRC-32 of the payload.  Truncated, bit-flipped, replayed, or garbage
   bytes raise :class:`CodecError` — never a silent mis-parse, never an
   unbounded read hunting for a resync point.  A connection that errors
   is torn down; the client reconnects with capped, jittered backoff and
   re-sends (all fleet RPCs are idempotent or server-side deduplicated).
3. **Zombies are fenced.**  Membership and work assignment carry
   monotonic *fencing generations* (:class:`FenceRegistry`): when a
   member is declared dead and replaced, its generation is advanced, and
   any message its not-actually-dead predecessor later delivers fails
   the fence check instead of corrupting state.  Liveness itself is
   lease-based (:class:`LeaseTable`): a member that stops renewing is
   drained *before* anything it might still write is trusted.

Wire format (one frame)::

    offset  size  field
    0       2     magic  b"RF"
    2       1     version (1)
    3       1     flags (reserved, must be 0)
    4       4     sequence number, big-endian (per connection, from 0)
    8       4     payload length, big-endian
    12      4     CRC-32 of the payload, big-endian
    16      n     payload (one packed message)

Messages are JSON metadata plus zero-copy ``ndarray`` blobs: the packer
walks the object tree, swaps each array for a placeholder, and appends
``(dtype, shape, bytes)`` blobs after the JSON — so a float64 gradient
crosses the wire bit-exactly, which is what lets the TCP all-reduce
reproduce the shared-memory trajectory *bitwise*.

:class:`FaultyTransport` is a frame-aware TCP proxy for drills: it
decodes the stream, fires the ``fleet.transport.frame`` fault site per
frame, and honours drop / delay / duplicate / partition decisions made
by an armed :class:`~repro.resilience.faults.FaultInjector` — so every
failure mode this module defends against is a repeatable, seeded test.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..resilience import faults

__all__ = [
    "CodecError",
    "CallTimeout",
    "PeerDead",
    "Codec",
    "FrameDecoder",
    "FenceRegistry",
    "LeaseTable",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "FaultyTransport",
    "FrameEvent",
    "backoff_delays",
    "pack_message",
    "unpack_message",
]

MAGIC = b"RF"
VERSION = 1
HEADER = struct.Struct(">2sBBIII")  # magic, version, flags, seq, len, crc
#: Frames larger than this are rejected outright — a corrupt length
#: field must not turn into an attempted multi-gigabyte read.
MAX_FRAME = 256 * 1024 * 1024
#: Default per-call deadline when the caller does not pass one.
DEFAULT_DEADLINE = 10.0
#: Reconnect backoff shape (first delay / cap), jittered per client.
RECONNECT_INITIAL = 0.05
RECONNECT_CAP = 1.0


class CodecError(Exception):
    """The byte stream is not a valid frame sequence (torn/garbage/replay)."""


class CallTimeout(Exception):
    """The peer accepted the connection but no response arrived in time."""


class PeerDead(Exception):
    """No connection could be established within the caller's deadline."""


# ----------------------------------------------------------------------
# Backoff with jitter
# ----------------------------------------------------------------------
def backoff_delays(initial: float, cap: float, *, factor: float = 2.0,
                   jitter: float = 0.5,
                   seed: Optional[int] = None) -> Iterator[float]:
    """Yield capped exponential backoff delays with seeded jitter.

    The n-th base delay is ``min(cap, initial * factor**n)``; the yielded
    delay is drawn uniformly from ``[base * (1 - jitter), base]``.  A
    fixed ``seed`` makes the sequence deterministic (timing tests pin
    it); distinct seeds de-correlate peers so N replicas restarting
    together do not re-probe in thundering-herd lockstep.
    """
    if initial <= 0 or cap <= 0:
        raise ValueError("backoff initial and cap must be positive")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = 0
    while True:
        base = min(cap, initial * (factor ** n))
        yield float(base * (1.0 - jitter * rng.random()))
        n += 1


# ----------------------------------------------------------------------
# Message packing: JSON metadata + raw ndarray blobs
# ----------------------------------------------------------------------
_ND_KEY = "__nd__"


def _strip_arrays(obj: Any, blobs: List[np.ndarray]) -> Any:
    """Replace every ndarray in ``obj`` with a blob-index placeholder."""
    if isinstance(obj, np.ndarray):
        blobs.append(np.ascontiguousarray(obj))
        return {_ND_KEY: len(blobs) - 1}
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise CodecError(f"message dict keys must be str, "
                                 f"got {type(key).__name__}")
            if key == _ND_KEY:
                raise CodecError(f"key {_ND_KEY!r} is reserved")
            out[key] = _strip_arrays(value, blobs)
        return out
    if isinstance(obj, (list, tuple)):
        return [_strip_arrays(v, blobs) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise CodecError(f"unsupported message type: {type(obj).__name__}")


def _restore_arrays(obj: Any, blobs: List[np.ndarray]) -> Any:
    if isinstance(obj, dict):
        if set(obj) == {_ND_KEY}:
            idx = obj[_ND_KEY]
            if not isinstance(idx, int) or not 0 <= idx < len(blobs):
                raise CodecError(f"array placeholder {idx!r} out of range")
            return blobs[idx]
        return {k: _restore_arrays(v, blobs) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_restore_arrays(v, blobs) for v in obj]
    return obj


def pack_message(obj: Any) -> bytes:
    """Serialize a JSON-able tree with embedded ndarrays into one payload."""
    blobs: List[np.ndarray] = []
    meta_obj = _strip_arrays(obj, blobs)
    meta = {
        "body": meta_obj,
        "arrays": [{"dtype": blob.dtype.str, "shape": list(blob.shape)}
                   for blob in blobs],
    }
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    parts = [struct.pack(">I", len(meta_bytes)), meta_bytes]
    parts.extend(blob.tobytes() for blob in blobs)
    return b"".join(parts)


def unpack_message(payload: bytes) -> Any:
    """Inverse of :func:`pack_message`; raises :class:`CodecError` on rot."""
    if len(payload) < 4:
        raise CodecError("payload shorter than its metadata length prefix")
    (meta_len,) = struct.unpack_from(">I", payload, 0)
    if 4 + meta_len > len(payload):
        raise CodecError("metadata length prefix exceeds payload")
    try:
        meta = json.loads(payload[4:4 + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"metadata is not valid JSON: {exc}") from exc
    if not isinstance(meta, dict) or "body" not in meta:
        raise CodecError("metadata missing message body")
    specs = meta.get("arrays", [])
    if not isinstance(specs, list):
        raise CodecError("array table is not a list")
    blobs: List[np.ndarray] = []
    offset = 4 + meta_len
    for spec in specs:
        try:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(s) for s in spec["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"bad array spec {spec!r}") from exc
        nbytes = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        if offset + nbytes > len(payload):
            raise CodecError("array blob extends past the payload")
        blobs.append(np.frombuffer(
            payload[offset:offset + nbytes], dtype=dtype).reshape(shape))
        offset += nbytes
    if offset != len(payload):
        raise CodecError(f"{len(payload) - offset} trailing bytes after "
                         "the last array blob")
    return _restore_arrays(meta["body"], blobs)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class Codec:
    """Stateless frame encoder: header + checksum around one payload."""

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = int(max_frame)

    def encode_frame(self, payload: bytes, seq: int) -> bytes:
        if len(payload) > self.max_frame:
            raise CodecError(f"payload of {len(payload)} bytes exceeds the "
                             f"{self.max_frame}-byte frame cap")
        return HEADER.pack(MAGIC, VERSION, 0, seq & 0xFFFFFFFF,
                           len(payload), zlib.crc32(payload)) + payload

    def encode_message(self, obj: Any, seq: int) -> bytes:
        return self.encode_frame(pack_message(obj), seq)


class FrameDecoder:
    """Incremental frame parser over a byte stream.

    ``feed(data)`` returns every frame payload completed by ``data``;
    partial frames wait for more bytes.  Any protocol violation — bad
    magic, unknown version, nonzero flags, oversized length, checksum
    mismatch, or an out-of-order/replayed sequence number — raises
    :class:`CodecError` and poisons the decoder (the stream has no
    trustworthy resync point once framing is lost).
    """

    def __init__(self, max_frame: int = MAX_FRAME,
                 check_seq: bool = True) -> None:
        self.max_frame = int(max_frame)
        self.check_seq = bool(check_seq)
        self._buf = bytearray()
        self._expected_seq = 0
        self._poisoned: Optional[str] = None

    def _fail(self, message: str) -> CodecError:
        self._poisoned = message
        return CodecError(message)

    def feed(self, data: bytes) -> List[bytes]:
        if self._poisoned is not None:
            raise CodecError(f"decoder poisoned: {self._poisoned}")
        self._buf.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buf) < HEADER.size:
                # Even a partial header can already be provably garbage.
                if self._buf and not MAGIC.startswith(
                        bytes(self._buf[:len(MAGIC)])):
                    raise self._fail("bad frame magic")
                return frames
            magic, version, flags, seq, length, crc = HEADER.unpack_from(
                self._buf, 0)
            if magic != MAGIC:
                raise self._fail("bad frame magic")
            if version != VERSION:
                raise self._fail(f"unsupported frame version {version}")
            if flags != 0:
                raise self._fail(f"nonzero reserved flags {flags:#x}")
            if length > self.max_frame:
                raise self._fail(f"frame length {length} exceeds the "
                                 f"{self.max_frame}-byte cap")
            if len(self._buf) < HEADER.size + length:
                return frames
            payload = bytes(self._buf[HEADER.size:HEADER.size + length])
            del self._buf[:HEADER.size + length]
            if zlib.crc32(payload) != crc:
                raise self._fail("frame checksum mismatch")
            if self.check_seq:
                if seq != self._expected_seq & 0xFFFFFFFF:
                    raise self._fail(
                        f"frame sequence {seq} != expected "
                        f"{self._expected_seq & 0xFFFFFFFF} "
                        "(duplicated or reordered frame)")
                self._expected_seq += 1
            frames.append(payload)


# ----------------------------------------------------------------------
# Fencing + leases
# ----------------------------------------------------------------------
class FenceRegistry:
    """Monotonic per-member fencing generations.

    ``advance(name)`` declares the current holder dead and returns the
    successor's generation; ``check(name, gen)`` is True only for the
    *latest* generation.  A zombie predecessor presenting a stale
    generation is rejected — the write it was about to make is the state
    corruption this class exists to prevent.
    """

    def __init__(self) -> None:
        self._gens: Dict[str, int] = {}  # guarded-by: _lock
        self._rejections: List[Dict[str, Any]] = []  # guarded-by: _lock
        self._lock = threading.Lock()

    def current(self, name: str) -> int:
        with self._lock:
            return self._gens.setdefault(name, 0)

    def advance(self, name: str) -> int:
        with self._lock:
            self._gens[name] = self._gens.get(name, 0) + 1
            return self._gens[name]

    def check(self, name: str, gen: int, context: str = "") -> bool:
        """True iff ``gen`` is current; stale generations are logged."""
        with self._lock:
            current = self._gens.setdefault(name, 0)
            if gen == current:
                return True
            self._rejections.append({"member": name, "stale_gen": int(gen),
                                     "current_gen": int(current),
                                     "context": context})
            return False

    @property
    def rejections(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._rejections)


class LeaseTable:
    """Heartbeat leases: liveness = "renewed recently", nothing else.

    A member holds a lease while it keeps renewing within ``ttl``
    seconds.  ``expired()`` returns members whose lease lapsed *and
    drains them from the table* in the same step — callers must treat a
    drained member's pending writes as untrusted until it re-registers
    (pair with :class:`FenceRegistry` to enforce that).
    """

    def __init__(self, ttl: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.ttl = float(ttl)
        self._clock = clock
        self._deadlines: Dict[str, float] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def grant(self, name: str) -> None:
        with self._lock:
            self._deadlines[name] = self._clock() + self.ttl

    renew = grant

    def drop(self, name: str) -> None:
        with self._lock:
            self._deadlines.pop(name, None)

    def members(self) -> List[str]:
        with self._lock:
            return sorted(self._deadlines)

    def remaining(self, name: str) -> Optional[float]:
        with self._lock:
            deadline = self._deadlines.get(name)
        if deadline is None:
            return None
        return deadline - self._clock()

    def held(self, name: str) -> bool:
        remaining = self.remaining(name)
        return remaining is not None and remaining > 0

    def expired(self) -> List[str]:
        """Members whose lease lapsed; each is drained as it is reported."""
        now = self._clock()
        with self._lock:
            lapsed = sorted(n for n, d in self._deadlines.items() if d <= now)
            for name in lapsed:
                del self._deadlines[name]
        return lapsed


# ----------------------------------------------------------------------
# RPC server
# ----------------------------------------------------------------------
#: Accept-loop poll granularity; bounds how long stop() can lag.
_ACCEPT_POLL = 0.2
#: Per-connection idle read timeout slice (loop re-checks the stop flag).
_READ_POLL = 0.5


class RpcServer:
    """Threaded request/response server over the frame codec.

    ``handlers`` maps method names to ``fn(payload: dict) -> dict``.
    Each connection gets a thread; each request frame carries
    ``{"id", "method", "payload"}`` and is answered with
    ``{"id", "ok", "payload" | "error"}`` on the same connection.  A
    handler exception becomes an error response (the connection
    survives); a codec violation tears the connection down (the stream
    is untrustworthy) and is counted, never propagated.
    """

    def __init__(self, handlers: Dict[str, Callable[[dict], dict]], *,
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = MAX_FRAME) -> None:
        self.handlers = dict(handlers)
        self._host = host
        self._port = port
        self.codec = Codec(max_frame)
        self.max_frame = max_frame
        self._sock: Optional[socket.socket] = None  # not-guarded: start/stop only, one control thread
        self._accept_thread: Optional[threading.Thread] = None  # not-guarded: start/stop only, one control thread
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._conn_threads: List[threading.Thread] = []  # guarded-by: _lock
        self.counters = {"connections": 0, "requests": 0, "errors": 0,
                         "codec_errors": 0}  # guarded-by: _lock

    # -- lifecycle ------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.settimeout(_ACCEPT_POLL)
        sock.bind((self._host, self._port))
        sock.listen(128)
        self._sock = sock
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-rpc-accept")
        self._accept_thread.start()
        return sock.getsockname()[:2]

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
            self._accept_thread = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        with self._lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(timeout=timeout)

    @property
    def address(self) -> Tuple[str, int]:
        if self._sock is None:
            raise RuntimeError("server not started")
        return self._sock.getsockname()[:2]

    # -- internals ------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during stop()
            conn.settimeout(_READ_POLL)
            with self._lock:
                self.counters["connections"] += 1
                self._conn_threads = [t for t in self._conn_threads
                                      if t.is_alive()]
                thread = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    daemon=True, name="repro-rpc-conn")
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        decoder = FrameDecoder(self.max_frame)
        seq_out = 0
        try:
            while not self._stop.is_set():
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not data:
                    return
                try:
                    payloads = decoder.feed(data)
                except CodecError:
                    with self._lock:
                        self.counters["codec_errors"] += 1
                    return
                for payload in payloads:
                    response = self._dispatch(payload)
                    frame = self.codec.encode_message(response, seq_out)
                    seq_out += 1
                    try:
                        conn.sendall(frame)
                    except OSError:
                        return
        finally:
            conn.close()

    def _dispatch(self, payload: bytes) -> dict:
        with self._lock:
            self.counters["requests"] += 1
        try:
            message = unpack_message(payload)
        except CodecError as exc:
            with self._lock:
                self.counters["codec_errors"] += 1
            return {"id": None, "ok": False, "error": f"bad message: {exc}"}
        call_id = message.get("id") if isinstance(message, dict) else None
        method = message.get("method") if isinstance(message, dict) else None
        handler = self.handlers.get(method)
        if handler is None:
            with self._lock:
                self.counters["errors"] += 1
            return {"id": call_id, "ok": False,
                    "error": f"unknown method {method!r}"}
        try:
            result = handler(message.get("payload") or {})
        except Exception as exc:  # noqa: BLE001 — handler faults become error responses
            with self._lock:
                self.counters["errors"] += 1
            return {"id": call_id, "ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}
        return {"id": call_id, "ok": True, "payload": result}


class RpcError(Exception):
    """The peer answered, but the handler reported an error."""


# ----------------------------------------------------------------------
# RPC client
# ----------------------------------------------------------------------
class RpcClient:
    """One connection to an :class:`RpcServer`, with bounded everything.

    Not thread-safe: each worker/standby owns its own client.  ``call``
    either returns the response payload or raises one of exactly three
    exceptions: :class:`PeerDead` (could not connect within the
    deadline), :class:`CallTimeout` (connected, no answer in time), or
    :class:`RpcError` (the peer answered with a handler error).
    Reconnects use capped exponential backoff with seeded jitter;
    responses with stale call ids (duplicates of timed-out calls) are
    discarded, counted, and never mis-delivered.
    """

    def __init__(self, host: str, port: int, *,
                 max_frame: int = MAX_FRAME,
                 backoff_initial: float = RECONNECT_INITIAL,
                 backoff_cap: float = RECONNECT_CAP,
                 jitter_seed: Optional[int] = None) -> None:
        self.host = host
        self.port = port
        self.codec = Codec(max_frame)
        self.max_frame = max_frame
        self._backoff_initial = backoff_initial
        self._backoff_cap = backoff_cap
        self._jitter_seed = jitter_seed
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(max_frame)
        self._seq = 0
        self._call_id = 0
        self.stats = {"calls": 0, "reconnects": 0, "timeouts": 0,
                      "stale_responses": 0, "codec_errors": 0}

    # -- connection management -----------------------------------------
    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def _drop_connection(self) -> None:
        self.close()
        self._decoder = FrameDecoder(self.max_frame)
        self._seq = 0

    def _connect(self, deadline: float) -> None:
        """(Re)connect before ``deadline`` or raise :class:`PeerDead`."""
        delays = backoff_delays(self._backoff_initial, self._backoff_cap,
                                seed=self._jitter_seed)
        attempt = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PeerDead(
                    f"{self.host}:{self.port} unreachable after "
                    f"{attempt} connection attempts")
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.settimeout(max(0.01, min(remaining, 5.0)))
            try:
                sock.connect((self.host, self.port))
            except OSError:
                sock.close()
                attempt += 1
                if attempt > 1:
                    self.stats["reconnects"] += 1
                pause = min(next(delays), max(0.0, deadline - time.monotonic()))
                if pause > 0:
                    time.sleep(pause)
                continue
            self._sock = sock
            self._decoder = FrameDecoder(self.max_frame)
            self._seq = 0
            return

    # -- calls ----------------------------------------------------------
    def call(self, method: str, payload: Optional[dict] = None, *,
             deadline: float = DEFAULT_DEADLINE) -> dict:
        self.stats["calls"] += 1
        self._call_id += 1
        call_id = self._call_id
        limit = time.monotonic() + deadline
        request = {"id": call_id, "method": method,
                   "payload": payload or {}}
        while True:
            if self._sock is None:
                self._connect(limit)
            try:
                frame = self.codec.encode_message(request, self._seq)
                self._seq += 1
                self._sock.sendall(frame)
                return self._await_response(call_id, limit)
            except (OSError, CodecError) as exc:
                if isinstance(exc, CodecError):
                    self.stats["codec_errors"] += 1
                self._drop_connection()
                if time.monotonic() >= limit:
                    raise PeerDead(
                        f"{self.host}:{self.port} dropped the connection "
                        f"and the deadline passed: {exc}") from exc
                # Loop: reconnect and re-send (idempotent / deduplicated).

    def _await_response(self, call_id: int, limit: float) -> dict:
        while True:
            remaining = limit - time.monotonic()
            if remaining <= 0:
                self.stats["timeouts"] += 1
                raise CallTimeout(
                    f"no response to call {call_id} from "
                    f"{self.host}:{self.port} within the deadline")
            self._sock.settimeout(min(remaining, _READ_POLL))
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                continue
            if not data:
                raise ConnectionResetError("server closed the connection")
            for payload in self._decoder.feed(data):
                message = unpack_message(payload)
                if message.get("id") != call_id:
                    # A duplicate answer to an earlier, timed-out call.
                    self.stats["stale_responses"] += 1
                    continue
                if not message.get("ok"):
                    raise RpcError(str(message.get("error")))
                return message.get("payload") or {}


# ----------------------------------------------------------------------
# Fault-injection proxy
# ----------------------------------------------------------------------
@dataclass
class FrameEvent:
    """One frame crossing a :class:`FaultyTransport`, open to mutation.

    Armed faults (site ``fleet.transport.frame``) mutate the decision
    fields; the proxy then honours them.  ``partition`` additionally
    flips the whole link into black-hole mode until healed.
    """

    link: str
    direction: str  # "up" (client->server) or "down"
    seq: int
    method: Optional[str] = None
    step: Optional[int] = None
    drop: bool = False
    delay_s: float = 0.0
    duplicate: bool = False
    partition: bool = False


class FaultyTransport:
    """Frame-aware TCP proxy: drop / delay / duplicate / partition.

    Sits between an :class:`RpcClient` and an :class:`RpcServer`,
    re-framing the stream so faults operate on whole frames (a dropped
    frame is a cleanly missing message, not a torn one — tearing is the
    codec suite's job).  Forwarded frames are re-encoded with the
    proxy's own per-direction sequence numbers, so dropping a frame
    does not spuriously poison the receiver's decoder; a *duplicated*
    frame is forwarded with its sequence number repeated, which the
    receiving decoder rejects exactly as a real replay.

    While partitioned, the proxy accepts connections but forwards
    nothing in either direction — the realistic netsplit: peers block
    until their own deadlines fire, which is precisely what this layer's
    deadlines exist for.
    """

    def __init__(self, upstream: Tuple[str, int], *, link: str = "link",
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = MAX_FRAME) -> None:
        self.upstream = upstream
        self.link = link
        self._host = host
        self._port = port
        self.codec = Codec(max_frame)
        self.max_frame = max_frame
        self._sock: Optional[socket.socket] = None  # not-guarded: start/stop only, one control thread
        self._accept_thread: Optional[threading.Thread] = None  # not-guarded: start/stop only, one control thread
        self._stop = threading.Event()
        self._partitioned = threading.Event()
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []  # guarded-by: _lock
        self.counters = {"forwarded": 0, "dropped": 0, "duplicated": 0,
                         "delayed": 0}  # guarded-by: _lock

    # -- drill controls -------------------------------------------------
    def set_partitioned(self, value: bool) -> None:
        if value:
            self._partitioned.set()
        else:
            self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.settimeout(_ACCEPT_POLL)
        sock.bind((self._host, self._port))
        sock.listen(64)
        self._sock = sock
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="repro-faulty-proxy")
        self._accept_thread.start()
        return sock.getsockname()[:2]

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
            self._accept_thread = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout=timeout)

    @property
    def address(self) -> Tuple[str, int]:
        if self._sock is None:
            raise RuntimeError("proxy not started")
        return self._sock.getsockname()[:2]

    # -- internals ------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            upstream = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            upstream.settimeout(5.0)
            try:
                upstream.connect(self.upstream)
            except OSError:
                client.close()
                upstream.close()
                continue
            for sock, dst, direction in ((client, upstream, "up"),
                                         (upstream, client, "down")):
                sock.settimeout(_READ_POLL)
                with self._lock:
                    self._threads = [t for t in self._threads if t.is_alive()]
                    thread = threading.Thread(
                        target=self._pump, args=(sock, dst, direction),
                        daemon=True, name=f"repro-faulty-{direction}")
                    self._threads.append(thread)
                thread.start()

    def _pump(self, src: socket.socket, dst: socket.socket,
              direction: str) -> None:
        decoder = FrameDecoder(self.max_frame, check_seq=False)
        in_seq = 0
        # Forwarded frames get the proxy's own consecutive numbering, so a
        # *dropped* frame leaves no sequence gap to spuriously poison the
        # receiver; a *duplicated* frame repeats its number, which the
        # receiving decoder rejects exactly as it would a real replay.
        out_seq = 0
        try:
            while not self._stop.is_set():
                try:
                    data = src.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not data:
                    return
                try:
                    payloads = decoder.feed(data)
                except CodecError:
                    return  # unframeable stream: sever the link
                for payload in payloads:
                    event = self._frame_event(payload, direction, in_seq)
                    in_seq += 1
                    if event.partition:
                        self._partitioned.set()
                    if self._partitioned.is_set() or event.drop:
                        with self._lock:
                            self.counters["dropped"] += 1
                        continue
                    if event.delay_s > 0:
                        with self._lock:
                            self.counters["delayed"] += 1
                        time.sleep(event.delay_s)
                    frame = self.codec.encode_frame(payload, out_seq)
                    copies = 2 if event.duplicate else 1
                    try:
                        for _ in range(copies):
                            dst.sendall(frame)
                    except OSError:
                        return
                    out_seq += 1
                    with self._lock:
                        self.counters["forwarded"] += 1
                        if event.duplicate:
                            self.counters["duplicated"] += 1
        finally:
            src.close()
            dst.close()

    def _frame_event(self, payload: bytes, direction: str,
                     seq: int) -> FrameEvent:
        method = step = None
        try:
            message = unpack_message(payload)
            if isinstance(message, dict):
                method = message.get("method")
                inner = message.get("payload")
                if isinstance(inner, dict):
                    step = inner.get("step")
        except CodecError:  # noqa: R005 — opaque payloads still forward
            pass
        event = FrameEvent(link=self.link, direction=direction, seq=seq,
                           method=method, step=step)
        faults.fire("fleet.transport.frame", event=event, link=self.link,
                    direction=direction, method=method, step=step)
        return event
