"""Elastic data-parallel training coordinator (DESIGN §17–§18).

:class:`ElasticTrainer` drives K forked worker processes, each owning a
shard-disjoint :class:`~repro.data.sampling.MinibatchSampler` partition
of the labeled seed set (hash partition via
:func:`~repro.data.sampling.shard_items`; neighbor expansion reads the
full CSC, so out-of-shard halo nodes need no exchange).  Per step:

1. publish the current flat parameter vector (shared memory or RPC);
2. command every worker to compute its shard gradient;
3. collect acks with **bounded** waits (``poll(timeout)`` — never an
   unbounded ``join``/``recv``, analyzer rule A006);
4. all-reduce: sum the K gradient slices in a *seeded permutation
   order* ``default_rng([seed, 11, step]).permutation(K)``, divide by
   K, clip, Adam-step.

Because float addition is not associative, a fixed K needs a fixed
summation order for bitwise reproducibility — but that order must not
depend on worker *arrival* order (which is racy) or shard index alone
(which would hide order bugs); the seeded per-step permutation gives a
deterministic yet step-varying order.  The order, the step kernel, and
the fingerprint chain are shared by both transports, which is why a
fixed ``(seed, K)`` replays the same trajectory **bitwise** whether the
gradients travel through shared memory (``transport="shm"``, the local
fast path) or sockets (``transport="tcp"``, the cross-machine path).

Worker death is a handled event on both transports.  Shared memory
detects it by process exit; TCP detects process exit *or* an expired
**heartbeat lease** (a partitioned worker stops renewing).  Either way
the dead shard's sampler is rebuilt from its **last-acked state** — its
state at the *start* of the in-flight step, since acks carry post-step
sampler state — a replacement is forked, and the same step is
re-issued; the replacement recomputes the identical minibatch and
gradient.  On TCP the replacement is additionally born with an advanced
**fencing generation**: if the "dead" predecessor was merely
partitioned and later reconnects, every call it makes is rejected as
``fenced`` — recorded, never reduced — so a zombie cannot corrupt a
step it no longer owns.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .transport import FenceRegistry, LeaseTable, RpcServer
from .worker import (TcpWorkerContext, WorkerContext, flatten_arrays,
                     tcp_worker_loop, worker_loop)

__all__ = ["ElasticResult", "ElasticTrainer"]

#: Seconds the coordinator waits for one step's acks before giving up.
STEP_TIMEOUT = 300.0
#: Granularity of the coordinator's ack-polling sweep.
POLL_INTERVAL = 0.05
#: Default TCP worker lease TTL.  Generous: a lease only has to outlive
#: one step's compute (workers renew on every RPC) — drills shrink it to
#: detect a partition quickly.
LEASE_TTL = 30.0


@dataclass
class ElasticResult:
    """Outcome of one elastic run."""

    steps: int
    num_workers: int
    #: Which transport carried the gradients ("shm" or "tcp").
    transport: str = "shm"
    #: ``losses[t][s]`` — shard ``s``'s loss at step ``t``.
    losses: List[List[float]] = field(default_factory=list)
    #: ``seed_hashes[t][s]`` — hash of shard ``s``'s seed batch at ``t``.
    seed_hashes: List[List[str]] = field(default_factory=list)
    #: Chained digest over (step, per-shard seeds/grads, updated params).
    fingerprint: str = ""
    #: Final model parameters (plain copies).
    state: Dict[str, np.ndarray] = field(default_factory=dict)
    #: One record per worker death the run absorbed.
    deaths: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per fenced (stale-generation) call rejected (tcp only).
    fenced: List[Dict[str, Any]] = field(default_factory=list)
    #: Transport counters (tcp only): rpc server + codec error counts.
    transport_stats: Dict[str, Any] = field(default_factory=dict)


class _Worker:
    """Coordinator-side handle: process + channel + shard bookkeeping."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.proc: Optional[multiprocessing.Process] = None
        self.conn: Any = None
        self.last_acked_state: Optional[Dict[str, Any]] = None
        self.restarts = 0


class _TcpState:
    """Coordinator state the RPC handler threads serve to workers.

    ``params_vec`` is replaced wholesale each step (never mutated), so a
    handler may hand the current reference to the codec without copying.
    """

    def __init__(self, num_shards: int, param_count: int,
                 lease_ttl: float) -> None:
        self.lock = threading.Lock()
        self.params_vec: Optional[np.ndarray] = None  # guarded-by: lock
        self.step: Optional[int] = None  # guarded-by: lock
        self.acks: Dict[int, Dict[str, Any]] = {}  # guarded-by: lock
        self.grads = np.zeros((num_shards, param_count),
                              dtype=np.float64)  # guarded-by: lock
        self.stopping = False  # guarded-by: lock
        self.param_count = param_count
        self.fences = FenceRegistry()
        self.leases = LeaseTable(lease_ttl)

    @staticmethod
    def _name(shard: int) -> str:
        return f"shard-{shard}"

    # -- RPC handlers (run on RpcServer connection threads) -------------
    def handle_get_command(self, payload: dict) -> dict:
        shard = int(payload["shard"])
        gen = int(payload["gen"])
        name = self._name(shard)
        if not self.fences.check(name, gen, context="get_command"):
            return {"cmd": "fenced"}
        self.leases.renew(name)
        with self.lock:
            if self.stopping:
                return {"cmd": "stop"}
            if self.step is None or shard in self.acks:
                return {"cmd": "wait"}
            return {"cmd": "step", "step": self.step,
                    "params": self.params_vec}

    def handle_push_result(self, payload: dict) -> dict:
        shard = int(payload["shard"])
        gen = int(payload["gen"])
        step = int(payload["step"])
        name = self._name(shard)
        if not self.fences.check(name, gen, context="push_result"):
            return {"cmd": "fenced", "status": "fenced"}
        self.leases.renew(name)
        grad = np.asarray(payload["grad"], dtype=np.float64)
        if grad.shape != (self.param_count,):
            return {"status": "bad_shape"}
        with self.lock:
            if self.step != step:
                # An answer to a step the coordinator already closed out.
                return {"status": "stale_step"}
            if shard in self.acks:
                return {"status": "dup"}
            self.grads[shard, :] = grad
            self.acks[shard] = {
                "step": step, "shard": shard,
                "loss": float(payload["loss"]),
                "seeds_hash": str(payload["seeds_hash"]),
                "grad_hash": str(payload["grad_hash"]),
                "sampler_state": payload["sampler_state"],
            }
        return {"status": "ok"}


class ElasticTrainer:
    """K-process data-parallel minibatch training over one estimator.

    ``config`` is a :class:`~repro.core.model.CATEHGNConfig`; the
    estimator is built exactly as ``CATEHGN.fit`` builds it (same graph,
    same seeded init, same optimizer) but with zero outer iterations —
    the elastic step loop then replaces the mini-iteration phase of
    Algorithm 1.  Center updates and TE refinement stay out of scope
    here (they are full-batch, serial phases; ROADMAP item 1 notes).

    ``transport`` selects the gradient-exchange path: ``"shm"`` (shared
    memory, same-host fast path) or ``"tcp"`` (the DESIGN §18 socket
    transport with leases and fencing).  ``endpoint_factory(shard, gen,
    address)`` — tcp only — maps a worker generation to the coordinator
    address it should dial; drills use it to route one generation
    through a :class:`~repro.fleet.transport.FaultyTransport` proxy.
    """

    def __init__(self, config, num_workers: int = 2, *, steps: int = 8,
                 batch_size: int = 32, fanouts=5,
                 step_timeout: float = STEP_TIMEOUT,
                 step_seed: Optional[int] = None,
                 transport: str = "shm",
                 lease_ttl: float = LEASE_TTL,
                 host: str = "127.0.0.1",
                 endpoint_factory: Optional[
                     Callable[[int, int, Tuple[str, int]],
                              Tuple[str, int]]] = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if transport not in ("shm", "tcp"):
            raise ValueError(f"unknown transport {transport!r} "
                             "(expected 'shm' or 'tcp')")
        self.config = config
        self.num_workers = int(num_workers)
        self.steps = int(steps)
        self.batch_size = int(batch_size)
        self.fanouts = fanouts
        self.step_timeout = float(step_timeout)
        self.step_seed = int(config.seed if step_seed is None else step_seed)
        self.transport = transport
        self.lease_ttl = float(lease_ttl)
        self.host = host
        self.endpoint_factory = endpoint_factory
        self.estimator = None

    # ------------------------------------------------------------------
    def fit(self, dataset) -> ElasticResult:
        from ..core.trainer import CATEHGN
        from ..data.sampling import MinibatchSampler

        try:
            mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover — non-POSIX only
            raise RuntimeError(
                "elastic training requires the fork start method "
                "(workers inherit the built model copy-on-write)") from exc

        # Build-but-don't-train: outer_iters=0 constructs the graph,
        # batch, seeded model init, and Adam state, then skips the
        # training loop entirely.
        build_cfg = dataclasses.replace(self.config, outer_iters=0)
        est = CATEHGN(build_cfg).fit(dataset)
        self.estimator = est
        cfg = est.config
        params = est._main_params
        shapes = [p.data.shape for p in params]
        P = int(sum(int(np.prod(s)) for s in shapes))
        K = self.num_workers

        labels_norm = est._normalize(dataset.labels[est._fit_idx])

        def make_sampler(shard: int,
                         state: Optional[Dict[str, Any]]) -> Any:
            sampler = MinibatchSampler(
                batch_size=self.batch_size, fanouts=self.fanouts,
                replace=False, shuffle=True, seed=cfg.seed,
                num_shards=K, shard=shard,
            )
            sampler.bind(est._graph, est._fit_idx, labels_norm,
                         hops=cfg.num_layers)
            if state is not None:
                sampler.load_state_dict(copy.deepcopy(state))
            return sampler

        if self.transport == "tcp":
            return self._fit_tcp(mp, est, cfg, params, P, K, make_sampler)
        return self._fit_shm(mp, est, cfg, params, P, K, make_sampler)

    # ------------------------------------------------------------------
    # Shared memory (local fast path)
    # ------------------------------------------------------------------
    def _fit_shm(self, mp, est, cfg, params, P: int, K: int,
                 make_sampler) -> ElasticResult:
        param_buf = mp.RawArray("d", P)
        grad_buf = mp.RawArray("d", K * P)
        param_np = np.frombuffer(param_buf, dtype=np.float64)
        grad_np = np.frombuffer(grad_buf, dtype=np.float64).reshape(K, P)

        workers = [_Worker(s) for s in range(K)]

        def spawn(worker: _Worker) -> None:
            sampler = make_sampler(worker.shard, worker.last_acked_state)
            parent_conn, child_conn = mp.Pipe()
            ctx = WorkerContext(
                shard=worker.shard, num_shards=K,
                step_seed=self.step_seed, model=est.model, params=params,
                sampler=sampler, use_label_inputs=cfg.use_label_inputs,
                conn=child_conn, param_buf=param_buf, grad_buf=grad_buf,
                param_count=P,
            )
            worker.proc = mp.Process(target=worker_loop, args=(ctx,),
                                     daemon=True,
                                     name=f"repro-elastic-{worker.shard}")
            worker.proc.start()
            child_conn.close()  # child's end lives in the child now
            worker.conn = parent_conn

        result = ElasticResult(steps=self.steps, num_workers=K,
                               transport="shm")
        chain = self._new_chain(K)
        try:
            for worker in workers:
                spawn(worker)
            for t in range(self.steps):
                flatten_arrays([p.data for p in params], param_np)
                for worker in workers:
                    worker.conn.send(("step", t))
                acks = self._collect_acks(workers, t, spawn, result)
                for s in range(K):
                    workers[s].last_acked_state = acks[s]["sampler_state"]
                self._record_step(result, chain, acks, grad_np, params,
                                  est._opt_main, cfg, t, K, P, param_np)
        finally:
            self._stop_workers(workers)
        result.fingerprint = chain.hexdigest()
        result.state = est.model.state_dict()
        return result

    # ------------------------------------------------------------------
    # TCP (cross-machine path, DESIGN §18)
    # ------------------------------------------------------------------
    def _fit_tcp(self, mp, est, cfg, params, P: int, K: int,
                 make_sampler) -> ElasticResult:
        st = _TcpState(K, P, self.lease_ttl)
        server = RpcServer({"get_command": st.handle_get_command,
                            "push_result": st.handle_push_result},
                           host=self.host)
        address = server.start()
        param_np = np.zeros(P, dtype=np.float64)
        workers = [_Worker(s) for s in range(K)]
        zombies: List[multiprocessing.Process] = []

        def endpoint(shard: int, gen: int) -> Tuple[str, int]:
            if self.endpoint_factory is not None:
                return tuple(self.endpoint_factory(shard, gen, address))
            return address

        def spawn(worker: _Worker) -> None:
            name = _TcpState._name(worker.shard)
            gen = st.fences.current(name)
            sampler = make_sampler(worker.shard, worker.last_acked_state)
            ctx = TcpWorkerContext(
                shard=worker.shard, num_shards=K, gen=gen,
                step_seed=self.step_seed, model=est.model, params=params,
                sampler=sampler, use_label_inputs=cfg.use_label_inputs,
                endpoint=endpoint(worker.shard, gen), param_count=P,
            )
            worker.proc = mp.Process(
                target=tcp_worker_loop, args=(ctx,), daemon=True,
                name=f"repro-elastic-tcp-{worker.shard}-g{gen}")
            worker.proc.start()
            st.leases.grant(name)

        result = ElasticResult(steps=self.steps, num_workers=K,
                               transport="tcp")
        chain = self._new_chain(K)
        try:
            for worker in workers:
                spawn(worker)
            for t in range(self.steps):
                flatten_arrays([p.data for p in params], param_np)
                with st.lock:
                    st.params_vec = param_np.copy()
                    st.acks = {}
                    st.step = t
                acks = self._collect_tcp_acks(st, workers, zombies, t,
                                              spawn, result)
                with st.lock:
                    st.step = None  # close the step: late pushes are stale
                for s in range(K):
                    workers[s].last_acked_state = acks[s]["sampler_state"]
                self._record_step(result, chain, acks, st.grads, params,
                                  est._opt_main, cfg, t, K, P, param_np)
        finally:
            with st.lock:
                st.stopping = True
                st.step = None
            self._stop_tcp_workers(workers, zombies)
            server.stop()
        result.fingerprint = chain.hexdigest()
        result.state = est.model.state_dict()
        result.fenced = st.fences.rejections
        with server._lock:
            counters = dict(server.counters)
        result.transport_stats = {
            "rpc": counters,
            "restarts": {w.shard: w.restarts for w in workers},
        }
        return result

    def _collect_tcp_acks(self, st: _TcpState, workers: List[_Worker],
                          zombies: List[multiprocessing.Process], t: int,
                          spawn, result: ElasticResult
                          ) -> Dict[int, Dict[str, Any]]:
        """Await one accepted result per shard, replacing dead workers.

        Death has two signals here: the process exited (crash,
        ``kill_worker``), or its heartbeat lease lapsed (a partitioned
        or wedged worker stops renewing).  Either way the shard's fence
        advances *before* the replacement spawns, so anything the old
        generation still sends is rejected — a lease-expired worker that
        is in fact alive is kept as a zombie until it fences itself out.
        """
        deadline = time.monotonic() + self.step_timeout
        while True:
            with st.lock:
                if len(st.acks) >= len(workers):
                    return dict(st.acks)
                done = set(st.acks)
            if time.monotonic() > deadline:
                missing = sorted(set(range(len(workers))) - done)
                raise RuntimeError(
                    f"step {t}: shards {missing} never delivered a "
                    f"result within {self.step_timeout}s")
            lapsed = set(st.leases.expired())
            for worker in workers:
                if worker.shard in done:
                    continue
                name = _TcpState._name(worker.shard)
                proc_dead = not worker.proc.is_alive()
                lease_dead = name in lapsed
                if not (proc_dead or lease_dead):
                    continue
                with st.lock:
                    if worker.shard in st.acks:
                        # Its push landed between our snapshot and the
                        # lease sweep — not a death this step; a truly
                        # dead process is caught on the next step.
                        continue
                result.deaths.append({
                    "step": t, "shard": worker.shard,
                    "reason": "exit" if proc_dead else "lease",
                    "exitcode": worker.proc.exitcode,
                    "gen": st.fences.current(name),
                    "restart": worker.restarts + 1,
                })
                st.fences.advance(name)
                if proc_dead:
                    worker.proc.join(timeout=10.0)
                else:
                    # Alive but untrusted: fence it out, keep the corpse
                    # handle so shutdown can reap it if it never fences.
                    zombies.append(worker.proc)
                with st.lock:
                    late = st.acks.get(worker.shard)
                if late is not None:
                    # Fence raced an accepted push: the result counts, so
                    # the replacement resumes from *post-step* state.
                    worker.last_acked_state = late["sampler_state"]
                worker.restarts += 1
                spawn(worker)
            time.sleep(POLL_INTERVAL)

    def _stop_tcp_workers(self, workers: List[_Worker],
                          zombies: List[multiprocessing.Process]) -> None:
        """Drain: workers see ``stop`` on their next poll; reap stragglers."""
        procs = [w.proc for w in workers if w.proc is not None] + zombies
        deadline = time.monotonic() + 10.0
        for proc in procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _new_chain(self, K: int):
        # Deliberately transport-free: the fingerprint is a claim about
        # the *trajectory*, and the trajectory must not depend on how
        # the gradients traveled.
        return hashlib.blake2b(
            f"elastic-v1|K={K}|steps={self.steps}".encode(), digest_size=16)

    def _record_step(self, result: ElasticResult, chain, acks,
                     grad_np: np.ndarray, params, opt, cfg, t: int,
                     K: int, P: int, param_np: np.ndarray) -> None:
        result.losses.append([acks[s]["loss"] for s in range(K)])
        result.seed_hashes.append([acks[s]["seeds_hash"] for s in range(K)])
        self._reduce_and_step(grad_np, params, opt, cfg, t, K, P)
        chain.update(str(t).encode())
        for s in range(K):
            chain.update(acks[s]["seeds_hash"].encode())
            chain.update(acks[s]["grad_hash"].encode())
        flatten_arrays([p.data for p in params], param_np)
        chain.update(param_np.tobytes())

    # ------------------------------------------------------------------
    def _collect_acks(self, workers: List[_Worker], t: int, spawn,
                      result: ElasticResult) -> Dict[int, Dict[str, Any]]:
        """Gather one ack per shard, respawning dead workers in place.

        A worker that died mid-step gets a replacement built from its
        last-acked sampler state; the same ``("step", t)`` command is
        re-issued, and the replacement produces the bitwise-identical
        gradient its predecessor owed.  Acks already buffered in a dead
        worker's pipe are still drained first — a gradient is never
        recomputed once acknowledged (exactly-once per (shard, step)).
        """
        acks: Dict[int, Dict[str, Any]] = {}
        deadline = time.monotonic() + self.step_timeout
        while len(acks) < len(workers):
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"step {t}: shards "
                    f"{sorted(set(range(len(workers))) - set(acks))} never "
                    f"acked within {self.step_timeout}s")
            for worker in workers:
                if worker.shard in acks:
                    continue
                got = False
                if worker.conn.poll(POLL_INTERVAL):
                    try:
                        msg = worker.conn.recv()  # noqa: A006 — bounded by the poll above
                        got = True
                    except (EOFError, OSError):
                        got = False
                    if got and msg.get("step") == t:
                        acks[worker.shard] = msg
                        continue
                if not got and not worker.proc.is_alive():
                    result.deaths.append({
                        "step": t, "shard": worker.shard,
                        "exitcode": worker.proc.exitcode,
                        "restart": worker.restarts + 1,
                    })
                    worker.conn.close()
                    worker.proc.join(timeout=10.0)
                    worker.restarts += 1
                    spawn(worker)
                    worker.conn.send(("step", t))
        return acks

    # ------------------------------------------------------------------
    @staticmethod
    def _reduce_and_step(grad_np: np.ndarray, params, opt, cfg,
                         t: int, K: int, P: int) -> None:
        order = np.random.default_rng([cfg.seed, 11, t]).permutation(K)
        acc = np.zeros(P, dtype=np.float64)
        for s in order:
            acc += grad_np[s]
        acc /= K
        offset = 0
        for param in params:
            n = param.data.size
            param.grad = acc[offset:offset + n].reshape(
                param.data.shape).copy()
            offset += n
        opt.clip_grad_norm(cfg.grad_clip)
        opt.step()

    # ------------------------------------------------------------------
    @staticmethod
    def _stop_workers(workers: List[_Worker]) -> None:
        for worker in workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):  # noqa: R005 — worker already dead
                    pass
        for worker in workers:
            proc = worker.proc
            if proc is None:
                continue
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10.0)
            if worker.conn is not None:
                worker.conn.close()