"""Elastic data-parallel training coordinator (DESIGN §17).

:class:`ElasticTrainer` drives K forked worker processes, each owning a
shard-disjoint :class:`~repro.data.sampling.MinibatchSampler` partition
of the labeled seed set (hash partition via
:func:`~repro.data.sampling.shard_items`; neighbor expansion reads the
full CSC, so out-of-shard halo nodes need no exchange).  Per step:

1. publish the current flat parameter vector into shared memory;
2. command every worker to compute its shard gradient;
3. collect acks with **bounded** waits (``poll(timeout)`` — never an
   unbounded ``join``/``recv``, analyzer rule A006);
4. all-reduce: sum the K shared-memory gradient slices in a *seeded
   permutation order* ``default_rng([seed, 11, step]).permutation(K)``,
   divide by K, clip, Adam-step.

Because float addition is not associative, a fixed K needs a fixed
summation order for bitwise reproducibility — but that order must not
depend on worker *arrival* order (which is racy) or shard index alone
(which would hide order bugs); the seeded per-step permutation gives a
deterministic yet step-varying order.

Worker death (process exit, or a step ack that never arrives) is a
handled event: the dead shard's sampler is rebuilt from its **last-acked
state** — its state at the *start* of the in-flight step, since acks
carry post-step sampler state — a replacement is forked, and the same
step command is re-issued.  The replacement recomputes the identical
minibatch and gradient (see :mod:`repro.fleet.worker`), so the whole
run's trajectory fingerprint matches an undisturbed run's bitwise.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .worker import WorkerContext, flatten_arrays, worker_loop

__all__ = ["ElasticResult", "ElasticTrainer"]

#: Seconds the coordinator waits for one step's acks before giving up.
STEP_TIMEOUT = 300.0
#: Granularity of the coordinator's ack-polling sweep.
POLL_INTERVAL = 0.05


@dataclass
class ElasticResult:
    """Outcome of one elastic run."""

    steps: int
    num_workers: int
    #: ``losses[t][s]`` — shard ``s``'s loss at step ``t``.
    losses: List[List[float]] = field(default_factory=list)
    #: ``seed_hashes[t][s]`` — hash of shard ``s``'s seed batch at ``t``.
    seed_hashes: List[List[str]] = field(default_factory=list)
    #: Chained digest over (step, per-shard seeds/grads, updated params).
    fingerprint: str = ""
    #: Final model parameters (plain copies).
    state: Dict[str, np.ndarray] = field(default_factory=dict)
    #: One record per worker death the run absorbed.
    deaths: List[Dict[str, Any]] = field(default_factory=list)


class _Worker:
    """Coordinator-side handle: process + pipe + shard bookkeeping."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.proc: Optional[multiprocessing.Process] = None
        self.conn: Any = None
        self.last_acked_state: Optional[Dict[str, Any]] = None
        self.restarts = 0


class ElasticTrainer:
    """K-process data-parallel minibatch training over one estimator.

    ``config`` is a :class:`~repro.core.model.CATEHGNConfig`; the
    estimator is built exactly as ``CATEHGN.fit`` builds it (same graph,
    same seeded init, same optimizer) but with zero outer iterations —
    the elastic step loop then replaces the mini-iteration phase of
    Algorithm 1.  Center updates and TE refinement stay out of scope
    here (they are full-batch, serial phases; ROADMAP item 1 notes).
    """

    def __init__(self, config, num_workers: int = 2, *, steps: int = 8,
                 batch_size: int = 32, fanouts=5,
                 step_timeout: float = STEP_TIMEOUT,
                 step_seed: Optional[int] = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.config = config
        self.num_workers = int(num_workers)
        self.steps = int(steps)
        self.batch_size = int(batch_size)
        self.fanouts = fanouts
        self.step_timeout = float(step_timeout)
        self.step_seed = int(config.seed if step_seed is None else step_seed)
        self.estimator = None

    # ------------------------------------------------------------------
    def fit(self, dataset) -> ElasticResult:
        from ..core.trainer import CATEHGN
        from ..data.sampling import MinibatchSampler

        try:
            mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover — non-POSIX only
            raise RuntimeError(
                "elastic training requires the fork start method "
                "(workers inherit the built model copy-on-write)") from exc

        # Build-but-don't-train: outer_iters=0 constructs the graph,
        # batch, seeded model init, and Adam state, then skips the
        # training loop entirely.
        build_cfg = dataclasses.replace(self.config, outer_iters=0)
        est = CATEHGN(build_cfg).fit(dataset)
        self.estimator = est
        cfg = est.config
        params = est._main_params
        opt = est._opt_main
        shapes = [p.data.shape for p in params]
        P = int(sum(int(np.prod(s)) for s in shapes))
        K = self.num_workers

        param_buf = mp.RawArray("d", P)
        grad_buf = mp.RawArray("d", K * P)
        param_np = np.frombuffer(param_buf, dtype=np.float64)
        grad_np = np.frombuffer(grad_buf, dtype=np.float64).reshape(K, P)

        labels_norm = est._normalize(dataset.labels[est._fit_idx])

        def make_sampler(shard: int,
                         state: Optional[Dict[str, Any]]) -> Any:
            sampler = MinibatchSampler(
                batch_size=self.batch_size, fanouts=self.fanouts,
                replace=False, shuffle=True, seed=cfg.seed,
                num_shards=K, shard=shard,
            )
            sampler.bind(est._graph, est._fit_idx, labels_norm,
                         hops=cfg.num_layers)
            if state is not None:
                sampler.load_state_dict(copy.deepcopy(state))
            return sampler

        workers = [_Worker(s) for s in range(K)]

        def spawn(worker: _Worker) -> None:
            sampler = make_sampler(worker.shard, worker.last_acked_state)
            parent_conn, child_conn = mp.Pipe()
            ctx = WorkerContext(
                shard=worker.shard, num_shards=K,
                step_seed=self.step_seed, model=est.model, params=params,
                sampler=sampler, use_label_inputs=cfg.use_label_inputs,
                conn=child_conn, param_buf=param_buf, grad_buf=grad_buf,
                param_count=P,
            )
            worker.proc = mp.Process(target=worker_loop, args=(ctx,),
                                     daemon=True,
                                     name=f"repro-elastic-{worker.shard}")
            worker.proc.start()
            child_conn.close()  # child's end lives in the child now
            worker.conn = parent_conn

        result = ElasticResult(steps=self.steps, num_workers=K)
        chain = hashlib.blake2b(
            f"elastic-v1|K={K}|steps={self.steps}".encode(), digest_size=16)
        try:
            for worker in workers:
                spawn(worker)
            for t in range(self.steps):
                flatten_arrays([p.data for p in params], param_np)
                for worker in workers:
                    worker.conn.send(("step", t))
                acks = self._collect_acks(workers, t, spawn, result)
                for s in range(K):
                    workers[s].last_acked_state = acks[s]["sampler_state"]
                result.losses.append([acks[s]["loss"] for s in range(K)])
                result.seed_hashes.append(
                    [acks[s]["seeds_hash"] for s in range(K)])
                self._reduce_and_step(grad_np, params, opt, cfg, t, K, P)
                chain.update(str(t).encode())
                for s in range(K):
                    chain.update(acks[s]["seeds_hash"].encode())
                    chain.update(acks[s]["grad_hash"].encode())
                flatten_arrays([p.data for p in params], param_np)
                chain.update(param_np.tobytes())
        finally:
            self._stop_workers(workers)
        result.fingerprint = chain.hexdigest()
        result.state = est.model.state_dict()
        return result

    # ------------------------------------------------------------------
    def _collect_acks(self, workers: List[_Worker], t: int, spawn,
                      result: ElasticResult) -> Dict[int, Dict[str, Any]]:
        """Gather one ack per shard, respawning dead workers in place.

        A worker that died mid-step gets a replacement built from its
        last-acked sampler state; the same ``("step", t)`` command is
        re-issued, and the replacement produces the bitwise-identical
        gradient its predecessor owed.  Acks already buffered in a dead
        worker's pipe are still drained first — a gradient is never
        recomputed once acknowledged (exactly-once per (shard, step)).
        """
        acks: Dict[int, Dict[str, Any]] = {}
        deadline = time.monotonic() + self.step_timeout
        while len(acks) < len(workers):
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"step {t}: shards "
                    f"{sorted(set(range(len(workers))) - set(acks))} never "
                    f"acked within {self.step_timeout}s")
            for worker in workers:
                if worker.shard in acks:
                    continue
                got = False
                if worker.conn.poll(POLL_INTERVAL):
                    try:
                        msg = worker.conn.recv()  # noqa: A006 — bounded by the poll above
                        got = True
                    except (EOFError, OSError):
                        got = False
                    if got and msg.get("step") == t:
                        acks[worker.shard] = msg
                        continue
                if not got and not worker.proc.is_alive():
                    result.deaths.append({
                        "step": t, "shard": worker.shard,
                        "exitcode": worker.proc.exitcode,
                        "restart": worker.restarts + 1,
                    })
                    worker.conn.close()
                    worker.proc.join(timeout=10.0)
                    worker.restarts += 1
                    spawn(worker)
                    worker.conn.send(("step", t))
        return acks

    # ------------------------------------------------------------------
    @staticmethod
    def _reduce_and_step(grad_np: np.ndarray, params, opt, cfg,
                         t: int, K: int, P: int) -> None:
        order = np.random.default_rng([cfg.seed, 11, t]).permutation(K)
        acc = np.zeros(P, dtype=np.float64)
        for s in order:
            acc += grad_np[s]
        acc /= K
        offset = 0
        for param in params:
            n = param.data.size
            param.grad = acc[offset:offset + n].reshape(
                param.data.shape).copy()
            offset += n
        opt.clip_grad_norm(cfg.grad_clip)
        opt.step()

    # ------------------------------------------------------------------
    @staticmethod
    def _stop_workers(workers: List[_Worker]) -> None:
        for worker in workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):  # noqa: R005 — worker already dead
                    pass
        for worker in workers:
            proc = worker.proc
            if proc is None:
                continue
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10.0)
            if worker.conn is not None:
                worker.conn.close()
