"""Fleet front door: asyncio proxy with consistent-hash affinity (DESIGN §17).

The router owns no model state.  It reads each client request, computes
an affinity key from the method/target/body (so identical ``/predict``
bodies always hash to the same replica and hit its warm LRU cache),
forwards the request to that replica over a pooled keep-alive
connection, and relays the response — stamped with ``X-Fleet-Replica``
so tests and drills can observe placement.

Failover: connection-refused / reset / timeout errors walk the ring's
successor list with exponential backoff.  Predictions are idempotent
reads, so replaying a request against the next replica preserves
exactly-once *responses* (each client request yields exactly one
response) even while a replica is being killed and restarted under it.
A client only ever sees 503 when every member of the ring failed.

Locally answered endpoints:

- ``GET  /fleet/status`` — supervisor snapshot (members, restarts, ...)
- ``GET  /healthz``      — 200 while the ring has members
- ``GET  /metrics``      — router counters + per-replica metrics
- ``POST /admin/reload`` — delegates to the supervisor's rolling reload

Membership is mutated by the supervisor thread through
:meth:`FleetRouter.set_member` / :meth:`drop_member`; the ring and pools
are lock-guarded because those calls race the event loop's lookups.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Callable, Dict, List, Optional, Tuple

from .heartbeat import http_json
from .ring import HashRing

__all__ = ["FleetRouter", "BackgroundRouter"]

#: Seconds allowed for one TCP connect to a replica.
CONNECT_TIMEOUT = 3.0
#: Seconds allowed for a replica to answer one forwarded request.
RESPONSE_TIMEOUT = 60.0
#: First failover backoff; doubles per additional attempt.
FAILOVER_BACKOFF = 0.02
#: Extra full ring passes after the first (a just-restarted replica may
#: need one more probe round before it accepts connections).
RING_PASSES = 3

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable"}


class FleetRouter:
    """Consistent-hash HTTP proxy over the replica set."""

    def __init__(self, *, ring_seed: int = 0, vnodes: int = 64,
                 status_provider: Optional[Callable[[], dict]] = None,
                 reload_handler: Optional[Callable[[str], dict]] = None,
                 verbose: bool = False) -> None:
        self.ring = HashRing(vnodes=vnodes, seed=ring_seed)  # guarded-by: _lock
        self._addrs: Dict[str, Tuple[str, int]] = {}  # guarded-by: _lock
        self._pools: Dict[str, List[Tuple[asyncio.StreamReader,
                                          asyncio.StreamWriter]]] = {}
        self._lock = threading.Lock()
        self._status_provider = status_provider
        self._reload_handler = reload_handler
        self.verbose = verbose
        self._server: Optional[asyncio.base_events.Server] = None
        self._counters = {"requests": 0, "forwarded": 0, "failovers": 0,
                          "unroutable": 0}  # guarded-by: _lock
        # Sequence-numbered membership op log: the warm standby mirrors
        # the ring by replaying ops it has not seen (DESIGN §18).
        self._member_seq = 0  # guarded-by: _lock
        self._member_log: List[dict] = []  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Membership (called from the supervisor thread)
    # ------------------------------------------------------------------
    def set_member(self, name: str, host: str, port: int) -> None:
        with self._lock:
            self._addrs[name] = (host, port)
            self.ring.add(name)
            self._member_seq += 1
            self._member_log.append({"seq": self._member_seq, "op": "set",
                                     "name": name, "host": host,
                                     "port": int(port)})

    def drop_member(self, name: str) -> None:
        """Drain: stop routing *new* requests at ``name``.

        In-flight forwards already own their pooled connection and
        finish normally; the pool itself is emptied so nothing re-uses a
        socket to a replica that may be about to die.
        """
        with self._lock:
            self.ring.remove(name)
            stale = self._pools.pop(name, [])
            self._member_seq += 1
            self._member_log.append({"seq": self._member_seq, "op": "drop",
                                     "name": name})
        for _, writer in stale:
            writer.close()

    def members(self) -> Dict[str, Tuple[str, int]]:
        with self._lock:
            return {n: self._addrs[n] for n in self.ring.nodes}

    def membership_since(self, since: int) -> Tuple[int, List[dict]]:
        """Ops later than sequence ``since``, for standby mirroring."""
        with self._lock:
            return (self._member_seq,
                    [op for op in self._member_log if op["seq"] > since])

    def apply_membership(self, ops: List[dict]) -> None:
        """Replay a peer's op log into this (mirror) router."""
        for op in ops:
            if op.get("op") == "set":
                self.set_member(op["name"], op["host"], int(op["port"]))
            elif op.get("op") == "drop":
                self.drop_member(op["name"])

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_client, host, port, backlog=2048)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            for _, writer in pool:
                writer.close()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (BrokenPipeError, ConnectionResetError):  # noqa: R005 — client hung up mid-exchange
            pass
        finally:
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), 5.0)
            except (OSError, asyncio.TimeoutError):  # noqa: R005 — client already gone
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        try:
            line = await asyncio.wait_for(reader.readline(), RESPONSE_TIMEOUT)
        except asyncio.TimeoutError:
            return False
        if not line or not line.strip():
            return False
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._respond(writer, 400,
                                {"error": "malformed request line"})
            return False
        headers: Dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), RESPONSE_TIMEOUT)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = b""
        if length > 0:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), RESPONSE_TIMEOUT)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                await self._respond(writer, 400,
                                    {"error": "request body truncated"})
                return False
        client_close = headers.get("connection", "").lower() == "close"
        with self._lock:
            self._counters["requests"] += 1
        if self.verbose:
            print(f"fleet {method} {target}")

        path = target.split("?", 1)[0]
        local = await self._handle_local(method, path, body)
        if local is not None:
            payload, status = local
            await self._respond(writer, status, payload, close=client_close)
            return not client_close

        replica, status, resp_headers, resp_body = await self._forward(
            method, target, headers, body)
        if replica is None:
            await self._respond(
                writer, 503,
                {"error": "no fleet replica reachable", "retry_after": 1},
                extra={"Retry-After": "1"}, close=client_close)
            return not client_close
        out_headers = {"X-Fleet-Replica": replica}
        if "retry-after" in resp_headers:
            out_headers["Retry-After"] = resp_headers["retry-after"]
        await self._respond_raw(writer, status, resp_body, out_headers,
                                close=client_close)
        return not client_close

    # ------------------------------------------------------------------
    # Local endpoints
    # ------------------------------------------------------------------
    async def _handle_local(self, method: str, path: str,
                            body: bytes) -> Optional[Tuple[dict, int]]:
        if path == "/fleet/status" and method == "GET":
            status = (self._status_provider()
                      if self._status_provider else {})
            with self._lock:
                status = dict(status)
                status["router"] = dict(self._counters)
                status["ring"] = list(self.ring.nodes)
            return status, 200
        if path == "/healthz" and method == "GET":
            with self._lock:
                members = len(self.ring)
            return {"status": "ok" if members else "unroutable",
                    "members": members}, (200 if members else 503)
        if path == "/metrics" and method == "GET":
            return await self._aggregate_metrics(), 200
        if path == "/admin/reload" and method == "POST":
            if self._reload_handler is None:
                return {"error": "fleet has no reload handler"}, 404
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError:
                return {"error": "invalid JSON body"}, 400
            ckpt = payload.get("path")
            if not isinstance(ckpt, str) or not ckpt:
                return {"error": "body must contain a checkpoint path"}, 400
            loop = asyncio.get_running_loop()
            # Rolling reload shadow-validates + swaps replica by replica:
            # seconds of blocking HTTP; keep it off the event loop.
            report = await loop.run_in_executor(
                None, self._reload_handler, ckpt)
            return report, (200 if report.get("reloaded") else 409)
        return None

    async def _aggregate_metrics(self) -> dict:
        members = self.members()
        loop = asyncio.get_running_loop()

        def _fetch(addr: Tuple[str, int]) -> dict:
            try:
                status, payload = http_json(addr[0], addr[1], "GET",
                                            "/metrics", timeout=5.0)
            except OSError as exc:
                return {"error": str(exc)}
            return payload if status == 200 else {"error": f"HTTP {status}"}

        per_replica = {}
        for name, addr in members.items():
            per_replica[name] = await loop.run_in_executor(None, _fetch, addr)
        with self._lock:
            counters = dict(self._counters)
        return {"fleet": counters, "replicas": per_replica}

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _route(self, method: str, target: str, body: bytes) -> List[str]:
        key = f"{method}|{target}|{body.decode('latin-1')}"
        with self._lock:
            if not len(self.ring):
                return []
            return self.ring.successors(key)

    async def _forward(self, method: str, target: str,
                       headers: Dict[str, str], body: bytes):
        """Try the affinity owner, then ring successors, with backoff.

        Returns ``(replica, status, resp_headers, resp_body)`` or
        ``(None, ...)`` when every attempt failed at the connection
        level.  Membership is re-read between passes so a replica the
        supervisor restarts mid-request becomes routable again.
        """
        attempt = 0
        for _pass in range(1 + RING_PASSES):
            for name in self._route(method, target, body):
                with self._lock:
                    addr = self._addrs.get(name)
                    in_ring = name in self.ring
                if addr is None or not in_ring:
                    continue
                if attempt > 0:
                    with self._lock:
                        self._counters["failovers"] += 1
                    await asyncio.sleep(
                        min(1.0, FAILOVER_BACKOFF * (2 ** min(attempt, 6))))
                attempt += 1
                try:
                    result = await self._forward_once(
                        name, addr, method, target, headers, body)
                except (OSError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError):
                    continue
                with self._lock:
                    self._counters["forwarded"] += 1
                return (name, *result)
        with self._lock:
            self._counters["unroutable"] += 1
        return None, 503, {}, b""

    async def _forward_once(self, name: str, addr: Tuple[str, int],
                            method: str, target: str,
                            headers: Dict[str, str], body: bytes):
        conn = self._checkout(name)
        if conn is None:
            conn = await asyncio.wait_for(
                asyncio.open_connection(addr[0], addr[1]), CONNECT_TIMEOUT)
        reader, writer = conn
        head = [f"{method} {target} HTTP/1.1",
                f"Host: {addr[0]}:{addr[1]}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}"]
        request = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        try:
            writer.write(request)
            await asyncio.wait_for(writer.drain(), RESPONSE_TIMEOUT)
            status, resp_headers, resp_body = await asyncio.wait_for(
                self._read_replica_response(reader), RESPONSE_TIMEOUT)
        except BaseException:
            writer.close()
            raise
        self._checkin(name, reader, writer)
        return status, resp_headers, resp_body

    async def _read_replica_response(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            raise ConnectionResetError("replica closed connection")
        status = int(line.split()[1])
        resp_headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length else b""
        return status, resp_headers, body

    def _checkout(self, name: str):
        with self._lock:
            pool = self._pools.get(name)
            if pool:
                return pool.pop()
        return None

    def _checkin(self, name: str, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        with self._lock:
            if name in self.ring:
                self._pools.setdefault(name, []).append((reader, writer))
                return
        writer.close()

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------
    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict, extra: Optional[Dict[str, str]] = None,
                       close: bool = False) -> None:
        await self._respond_raw(writer, status, json.dumps(payload).encode(),
                                extra or {}, close=close)

    async def _respond_raw(self, writer: asyncio.StreamWriter, status: int,
                           body: bytes, extra: Dict[str, str],
                           close: bool = False) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Server: repro-fleet-router/1.0"]
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        try:
            await asyncio.wait_for(writer.drain(), RESPONSE_TIMEOUT)
        except (OSError, asyncio.TimeoutError):  # noqa: R005 — client already gone
            pass


class BackgroundRouter:
    """The router on its own thread + event loop (mirrors the aio server)."""

    def __init__(self, router: FleetRouter, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.router = router
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._bound: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._thread_main,
                                        daemon=True,
                                        name="repro-fleet-router")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("fleet router did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("fleet router failed to start") \
                from self._startup_error
        if self._bound is None:
            raise RuntimeError("fleet router reported ready without binding")
        return self._bound

    def shutdown(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None \
                and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # noqa: R005 — loop closed between check and call: already down
                pass
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _thread_main(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            try:
                self._bound = await self.router.start(self._host, self._port)
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop_event.wait()
            await self.router.stop()
            # Drain in-flight connection handlers ourselves: cancelling
            # and *gathering* them retrieves their CancelledErrors, so a
            # router killed mid-forward never spills "exception was
            # never retrieved" tracebacks into drill/test output.  The
            # handler filter covers CPython 3.11's StreamReaderProtocol
            # done-callback, which calls task.exception() on the
            # cancelled task and re-raises the CancelledError into the
            # loop's exception handler.
            def _quiet_cancelled(loop: asyncio.AbstractEventLoop,
                                 context: dict) -> None:
                if isinstance(context.get("exception"),
                              asyncio.CancelledError):
                    return  # expected: handlers axed mid-shutdown
                loop.default_exception_handler(context)

            self._loop.set_exception_handler(_quiet_cancelled)
            pending = [t for t in asyncio.all_tasks()
                       if t is not asyncio.current_task()]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

        asyncio.run(_main())
