"""``python -m repro.fleet``: run a self-healing serving fleet.

Usage::

    python -m repro.fleet model.npz --replicas 3 --port 8099

Boots N replica subprocesses (asyncio servers, mmap-shared checkpoint)
behind the consistent-hash router, supervised with automatic restarts.
``GET /fleet/status`` on the router shows membership and restart counts;
``POST /admin/reload {"path": ...}`` rolls the fleet onto a new
checkpoint through the shadow-validation gate.
"""

from __future__ import annotations

import argparse
import signal
import threading


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Serve a replicated, self-healing prediction fleet.",
    )
    parser.add_argument("checkpoint",
                        help="path to a .npz checkpoint written by "
                             "CATEHGN.save_checkpoint / save_catehgn")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8099)
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="per-replica LRU result-cache capacity")
    parser.add_argument("--ring-seed", type=int, default=0)
    parser.add_argument("--vnodes", type=int, default=64)
    parser.add_argument("--no-mmap", action="store_true",
                        help="replicas materialize the checkpoint privately")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from .supervisor import ServingFleet

    fleet = ServingFleet(args.checkpoint, args.replicas,
                         host=args.host, port=args.port,
                         ring_seed=args.ring_seed, vnodes=args.vnodes,
                         verbose=not args.quiet,
                         cache_size=args.cache_size, mmap=not args.no_mmap)
    host, port = fleet.start()
    print(f"fleet of {args.replicas} replicas at http://{host}:{port} "
          f"(status: /fleet/status)")
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *a: stop.set())
    signal.signal(signal.SIGINT, lambda *a: stop.set())
    try:
        while not stop.wait(1.0):
            pass
    finally:
        fleet.shutdown()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
