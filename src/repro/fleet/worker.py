"""Elastic training worker: one shard of the minibatch stream (DESIGN §17).

Workers are **forked** from the coordinator after it has built the model,
graph, and per-shard samplers, so they inherit everything by copy-on-write
— no pickling, no re-materialization.  The step protocol over the pipe:

    coordinator → worker:  ("step", t)   |  ("stop",)
    worker → coordinator:  {"step": t, "shard": s, "loss": float,
                            "seeds_hash": ..., "grad_hash": ...,
                            "sampler_state": <sampler.state_dict()>}

Per step the worker (1) copies the coordinator-published flat parameter
vector out of shared memory into its private model, (2) samples its
shard's next minibatch, (3) runs forward/backward with a step-keyed RNG
``default_rng([seed, 7, shard, step])``, and (4) writes its flattened
gradient into its slice of the shared gradient buffer.

Determinism contract: the gradient a worker produces for ``(shard, t)``
is a pure function of (published params, sampler state at t, shard, t).
Nothing depends on wall clock, pid, or arrival order — which is what
lets a replacement worker, respawned from the last-acked sampler state,
recompute *bitwise* the gradient its dead predecessor owed.

The fault site ``fleet.worker.step`` fires before the forward pass;
``faults.kill_worker(shard, step)`` turns it into an ``os._exit`` —
hard death, no cleanup — which the worker-death drill uses.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from ..resilience import faults

__all__ = ["WorkerContext", "worker_loop", "flatten_arrays",
           "load_flat_params"]

#: Seconds a worker waits for the next command before concluding the
#: coordinator is gone and exiting (orphan cleanup).
COMMAND_TIMEOUT = 600.0


def flatten_arrays(arrays: List[np.ndarray], out: np.ndarray) -> None:
    """Concatenate ``arrays`` raveled into the preallocated flat ``out``."""
    offset = 0
    for arr in arrays:
        n = arr.size
        out[offset:offset + n] = arr.ravel()
        offset += n


def load_flat_params(params, flat: np.ndarray) -> None:
    """Copy a flat vector back into ``param.data`` slices, in order."""
    offset = 0
    for param in params:
        n = param.data.size
        param.data[...] = flat[  # repro-lint: disable=R001 — param load, like load_state_dict
            offset:offset + n].reshape(param.data.shape)
        offset += n


@dataclass
class WorkerContext:
    """Everything a forked worker needs, captured before the fork."""

    shard: int
    num_shards: int
    step_seed: int            # folded into the per-step loss RNG
    model: Any                # CATEHGNModel (inherited, mutated privately)
    params: List[Any]         # main-parameter list, coordinator's order
    sampler: Any              # bound shard MinibatchSampler
    use_label_inputs: bool
    conn: Any                 # multiprocessing.Connection (child end)
    param_buf: Any            # shared flat params, length P
    grad_buf: Any             # shared flat grads, length K * P
    param_count: int


def _step_batch(ctx: WorkerContext):
    """Sample the shard's next minibatch, with label-input channels."""
    mb = ctx.sampler.next_minibatch()
    batch = mb.batch
    if ctx.use_label_inputs:
        batch = batch.with_label_inputs(mb.input_local, mb.input_values,
                                        batch.labeled_ids, batch.labels)
    return mb, batch


def _run_step(ctx: WorkerContext, step: int,
              param_view: np.ndarray,
              grad_view: np.ndarray) -> Dict[str, Any]:
    load_flat_params(ctx.params, param_view)
    mb, batch = _step_batch(ctx)
    faults.fire("fleet.worker.step", shard=ctx.shard, step=step)
    rng = np.random.default_rng([ctx.step_seed, 7, ctx.shard, step])
    state = ctx.model.forward_state(batch)
    loss = ctx.model.hgn_loss(state, batch, rng)
    for param in ctx.params:
        param.zero_grad()
    loss.backward()
    flat = np.zeros(ctx.param_count, dtype=np.float64)
    offset = 0
    for param in ctx.params:
        n = param.data.size
        if param.grad is not None:
            flat[offset:offset + n] = param.grad.ravel()
        offset += n
    grad_view[:] = flat
    return {
        "step": step,
        "shard": ctx.shard,
        "loss": float(loss.data),
        "seeds_hash": hashlib.blake2b(
            np.ascontiguousarray(mb.seeds).tobytes(),
            digest_size=8).hexdigest(),
        "grad_hash": hashlib.blake2b(flat.tobytes(),
                                     digest_size=8).hexdigest(),
        "sampler_state": ctx.sampler.state_dict(),
    }


def worker_loop(ctx: WorkerContext) -> None:
    """Process entry point: serve step commands until told to stop."""
    param_view = np.frombuffer(ctx.param_buf,
                               dtype=np.float64)[:ctx.param_count]
    grads = np.frombuffer(ctx.grad_buf, dtype=np.float64)
    lo = ctx.shard * ctx.param_count
    grad_view = grads[lo:lo + ctx.param_count]
    while True:
        if not ctx.conn.poll(COMMAND_TIMEOUT):
            os._exit(3)  # coordinator vanished; don't linger as an orphan
        try:
            msg = ctx.conn.recv()  # noqa: A006 — bounded by the poll above
        except (EOFError, OSError):
            os._exit(3)
        if msg[0] == "stop":
            ctx.conn.close()
            return
        if msg[0] != "step":
            continue
        ack = _run_step(ctx, int(msg[1]), param_view, grad_view)
        try:
            ctx.conn.send(ack)
        except (BrokenPipeError, OSError):
            os._exit(3)
