"""Elastic training worker: one shard of the minibatch stream (DESIGN §17).

Workers are **forked** from the coordinator after it has built the model,
graph, and per-shard samplers, so they inherit everything by copy-on-write
— no pickling, no re-materialization.  Two transports share one compute
core (:func:`compute_step`):

**Shared memory** (local fast path) — the step protocol over the pipe:

    coordinator → worker:  ("step", t)   |  ("stop",)
    worker → coordinator:  {"step": t, "shard": s, "loss": float,
                            "seeds_hash": ..., "grad_hash": ...,
                            "sampler_state": <sampler.state_dict()>}

**TCP** (cross-machine path, DESIGN §18) — the worker *pulls* over
:class:`~repro.fleet.transport.RpcClient`: ``get_command(shard, gen)``
returns ``step`` (with the published parameter vector), ``wait``,
``fenced``, or ``stop``; gradients return via ``push_result``.  Every
call carries the worker's **fencing generation**: once the coordinator
declares a worker dead and respawns its shard, the stale predecessor's
next call is answered ``fenced`` and it exits instead of corrupting a
step.  All waits are deadline-bounded; a coordinator silent for
``COMMAND_TIMEOUT`` means the worker is an orphan and exits.

Per step the worker (1) loads the coordinator-published flat parameter
vector into its private model, (2) samples its shard's next minibatch,
(3) runs forward/backward with a step-keyed RNG
``default_rng([seed, 7, shard, step])``, and (4) hands back its
flattened gradient (shared-memory slice or RPC payload).

Determinism contract: the gradient a worker produces for ``(shard, t)``
is a pure function of (published params, sampler state at t, shard, t).
Nothing depends on wall clock, pid, arrival order, *or transport* —
which is what lets a replacement worker, respawned from the last-acked
sampler state, recompute *bitwise* the gradient its dead predecessor
owed, and what makes the shm and tcp trajectories byte-identical.

The fault site ``fleet.worker.step`` fires before the forward pass on
both transports; ``faults.kill_worker(shard, step)`` turns it into an
``os._exit`` — hard death, no cleanup — which the drills use.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..resilience import faults
from .transport import CallTimeout, PeerDead, RpcClient, RpcError

__all__ = ["WorkerContext", "TcpWorkerContext", "worker_loop",
           "tcp_worker_loop", "compute_step", "flatten_arrays",
           "load_flat_params"]

#: Seconds a worker waits for the next command before concluding the
#: coordinator is gone and exiting (orphan cleanup).
COMMAND_TIMEOUT = 600.0
#: Per-RPC deadline for a TCP worker's control calls.  Short enough that
#: a partitioned worker cycles fast (and discovers its fencing promptly
#: after the partition heals), long enough for a gradient-sized payload.
CALL_DEADLINE = 2.0
#: Idle pause between ``get_command`` polls when the answer was "wait".
WAIT_POLL = 0.02
#: Exit codes: orphaned (coordinator gone) vs fenced (successor active).
EXIT_ORPHANED = 3
EXIT_FENCED = 4


def flatten_arrays(arrays: List[np.ndarray], out: np.ndarray) -> None:
    """Concatenate ``arrays`` raveled into the preallocated flat ``out``."""
    offset = 0
    for arr in arrays:
        n = arr.size
        out[offset:offset + n] = arr.ravel()
        offset += n


def load_flat_params(params, flat: np.ndarray) -> None:
    """Copy a flat vector back into ``param.data`` slices, in order."""
    offset = 0
    for param in params:
        n = param.data.size
        param.data[...] = flat[  # repro-lint: disable=R001 — param load, like load_state_dict
            offset:offset + n].reshape(param.data.shape)
        offset += n


@dataclass
class WorkerContext:
    """Everything a forked worker needs, captured before the fork."""

    shard: int
    num_shards: int
    step_seed: int            # folded into the per-step loss RNG
    model: Any                # CATEHGNModel (inherited, mutated privately)
    params: List[Any]         # main-parameter list, coordinator's order
    sampler: Any              # bound shard MinibatchSampler
    use_label_inputs: bool
    conn: Any                 # multiprocessing.Connection (child end)
    param_buf: Any            # shared flat params, length P
    grad_buf: Any             # shared flat grads, length K * P
    param_count: int


def _step_batch(ctx: WorkerContext):
    """Sample the shard's next minibatch, with label-input channels."""
    mb = ctx.sampler.next_minibatch()
    batch = mb.batch
    if ctx.use_label_inputs:
        batch = batch.with_label_inputs(mb.input_local, mb.input_values,
                                        batch.labeled_ids, batch.labels)
    return mb, batch


def compute_step(ctx, step: int,
                 param_vec: np.ndarray) -> Tuple[np.ndarray, Dict[str, Any]]:
    """The transport-independent step kernel: params in, gradient out.

    Returns ``(flat_gradient, ack)``.  Bitwise determinism lives here:
    both transports call this exact function, so a fixed (published
    params, sampler state, shard, step) yields the identical gradient
    bytes whether they travel through shared memory or a socket.
    """
    load_flat_params(ctx.params, param_vec)
    mb, batch = _step_batch(ctx)
    faults.fire("fleet.worker.step", shard=ctx.shard, step=step)
    rng = np.random.default_rng([ctx.step_seed, 7, ctx.shard, step])
    state = ctx.model.forward_state(batch)
    loss = ctx.model.hgn_loss(state, batch, rng)
    for param in ctx.params:
        param.zero_grad()
    loss.backward()
    flat = np.zeros(ctx.param_count, dtype=np.float64)
    offset = 0
    for param in ctx.params:
        n = param.data.size
        if param.grad is not None:
            flat[offset:offset + n] = param.grad.ravel()
        offset += n
    ack = {
        "step": step,
        "shard": ctx.shard,
        "loss": float(loss.data),
        "seeds_hash": hashlib.blake2b(
            np.ascontiguousarray(mb.seeds).tobytes(),
            digest_size=8).hexdigest(),
        "grad_hash": hashlib.blake2b(flat.tobytes(),
                                     digest_size=8).hexdigest(),
        "sampler_state": ctx.sampler.state_dict(),
    }
    return flat, ack


def _run_step(ctx: WorkerContext, step: int,
              param_view: np.ndarray,
              grad_view: np.ndarray) -> Dict[str, Any]:
    flat, ack = compute_step(ctx, step, param_view)
    grad_view[:] = flat
    return ack


def worker_loop(ctx: WorkerContext) -> None:
    """Process entry point: serve step commands until told to stop."""
    param_view = np.frombuffer(ctx.param_buf,
                               dtype=np.float64)[:ctx.param_count]
    grads = np.frombuffer(ctx.grad_buf, dtype=np.float64)
    lo = ctx.shard * ctx.param_count
    grad_view = grads[lo:lo + ctx.param_count]
    while True:
        if not ctx.conn.poll(COMMAND_TIMEOUT):
            os._exit(3)  # coordinator vanished; don't linger as an orphan
        try:
            msg = ctx.conn.recv()  # noqa: A006 — bounded by the poll above
        except (EOFError, OSError):
            os._exit(3)
        if msg[0] == "stop":
            ctx.conn.close()
            return
        if msg[0] != "step":
            continue
        ack = _run_step(ctx, int(msg[1]), param_view, grad_view)
        try:
            ctx.conn.send(ack)
        except (BrokenPipeError, OSError):
            os._exit(3)


# ---------------------------------------------------------------------------
# TCP transport (DESIGN §18)
# ---------------------------------------------------------------------------

@dataclass
class TcpWorkerContext:
    """Everything a forked TCP worker needs, captured before the fork."""

    shard: int
    num_shards: int
    gen: int                  # fencing generation this worker was born with
    step_seed: int
    model: Any
    params: List[Any]
    sampler: Any
    use_label_inputs: bool
    endpoint: Tuple[str, int]  # coordinator RPC address (or a drill proxy)
    param_count: int


def tcp_worker_loop(ctx: TcpWorkerContext) -> None:
    """Process entry point: pull step commands over the transport.

    The loop caches its last computed ``(step, gradient, ack)`` so a
    re-issued step — a push lost to the network, a coordinator that has
    not yet registered the result — is answered from cache rather than
    recomputed: ``compute_step`` advances the sampler, so recomputing
    would silently burn the *next* minibatch and fork the trajectory.
    """
    client = RpcClient(ctx.endpoint[0], ctx.endpoint[1],
                       jitter_seed=1009 + ctx.shard)
    last_contact = time.monotonic()
    last_step: Optional[int] = None
    last_flat: Optional[np.ndarray] = None
    last_ack: Optional[Dict[str, Any]] = None
    while True:
        if time.monotonic() - last_contact > COMMAND_TIMEOUT:
            os._exit(EXIT_ORPHANED)  # coordinator unreachable for too long
        try:
            resp = client.call("get_command",
                               {"shard": ctx.shard, "gen": ctx.gen},
                               deadline=CALL_DEADLINE)
        except (PeerDead, CallTimeout, RpcError):  # noqa: R005 — retry until COMMAND_TIMEOUT
            continue
        last_contact = time.monotonic()
        cmd = resp.get("cmd")
        if cmd == "stop":
            client.close()
            return
        if cmd == "fenced":
            os._exit(EXIT_FENCED)  # a successor owns this shard now
        if cmd == "wait":
            time.sleep(WAIT_POLL)
            continue
        if cmd != "step":
            continue
        step = int(resp["step"])
        if step != last_step:
            flat, ack = compute_step(
                ctx, step, np.asarray(resp["params"], dtype=np.float64))
            last_step, last_flat, last_ack = step, flat, ack
        try:
            pushed = client.call(
                "push_result",
                {"shard": ctx.shard, "gen": ctx.gen, "step": last_step,
                 "grad": last_flat, "loss": last_ack["loss"],
                 "seeds_hash": last_ack["seeds_hash"],
                 "grad_hash": last_ack["grad_hash"],
                 "sampler_state": last_ack["sampler_state"]},
                deadline=CALL_DEADLINE)
        except (PeerDead, CallTimeout, RpcError):  # noqa: R005 — re-poll; push retries from cache
            continue
        last_contact = time.monotonic()
        if pushed.get("status") == "fenced":
            os._exit(EXIT_FENCED)
