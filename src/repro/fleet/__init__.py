"""Self-healing serving fleet + elastic multi-process training (DESIGN §17).

Serving: :class:`ServingFleet` runs N replica subprocesses (each the
PR-8 asyncio server, memory-mapping a shared checkpoint) behind a
consistent-hash router with health-probed failover, supervised restarts,
and rolling checkpoint reloads.

Training: :class:`ElasticTrainer` runs K worker processes over
shard-disjoint minibatch partitions with a deterministic shared-memory
gradient all-reduce and fingerprint-checked worker-death recovery.
"""

from .coordinator import ElasticResult, ElasticTrainer
from .heartbeat import http_json, probe_once, wait_healthy
from .ring import HashRing
from .router import BackgroundRouter, FleetRouter
from .supervisor import FleetSupervisor, ReplicaHandle, ServingFleet

__all__ = [
    "BackgroundRouter",
    "ElasticResult",
    "ElasticTrainer",
    "FleetRouter",
    "FleetSupervisor",
    "HashRing",
    "ReplicaHandle",
    "ServingFleet",
    "http_json",
    "probe_once",
    "wait_healthy",
]
