"""Self-healing serving fleet + elastic multi-process training (DESIGN §17–§18).

Serving: :class:`ServingFleet` runs N replica subprocesses (each the
PR-8 asyncio server, memory-mapping a shared checkpoint) behind a
consistent-hash router with health-probed failover, supervised restarts,
lease-based membership, rolling checkpoint reloads, and an optional
warm-standby router twin that takes over the public port if the active
router dies.

Training: :class:`ElasticTrainer` runs K worker processes over
shard-disjoint minibatch partitions with a deterministic gradient
all-reduce — shared-memory on one host, or the fault-hardened
:mod:`~repro.fleet.transport` socket layer across machines (same
bitwise trajectory either way) — with fingerprint-checked worker-death
recovery and epoch fencing against zombie workers.
"""

from .coordinator import ElasticResult, ElasticTrainer
from .heartbeat import http_json, probe_once, wait_healthy
from .ring import HashRing
from .router import BackgroundRouter, FleetRouter
from .standby import RouterControl, RouterStandby
from .supervisor import FleetSupervisor, ReplicaHandle, ServingFleet
from .transport import (CallTimeout, CodecError, FaultyTransport,
                        FenceRegistry, LeaseTable, PeerDead, RpcClient,
                        RpcError, RpcServer)

__all__ = [
    "BackgroundRouter",
    "CallTimeout",
    "CodecError",
    "ElasticResult",
    "ElasticTrainer",
    "FaultyTransport",
    "FenceRegistry",
    "FleetRouter",
    "FleetSupervisor",
    "HashRing",
    "LeaseTable",
    "PeerDead",
    "ReplicaHandle",
    "RouterControl",
    "RouterStandby",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "ServingFleet",
    "http_json",
    "probe_once",
    "wait_healthy",
]
