"""Asyncio load-generation client shared by the ``fleet`` drill and bench.

One coroutine per simulated client, each holding a keep-alive connection
and replaying a scripted sequence of ``POST /predict`` bodies.  On a
connection-level failure (refused, reset, timeout) the client re-dials
and **resends the same request** — predictions are idempotent reads, so
a retry cannot double-apply anything, and counting one response per
scripted request is exactly the exactly-once accounting the fleet drill
asserts.

Lives under ``repro.fleet`` (not ``benchmarks/``) so the resilience
drill can import it with only ``src`` on ``PYTHONPATH``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["LoadResult", "run_load", "predict_scripts"]

#: Re-dial attempts per request before recording a client-side failure.
#: Sized so the cumulative backoff (~3.1s) comfortably covers a router
#: standby takeover window (lease TTL + detection + rebind, ~1.5s).
CLIENT_RETRIES = 6
#: First retry backoff; doubles per attempt.
RETRY_BACKOFF = 0.05
#: Per-request wall-clock bound (connect + write + read).
REQUEST_TIMEOUT = 30.0


@dataclass
class LoadResult:
    """Aggregate outcome of one :func:`run_load` run."""

    statuses: List[int] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    #: request-index -> decoded JSON body, only for clients asked to keep them
    bodies: Dict[Tuple[int, int], dict] = field(default_factory=dict)
    #: requests that never got any response within their retry budget
    failures: int = 0

    @property
    def total(self) -> int:
        return len(self.statuses) + self.failures

    def count(self, status: int) -> int:
        return sum(1 for s in self.statuses if s == status)

    def server_errors(self) -> int:
        """Responses in the 5xx range — the fleet drill requires zero."""
        return sum(1 for s in self.statuses if 500 <= s < 600)


def predict_scripts(num_clients: int, per_client: int, num_papers: int,
                    seed: int = 7, ids_per_request: int = 4) -> List[List[bytes]]:
    """Deterministic per-client request bodies for ``POST /predict``."""
    import numpy as np

    rng = np.random.default_rng(seed)
    scripts = []
    for _ in range(num_clients):
        script = []
        for _ in range(per_client):
            ids = rng.integers(0, num_papers, size=ids_per_request)
            script.append(json.dumps(
                {"paper_ids": [int(i) for i in ids]}).encode())
        scripts.append(script)
    return scripts


async def _read_response(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    line = await reader.readline()
    if not line:
        raise ConnectionResetError("server closed connection")
    status = int(line.split()[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _run_client(client_idx: int, host: str, port: int,
                      script: Sequence[bytes], result: LoadResult,
                      keep_bodies: bool, lock: asyncio.Lock) -> None:
    reader = writer = None

    async def _close() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), 5.0)
            except (OSError, asyncio.TimeoutError):  # noqa: R005 — peer already gone
                pass
        reader = writer = None

    for req_idx, body in enumerate(script):
        request = (b"POST /predict HTTP/1.1\r\n"
                   b"Host: fleet\r\nContent-Type: application/json\r\n"
                   b"Content-Length: " + str(len(body)).encode() +
                   b"\r\n\r\n" + body)
        answered = False
        for attempt in range(CLIENT_RETRIES):
            t0 = time.perf_counter()
            try:
                if writer is None:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port), REQUEST_TIMEOUT)
                writer.write(request)
                await asyncio.wait_for(writer.drain(), REQUEST_TIMEOUT)
                status, raw = await asyncio.wait_for(
                    _read_response(reader), REQUEST_TIMEOUT)
            except (OSError, asyncio.TimeoutError, ValueError, IndexError,
                    asyncio.IncompleteReadError):
                await _close()
                await asyncio.sleep(RETRY_BACKOFF * (2 ** attempt))
                continue
            elapsed = time.perf_counter() - t0
            async with lock:
                result.statuses.append(status)
                result.latencies.append(elapsed)
                if keep_bodies:
                    try:
                        result.bodies[(client_idx, req_idx)] = json.loads(raw)
                    except json.JSONDecodeError:
                        result.bodies[(client_idx, req_idx)] = {}
            answered = True
            break
        if not answered:
            async with lock:
                result.failures += 1
    await _close()


def run_load(host: str, port: int, scripts: Sequence[Sequence[bytes]], *,
             keep_bodies: bool = False) -> LoadResult:
    """Replay ``scripts`` (one list of bodies per client) concurrently."""

    async def _main() -> LoadResult:
        result = LoadResult()
        lock = asyncio.Lock()
        await asyncio.gather(*(
            _run_client(i, host, port, script, result, keep_bodies, lock)
            for i, script in enumerate(scripts)))
        return result

    return asyncio.run(_main())
