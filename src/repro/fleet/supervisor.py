"""Replica lifecycle: spawn, probe, restart, drain, rolling reload.

The supervisor is the self-healing half of the fleet (DESIGN §17).  A
monitor thread probes every replica at a fixed cadence and declares one
dead on either signal:

- **process exit** — ``Popen.poll()`` returns a code (crash, OOM-kill,
  the drill's SIGKILL); or
- **lease expiry** — each successful ``/healthz`` probe renews the
  replica's heartbeat lease
  (:class:`~repro.fleet.transport.LeaseTable`, TTL =
  ``miss_threshold × probe_interval``); a live process whose lease
  lapses has stopped proving liveness and is just as dead to clients.
  The lease is the *only* membership authority: a replica is drained
  the moment its lease is gone, before any state it might still serve
  is trusted (DESIGN §18).

Repair is drain-first: the replica leaves the router's hash ring
*before* anything else happens, so new requests fail over to ring
successors instead of piling 5xx onto a corpse; then the process is
respawned with capped exponential backoff and only re-enters the ring
after ``/healthz`` answers.  Rolling reload reuses the same drain
machinery and the PR-5 shadow-validation gate: the first replica is the
canary — if its own ``/admin/reload`` gate rejects the checkpoint (409),
the rest of the fleet never sees it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .heartbeat import http_json, probe_once, wait_healthy
from .router import BackgroundRouter, FleetRouter
from .standby import RouterControl, RouterStandby
from .transport import LeaseTable

__all__ = ["FleetSupervisor", "ReplicaHandle", "ServingFleet"]

#: Cadence of the monitor thread's probe sweep.
PROBE_INTERVAL = 0.5
#: Consecutive failed probes before a live process is declared dead.
MISS_THRESHOLD = 3
#: Restart backoff: first delay, doubling to the cap.
RESTART_BACKOFF = 0.2
RESTART_BACKOFF_CAP = 5.0
#: Seconds a fresh replica gets to bind + report before spawn fails.
SPAWN_DEADLINE = 60.0


class ReplicaHandle:
    """One supervised replica subprocess and its last-known address."""

    def __init__(self, name: str, work_dir: Path) -> None:
        self.name = name
        self.work_dir = work_dir
        self.proc: Optional[subprocess.Popen] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.restarts = 0
        self.consecutive_failures = 0
        self.missed_probes = 0

    @property
    def state_file(self) -> Path:
        return self.work_dir / f"{self.name}.state.json"

    @property
    def log_file(self) -> Path:
        return self.work_dir / f"{self.name}.log"


class FleetSupervisor:
    """Spawns ``num_replicas`` servers and keeps them alive."""

    def __init__(self, checkpoint: str, num_replicas: int = 2, *,
                 cache_size: int = 4096, micro_batch: int = 256,
                 mmap: bool = True, probe_interval: float = PROBE_INTERVAL,
                 miss_threshold: int = MISS_THRESHOLD,
                 restart_backoff: float = RESTART_BACKOFF,
                 restart_backoff_cap: float = RESTART_BACKOFF_CAP,
                 work_dir: Optional[Path] = None,
                 router: Optional[FleetRouter] = None) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.checkpoint = str(checkpoint)
        self.num_replicas = num_replicas
        self.cache_size = cache_size
        self.micro_batch = micro_batch
        self.mmap = mmap
        self.probe_interval = probe_interval
        self.miss_threshold = miss_threshold
        self.restart_backoff = restart_backoff
        self.restart_backoff_cap = restart_backoff_cap
        self.router = router
        #: Heartbeat leases — the membership authority.  TTL covers
        #: ``miss_threshold`` probe sweeps, so the declare-dead timing
        #: matches the old consecutive-miss counter while tolerating an
        #: early probe landing just before a slow one.
        self.leases = LeaseTable(
            max(0.1, float(miss_threshold) * float(probe_interval)))
        self._tmp = None  # not-guarded: start/shutdown only, one control thread
        if work_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            work_dir = Path(self._tmp.name)
        self.work_dir = Path(work_dir)
        self._replicas: Dict[str, ReplicaHandle] = {}  # guarded-by: _lock
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._monitor = None  # not-guarded: start/shutdown only, one control thread
        self._reload_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every replica, wait for health, start the monitor."""
        for i in range(self.num_replicas):
            handle = ReplicaHandle(f"replica-{i}", self.work_dir)
            with self._lock:
                self._replicas[handle.name] = handle
            self._spawn(handle)
            if not self._await_ready(handle, SPAWN_DEADLINE):
                self.shutdown()
                raise RuntimeError(
                    f"{handle.name} did not become healthy within "
                    f"{SPAWN_DEADLINE}s — see {handle.log_file}")
            self._admit(handle)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         daemon=True,
                                         name="repro-fleet-supervisor")
        self._monitor.start()

    def shutdown(self, timeout: float = 15.0) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
            self._monitor = None
        with self._lock:
            handles = list(self._replicas.values())
        for handle in handles:
            if self.router is not None:
                self.router.drop_member(handle.name)
            proc = handle.proc
            if proc is not None and proc.poll() is None:
                proc.terminate()
        for handle in handles:
            proc = handle.proc
            if proc is None:
                continue
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout)
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _spawn(self, handle: ReplicaHandle) -> None:
        handle.state_file.unlink(missing_ok=True)
        cmd = [sys.executable, "-m", "repro.fleet.replica",
               "--checkpoint", self.checkpoint,
               "--state-file", str(handle.state_file),
               "--cache-size", str(self.cache_size),
               "--micro-batch", str(self.micro_batch)]
        if not self.mmap:
            cmd.append("--no-mmap")
        env = dict(os.environ)
        # The replica must import repro exactly as this process does,
        # even when the caller relied on an installed path or cwd.
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in sys.path if p] +
            [env.get("PYTHONPATH", "")]).strip(os.pathsep)
        log = open(handle.log_file, "ab")
        try:
            handle.proc = subprocess.Popen(cmd, stdout=log, stderr=log,
                                           stdin=subprocess.DEVNULL, env=env)
        finally:
            log.close()
        handle.host = handle.port = None
        handle.missed_probes = 0

    def _await_ready(self, handle: ReplicaHandle, deadline: float) -> bool:
        """Wait for the state file, then for ``/healthz``."""
        t0 = time.monotonic()
        while time.monotonic() - t0 < deadline:
            proc = handle.proc
            if proc is None or proc.poll() is not None:
                return False
            if handle.state_file.is_file():
                try:
                    state = json.loads(handle.state_file.read_text())
                except (OSError, json.JSONDecodeError):
                    state = None
                if state:
                    handle.host = state["host"]
                    handle.port = int(state["port"])
                    remaining = deadline - (time.monotonic() - t0)
                    return wait_healthy(handle.host, handle.port,
                                        deadline=max(1.0, remaining))
            time.sleep(0.05)
        return False

    def _admit(self, handle: ReplicaHandle) -> None:
        if handle.host is not None:
            self.leases.grant(handle.name)
            if self.router is not None:
                self.router.set_member(handle.name, handle.host, handle.port)

    # ------------------------------------------------------------------
    # Monitoring + self-healing
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.probe_interval):
            with self._lock:
                handles = list(self._replicas.values())
            for handle in handles:
                if self._stop.is_set():
                    return
                if self._is_dead(handle):
                    self._restart(handle)

    def _is_dead(self, handle: ReplicaHandle) -> bool:
        proc = handle.proc
        if proc is None or proc.poll() is not None:
            return True
        if handle.host is None:
            return False  # still booting; _await_ready owns this window
        if probe_once(handle.host, handle.port, timeout=2.0):
            self.leases.renew(handle.name)
            handle.missed_probes = 0
            handle.consecutive_failures = 0
            return False
        handle.missed_probes += 1  # observability only; the lease decides
        return not self.leases.held(handle.name)

    def _restart(self, handle: ReplicaHandle) -> None:
        """Drain → backoff → respawn → await health → re-admit."""
        self.leases.drop(handle.name)
        if self.router is not None:
            self.router.drop_member(handle.name)
        proc = handle.proc
        if proc is not None and proc.poll() is None:
            proc.kill()  # unresponsive but alive: stop it holding the port
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # noqa: R005 — zombie reaped by next poll
                pass
        delay = min(self.restart_backoff_cap,
                    self.restart_backoff * (2 ** handle.consecutive_failures))
        handle.consecutive_failures += 1
        if self._stop.wait(delay):
            return
        self._spawn(handle)
        handle.restarts += 1
        if self._await_ready(handle, SPAWN_DEADLINE):
            self._admit(handle)
        # On failure: leave it out of the ring; the next monitor sweep
        # sees the dead process and retries with a longer backoff.

    # ------------------------------------------------------------------
    # Drill / test hooks and status
    # ------------------------------------------------------------------
    def kill_replica(self, name: str) -> int:
        """SIGKILL a replica (the drill's crash injection); returns its pid."""
        with self._lock:
            handle = self._replicas[name]
        proc = handle.proc
        if proc is None or proc.poll() is not None:
            raise RuntimeError(f"{name} is not running")
        pid = proc.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    def replica_names(self) -> List[str]:
        with self._lock:
            return sorted(self._replicas)

    def replica_address(self, name: str) -> Tuple[str, int]:
        with self._lock:
            handle = self._replicas[name]
        if handle.host is None:
            raise RuntimeError(f"{name} has no bound address yet")
        return handle.host, handle.port

    def status(self) -> dict:
        with self._lock:
            handles = list(self._replicas.values())
        replicas = {}
        for handle in handles:
            proc = handle.proc
            lease = self.leases.remaining(handle.name)
            replicas[handle.name] = {
                "pid": proc.pid if proc is not None else None,
                "alive": proc is not None and proc.poll() is None,
                "host": handle.host,
                "port": handle.port,
                "restarts": handle.restarts,
                "missed_probes": handle.missed_probes,
                "lease_remaining": (round(max(0.0, lease), 3)
                                    if lease is not None else None),
            }
        return {"checkpoint": self.checkpoint, "replicas": replicas}

    # ------------------------------------------------------------------
    # Rolling reload
    # ------------------------------------------------------------------
    def rolling_reload(self, path: str) -> dict:
        """Swap the fleet onto a new checkpoint one replica at a time.

        The first live replica is the canary: its ``/admin/reload`` runs
        the full PR-5 shadow-validation gate in-process.  A 409 there
        aborts the roll with zero replicas swapped; any later failure
        stops the roll and reports how far it got (already-swapped
        replicas keep the new model — both models passed the gate, so a
        mixed fleet serves validated predictions either way).
        """
        with self._reload_lock:
            names = self.replica_names()
            swapped: List[str] = []
            for name in names:
                with self._lock:
                    handle = self._replicas[name]
                if handle.host is None:
                    continue
                if self.router is not None:
                    self.router.drop_member(name)
                try:
                    status, payload = http_json(
                        handle.host, handle.port, "POST", "/admin/reload",
                        {"path": path}, timeout=300.0)
                except OSError as exc:
                    status, payload = 0, {"error": f"replica unreachable: {exc}"}
                finally:
                    if self.router is not None:
                        self._admit(handle)
                if status != 200:
                    return {"reloaded": False,
                            "canary": names[0] if names else None,
                            "aborted_at": name, "swapped": swapped,
                            "error": payload.get("error", f"HTTP {status}"),
                            "report": payload.get("report")}
                swapped.append(name)
            return {"reloaded": bool(swapped), "swapped": swapped,
                    "checkpoint": path}


class _RouterFacade:
    """Membership indirection: the supervisor writes to *whichever*
    router is currently serving the public port.  Promotion flips
    ``current`` (a single attribute store, atomic under the GIL), so
    membership updates made after a takeover land on the promoted
    router instead of the corpse.
    """

    def __init__(self, router: FleetRouter) -> None:
        self.current = router

    def set_member(self, name: str, host: str, port: int) -> None:
        self.current.set_member(name, host, port)

    def drop_member(self, name: str) -> None:
        self.current.drop_member(name)

    def members(self):
        return self.current.members()


class ServingFleet:
    """Router + supervisor, wired and started together.

    ::

        fleet = ServingFleet("model.npz", num_replicas=3)
        host, port = fleet.start()
        ... point clients at http://host:port ...
        fleet.shutdown()

    With ``standby=True`` a warm twin mirrors the router's ring over the
    DESIGN §18 transport and takes over the public port if the active
    router dies (``kill_active()`` simulates exactly that death); the
    supervisor keeps feeding membership to whichever router currently
    holds the port, via an internal facade.
    """

    def __init__(self, checkpoint: str, num_replicas: int = 2, *,
                 host: str = "127.0.0.1", port: int = 0,
                 ring_seed: int = 0, vnodes: int = 64,
                 standby: bool = False,
                 standby_lease_ttl: Optional[float] = None,
                 verbose: bool = False, **supervisor_kwargs) -> None:
        self.supervisor = FleetSupervisor(checkpoint, num_replicas,
                                          **supervisor_kwargs)
        self.router = FleetRouter(ring_seed=ring_seed, vnodes=vnodes,
                                  status_provider=self.supervisor.status,
                                  reload_handler=self.supervisor.rolling_reload,
                                  verbose=verbose)
        self._facade = _RouterFacade(self.router)
        self.supervisor.router = self._facade
        self._bg = BackgroundRouter(self.router, host, port)
        self._ring_seed = ring_seed
        self._vnodes = vnodes
        self._use_standby = bool(standby)
        self._standby_lease_ttl = standby_lease_ttl
        self.control: Optional[RouterControl] = None
        self.standby: Optional[RouterStandby] = None
        self._started = False

    def start(self) -> Tuple[str, int]:
        bound = self._bg.start()
        if self._use_standby:
            self.control = RouterControl(self.router)
            control_addr = self.control.start()
            kwargs = {}
            if self._standby_lease_ttl is not None:
                kwargs["lease_ttl"] = self._standby_lease_ttl
            self.standby = RouterStandby(
                control_addr, bound,
                ring_seed=self._ring_seed, vnodes=self._vnodes,
                status_provider=self.supervisor.status,
                reload_handler=self.supervisor.rolling_reload,
                on_promote=self._on_promote, jitter_seed=self._ring_seed,
                **kwargs)
            self.standby.start()
        try:
            self.supervisor.start()
        except BaseException:
            self._teardown_routers()
            raise
        self._started = True
        return bound

    def kill_active(self) -> None:
        """Kill the active router mid-flight (the failover drill's axe).

        Stops the public listener *and* the control server with no
        warning to the standby — exactly the blast radius of the router
        process dying.  The supervisor and replicas are untouched; the
        standby notices the lease lapse and takes the port over.
        """
        if not self._use_standby:
            raise RuntimeError("kill_active() requires standby=True")
        if self.control is not None:
            self.control.stop()
        self._bg.shutdown()

    def _on_promote(self, standby: RouterStandby) -> None:
        # Flip supervisor membership writes to the promoted router, then
        # close any sync gap: re-assert every currently-admitted replica
        # (set_member is idempotent; the supervisor's leases are the
        # authority on who belongs).
        self._facade.current = standby.router
        snapshot = self.supervisor.status()["replicas"]
        for name in self.supervisor.leases.members():
            info = snapshot.get(name)
            if info and info["alive"] and info["host"] is not None:
                standby.router.set_member(name, info["host"], info["port"])

    def _teardown_routers(self) -> None:
        if self.standby is not None:
            self.standby.stop()
            self.standby = None
        if self.control is not None:
            self.control.stop()
            self.control = None
        self._bg.shutdown()

    def shutdown(self) -> None:
        self.supervisor.shutdown()
        self._teardown_routers()
        self._started = False

    def __enter__(self) -> "ServingFleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
