"""Seeded consistent-hash ring with virtual nodes (DESIGN §17).

The router keys every request onto this ring so repeated requests for
the same papers land on the same replica — which is what keeps that
replica's LRU prediction cache hot.  Three properties matter and are
property-tested in ``tests/test_fleet_ring.py``:

- **balance**: with enough virtual nodes per member, keys spread close
  to evenly across members;
- **minimal remap**: adding or removing one member only remaps the keys
  that ring segment owned — everything else keeps its assignment (an
  ordinary ``hash(key) % n`` would reshuffle almost every key and cold
  every cache on each membership change);
- **determinism**: positions come from ``blake2b`` over ``(seed, name)``,
  never from Python's salted ``hash()``, so every process that builds a
  ring with the same seed and members computes the same assignment.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["HashRing"]


class HashRing:
    """Consistent hashing over named nodes, ``vnodes`` points per node."""

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64,
                 seed: int = 0) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        #: sorted ring positions, parallel to :attr:`_owners`.
        self._points: List[int] = []
        self._owners: List[str] = []
        self._members: Dict[str, Tuple[int, ...]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def _point(self, label: str) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current members, sorted (a stable view for status reports)."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def add(self, node: str) -> None:
        """Insert ``node``'s virtual points; idempotent."""
        if node in self._members:
            return
        points = []
        for i in range(self.vnodes):
            point = self._point(f"{node}#{i}")
            idx = bisect.bisect_left(self._points, point)
            # blake2b collisions at 64 bits are ignorable, but keep the
            # parallel arrays consistent if one ever lands: first owner
            # at a point wins and the duplicate vnode is dropped.
            if idx < len(self._points) and self._points[idx] == point:
                continue
            self._points.insert(idx, point)
            self._owners.insert(idx, node)
            points.append(point)
        self._members[node] = tuple(points)

    def remove(self, node: str) -> None:
        """Drop ``node``'s virtual points; idempotent."""
        points = self._members.pop(node, None)
        if points is None:
            return
        for point in points:
            idx = bisect.bisect_left(self._points, point)
            if idx < len(self._points) and self._points[idx] == point:
                del self._points[idx]
                del self._owners[idx]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> str:
        """The member owning ``key`` — first vnode clockwise from it."""
        owner = self._owner_index(key)
        return self._owners[owner]

    def successors(self, key: str, count: Optional[int] = None) -> List[str]:
        """Distinct members in ring order starting at ``key``'s owner.

        This is the failover order: the router tries ``successors(key)[0]``
        (the affinity owner) first and walks down the list when a node
        refuses connections or times out.
        """
        if not self._members:
            return []
        if count is None:
            count = len(self._members)
        start = self._owner_index(key)
        out: List[str] = []
        seen = set()
        n = len(self._owners)
        for i in range(n):
            owner = self._owners[(start + i) % n]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) >= count:
                    break
        return out

    def _owner_index(self, key: str) -> int:
        if not self._points:
            raise LookupError("hash ring has no members")
        point = self._point(f"key:{key}")
        idx = bisect.bisect_right(self._points, point)
        return idx % len(self._points)
