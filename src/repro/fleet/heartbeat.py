"""Replica health probing: bounded HTTP GETs with exponential backoff.

Every network wait here carries an explicit deadline (analyzer rule
A006): a probe that could hang forever would turn the supervisor's
monitor loop — the component responsible for *detecting* hangs — into
one more thing that hangs.

Backoff is capped *and jittered* (analyzer rule A007 guards the cap):
N replicas restarting together — a rolling reload, a host reboot —
would otherwise re-probe in thundering-herd lockstep, hammering a
router or replica at the exact moments it is busiest coming back.  The
jitter is **seeded** from the probed endpoint, so each replica's retry
schedule is de-correlated from its peers' yet fully deterministic — a
timing test can pin the exact delay sequence.
"""

from __future__ import annotations

import http.client
import json
import time
import zlib
from typing import Iterator, Optional, Tuple

from .transport import backoff_delays

__all__ = ["probe_once", "wait_healthy", "http_json", "probe_delays"]


def http_json(host: str, port: int, method: str, path: str,
              body: Optional[dict] = None,
              timeout: float = 5.0) -> Tuple[int, dict]:
    """One bounded HTTP request returning ``(status, parsed-json)``.

    Connection-level failures propagate as ``OSError`` (callers decide
    whether that means retry, failover, or dead); an unparsable body
    becomes an empty dict rather than an exception, since probe callers
    only branch on status.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        raw = resp.read()
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            parsed = {}
        return resp.status, parsed
    finally:
        conn.close()


def probe_once(host: str, port: int, *, path: str = "/healthz",
               timeout: float = 2.0) -> bool:
    """Is the replica answering its health endpoint right now?

    ``degraded`` still counts as alive — a saturated queue or open
    breaker is the replica's own overload story, not a death signal the
    supervisor should respond to with a restart.
    """
    try:
        status, _ = http_json(host, port, "GET", path, timeout=timeout)
    except OSError:
        return False
    return status == 200


def probe_delays(host: str, port: int, *, initial: float = 0.05,
                 cap: float = 1.0,
                 jitter_seed: Optional[int] = None) -> Iterator[float]:
    """The seeded jittered backoff schedule :func:`wait_healthy` sleeps.

    The default seed hashes the probed endpoint, so two replicas
    restarting in the same instant draw *different* delay sequences
    (no herd) while any one endpoint's sequence is reproducible (the
    seeded timing test pins it).
    """
    if jitter_seed is None:
        jitter_seed = zlib.crc32(f"{host}:{port}".encode("utf-8"))
    return backoff_delays(initial, cap, seed=jitter_seed)


def wait_healthy(host: str, port: int, *, deadline: float = 30.0,
                 initial: float = 0.05, cap: float = 1.0,
                 path: str = "/healthz",
                 jitter_seed: Optional[int] = None) -> bool:
    """Poll until healthy or the deadline passes; backoff doubles to ``cap``.

    Used when admitting a (re)started replica to the ring: probing at a
    fixed tight interval would hammer a replica that is busy paging in
    its checkpoint, while a fixed slow interval would add seconds of
    avoidable failover window after a crash.  Delays come from
    :func:`probe_delays` — capped, exponential, endpoint-seeded jitter.
    """
    t0 = time.monotonic()
    delays = probe_delays(host, port, initial=initial, cap=cap,
                          jitter_seed=jitter_seed)
    while time.monotonic() - t0 < deadline:
        if probe_once(host, port, path=path,
                      timeout=min(2.0, max(0.2, deadline / 10))):
            return True
        time.sleep(next(delays))
    return False
