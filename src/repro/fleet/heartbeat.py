"""Replica health probing: bounded HTTP GETs with exponential backoff.

Every network wait here carries an explicit deadline (analyzer rule
A006): a probe that could hang forever would turn the supervisor's
monitor loop — the component responsible for *detecting* hangs — into
one more thing that hangs.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Optional, Tuple

__all__ = ["probe_once", "wait_healthy", "http_json"]


def http_json(host: str, port: int, method: str, path: str,
              body: Optional[dict] = None,
              timeout: float = 5.0) -> Tuple[int, dict]:
    """One bounded HTTP request returning ``(status, parsed-json)``.

    Connection-level failures propagate as ``OSError`` (callers decide
    whether that means retry, failover, or dead); an unparsable body
    becomes an empty dict rather than an exception, since probe callers
    only branch on status.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        raw = resp.read()
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            parsed = {}
        return resp.status, parsed
    finally:
        conn.close()


def probe_once(host: str, port: int, *, path: str = "/healthz",
               timeout: float = 2.0) -> bool:
    """Is the replica answering its health endpoint right now?

    ``degraded`` still counts as alive — a saturated queue or open
    breaker is the replica's own overload story, not a death signal the
    supervisor should respond to with a restart.
    """
    try:
        status, _ = http_json(host, port, "GET", path, timeout=timeout)
    except OSError:
        return False
    return status == 200


def wait_healthy(host: str, port: int, *, deadline: float = 30.0,
                 initial: float = 0.05, cap: float = 1.0,
                 path: str = "/healthz") -> bool:
    """Poll until healthy or the deadline passes; backoff doubles to ``cap``.

    Used when admitting a (re)started replica to the ring: probing at a
    fixed tight interval would hammer a replica that is busy paging in
    its checkpoint, while a fixed slow interval would add seconds of
    avoidable failover window after a crash.
    """
    t0 = time.monotonic()
    delay = initial
    while time.monotonic() - t0 < deadline:
        if probe_once(host, port, path=path,
                      timeout=min(2.0, max(0.2, deadline / 10))):
            return True
        time.sleep(min(delay, cap))
        delay *= 2.0
    return False
