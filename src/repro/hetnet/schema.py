"""Heterogeneous network schema (Definition 3.1 of the paper).

A schema declares the node types and the typed links between them.  Per the
paper, the two directions of every link are modeled as two distinct link
types, *except* the paper-cites-paper links which stay a single directed type
to avoid label leakage (a paper must not see who cites it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# Canonical node types of the publication network.
PAPER = "paper"
AUTHOR = "author"
VENUE = "venue"
TERM = "term"

NODE_TYPES = (PAPER, AUTHOR, VENUE, TERM)

EdgeTypeKey = Tuple[str, str, str]  # (src_type, relation, dst_type)


@dataclass(frozen=True)
class EdgeType:
    """A typed link: (source node type, relation name, destination type)."""

    src_type: str
    relation: str
    dst_type: str

    @property
    def key(self) -> EdgeTypeKey:
        return (self.src_type, self.relation, self.dst_type)

    def __str__(self) -> str:
        return f"{self.src_type}-{self.relation}->{self.dst_type}"


@dataclass
class Schema:
    """Node types plus typed links of a heterogeneous network."""

    node_types: List[str] = field(default_factory=list)
    edge_types: List[EdgeType] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._edge_index: Dict[EdgeTypeKey, int] = {
            et.key: i for i, et in enumerate(self.edge_types)
        }

    def add_node_type(self, name: str) -> None:
        if name in self.node_types:
            raise ValueError(f"duplicate node type {name!r}")
        self.node_types.append(name)

    def add_edge_type(self, src_type: str, relation: str, dst_type: str) -> EdgeType:
        for t in (src_type, dst_type):
            if t not in self.node_types:
                raise ValueError(f"unknown node type {t!r}")
        edge_type = EdgeType(src_type, relation, dst_type)
        if edge_type.key in self._edge_index:
            raise ValueError(f"duplicate edge type {edge_type}")
        self._edge_index[edge_type.key] = len(self.edge_types)
        self.edge_types.append(edge_type)
        return edge_type

    def edge_type_id(self, key: EdgeTypeKey) -> int:
        return self._edge_index[key]

    def has_edge_type(self, key: EdgeTypeKey) -> bool:
        return key in self._edge_index

    def edge_types_into(self, dst_type: str) -> List[EdgeType]:
        """All link types whose destination is ``dst_type``."""
        return [et for et in self.edge_types if et.dst_type == dst_type]

    def edge_types_from(self, src_type: str) -> List[EdgeType]:
        return [et for et in self.edge_types if et.src_type == src_type]


def publication_schema(include_terms: bool = True) -> Schema:
    """The paper's Figure 1(a) schema.

    Links (each undirected relation is split into its two directions):

    - paper ``cites`` paper (single direction only — no ``cited_by``, so
      citation labels cannot leak backwards);
    - paper/author ``written_by`` / ``writes``;
    - paper/venue ``published_in`` / ``publishes``;
    - paper/term ``mentions`` / ``mentioned_by`` (optional).
    """
    schema = Schema()
    schema.__post_init__()
    for node_type in (PAPER, AUTHOR, VENUE) + ((TERM,) if include_terms else ()):
        schema.add_node_type(node_type)
    schema.add_edge_type(PAPER, "cites", PAPER)
    schema.add_edge_type(PAPER, "written_by", AUTHOR)
    schema.add_edge_type(AUTHOR, "writes", PAPER)
    schema.add_edge_type(PAPER, "published_in", VENUE)
    schema.add_edge_type(VENUE, "publishes", PAPER)
    if include_terms:
        schema.add_edge_type(PAPER, "mentions", TERM)
        schema.add_edge_type(TERM, "mentioned_by", PAPER)
    return schema
