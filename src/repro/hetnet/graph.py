"""Heterogeneous graph storage.

:class:`HeteroGraph` stores typed nodes, typed weighted directed links
(arrays of (src, dst, weight) per edge type), per-type node feature matrices,
and arbitrary per-type node attribute arrays (publication year, citation
label, domain, ...).  A CSR-like index grouped by destination node supports
fast neighbour lookup for message passing and neighbourhood sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .schema import EdgeTypeKey, Schema
from .structure import EdgeStructure


@dataclass
class EdgeArray:
    """Directed weighted edges of a single type."""

    src: np.ndarray  # (E,) intp — source node ids (within src_type)
    dst: np.ndarray  # (E,) intp — destination node ids (within dst_type)
    weight: np.ndarray  # (E,) float64 — link weight ω(e)

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.intp)
        self.dst = np.asarray(self.dst, dtype=np.intp)
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if not (len(self.src) == len(self.dst) == len(self.weight)):
            raise ValueError("src/dst/weight length mismatch")

    @property
    def num_edges(self) -> int:
        return len(self.src)


class _CSRIndex:
    """Edges of one type grouped by destination node.

    Built on :class:`~repro.hetnet.structure.EdgeStructure` so the
    destination sort is computed by the same code path the message-passing
    batch cache uses.
    """

    def __init__(self, edges: EdgeArray, num_dst: int) -> None:
        structure = EdgeStructure(edges.src, edges.dst, num_dst)
        order = structure.order
        self.src = structure.src[order]
        self.dst = structure.sorted_dst
        self.weight = edges.weight[order]
        self.indptr = structure.indptr

    def neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.src[lo:hi], self.weight[lo:hi]


class HeteroGraph:
    """A typed, weighted, directed multigraph (Definition 3.1 + ω)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.num_nodes: Dict[str, int] = {t: 0 for t in schema.node_types}
        self.edges: Dict[EdgeTypeKey, EdgeArray] = {}
        self.node_features: Dict[str, np.ndarray] = {}
        self.node_names: Dict[str, List[str]] = {}
        self.node_attrs: Dict[str, Dict[str, np.ndarray]] = {
            t: {} for t in schema.node_types
        }
        self._csr: Dict[EdgeTypeKey, _CSRIndex] = {}
        # Topology generation counter + shared message-passing structure
        # cell (see structure_cell()); bumped by every mutation that can
        # change edge arrays or node counts.
        self._topology_version: int = 0
        self._structure_cell: Optional[list] = None
        self._structure_cell_version: int = -1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_nodes(self, node_type: str, count: int,
                  names: Optional[Sequence[str]] = None) -> None:
        if node_type not in self.schema.node_types:
            raise ValueError(f"unknown node type {node_type!r}")
        if names is not None and len(names) != count:
            raise ValueError("names length must equal count")
        self.num_nodes[node_type] = count
        self._topology_version += 1
        if names is not None:
            self.node_names[node_type] = list(names)

    def set_edges(self, key: EdgeTypeKey, src: np.ndarray, dst: np.ndarray,
                  weight: Optional[np.ndarray] = None) -> None:
        if not self.schema.has_edge_type(key):
            raise ValueError(f"unknown edge type {key}")
        src = np.asarray(src, dtype=np.intp)
        dst = np.asarray(dst, dtype=np.intp)
        if weight is None:
            weight = np.ones(len(src), dtype=np.float64)
        src_type, _, dst_type = key
        if len(src) and src.max(initial=-1) >= self.num_nodes[src_type]:
            raise ValueError(f"src id out of range for {key}")
        if len(dst) and dst.max(initial=-1) >= self.num_nodes[dst_type]:
            raise ValueError(f"dst id out of range for {key}")
        self.edges[key] = EdgeArray(src, dst, weight)
        self._csr.pop(key, None)
        self._topology_version += 1

    def set_features(self, node_type: str, features: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != self.num_nodes[node_type]:
            raise ValueError(
                f"feature rows ({features.shape[0]}) != node count "
                f"({self.num_nodes[node_type]}) for {node_type!r}"
            )
        self.node_features[node_type] = features

    def set_attr(self, node_type: str, name: str, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.shape[0] != self.num_nodes[node_type]:
            raise ValueError(f"attr rows mismatch for {node_type}.{name}")
        self.node_attrs[node_type][name] = values

    def get_attr(self, node_type: str, name: str) -> np.ndarray:
        return self.node_attrs[node_type][name]

    def has_attr(self, node_type: str, name: str) -> bool:
        return name in self.node_attrs[node_type]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        return sum(self.num_nodes.values())

    @property
    def total_edges(self) -> int:
        return sum(e.num_edges for e in self.edges.values())

    def csr(self, key: EdgeTypeKey) -> _CSRIndex:
        """Edges of ``key`` grouped by destination (built lazily, cached)."""
        if key not in self._csr:
            dst_type = key[2]
            self._csr[key] = _CSRIndex(self.edges[key], self.num_nodes[dst_type])
        return self._csr[key]

    def structure_cell(self) -> list:
        """Shared lazy cell for the message-passing batch-structure cache.

        Every :meth:`repro.core.hgn.GraphBatch.from_graph` call with
        ``share_structure=True`` receives the *same* one-element list as
        long as this graph's topology is unchanged, so the expensive
        :class:`~repro.hetnet.structure.BatchStructure` (dst-sorted
        orders, CSR indptr, presence masks) is built once per graph
        topology and reused across an entire model roster — not once per
        estimator.  Any :meth:`set_edges` / :meth:`add_nodes` mutation
        bumps the topology version and hands out a fresh cell, which is
        the same invalidation rule the per-batch cache documents.
        """
        if (self._structure_cell is None
                or self._structure_cell_version != self._topology_version):
            self._structure_cell = [None]
            self._structure_cell_version = self._topology_version
        return self._structure_cell

    def in_degree(self, key: EdgeTypeKey) -> np.ndarray:
        """Incoming edge count per destination node for edge type ``key``."""
        dst_type = key[2]
        return np.bincount(
            self.edges[key].dst, minlength=self.num_nodes[dst_type]
        )

    def validate(self) -> None:
        """Raise if edges refer to out-of-range nodes or weights are bad."""
        for key, edge in self.edges.items():
            src_type, _, dst_type = key
            if edge.num_edges == 0:
                continue
            if edge.src.min() < 0 or edge.src.max() >= self.num_nodes[src_type]:
                raise ValueError(f"invalid src ids in {key}")
            if edge.dst.min() < 0 or edge.dst.max() >= self.num_nodes[dst_type]:
                raise ValueError(f"invalid dst ids in {key}")
            if not np.all(np.isfinite(edge.weight)):
                raise ValueError(f"non-finite weights in {key}")

    def check_contracts(self, *, year_attr: str = "year"):
        """Full contract scan (:mod:`repro.contracts`), never raising.

        Returns a :class:`~repro.contracts.ValidationReport` covering the
        complete invariant catalogue — schema conformance, dangling
        endpoints, duplicates, temporal sanity, NaN/Inf scans — a strict
        superset of :meth:`validate`.
        """
        from ..contracts import check_graph  # lazy: hetnet stays base-layer

        return check_graph(self, year_attr=year_attr)

    def statistics(self) -> Dict[str, int]:
        """Table-I-style statistics row."""
        stats = {f"#{t}": self.num_nodes[t] for t in self.schema.node_types}
        stats["#links"] = self.total_edges
        return stats

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Dict[str, np.ndarray]) -> Tuple["HeteroGraph", Dict[str, np.ndarray]]:
        """Induced subgraph on ``nodes`` (dict type -> original ids).

        Returns the new graph and the per-type array of original ids (the
        inverse mapping); features and attributes are sliced through.
        """
        selected = {
            t: np.unique(np.asarray(nodes.get(t, np.array([], dtype=np.intp)),
                                    dtype=np.intp))
            for t in self.schema.node_types
        }
        remap = {}
        for t, ids in selected.items():
            lookup = np.full(self.num_nodes[t], -1, dtype=np.intp)
            lookup[ids] = np.arange(len(ids))
            remap[t] = lookup

        sub = HeteroGraph(self.schema)
        for t, ids in selected.items():
            names = None
            if t in self.node_names:
                names = [self.node_names[t][i] for i in ids]
            sub.add_nodes(t, len(ids), names)
            if t in self.node_features:
                sub.node_features[t] = self.node_features[t][ids]
            for attr, values in self.node_attrs[t].items():
                sub.node_attrs[t][attr] = values[ids]

        for key, edge in self.edges.items():
            src_type, _, dst_type = key
            new_src = remap[src_type][edge.src]
            new_dst = remap[dst_type][edge.dst]
            keep = (new_src >= 0) & (new_dst >= 0)
            sub.set_edges(key, new_src[keep], new_dst[keep], edge.weight[keep])
        return sub, selected

    def to_homogeneous(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
        """Collapse all types into one id space (for the GAT baseline).

        Returns (src, dst, weight) over global ids plus the per-type global
        id offsets mapping.
        """
        offsets = {}
        cursor = 0
        for t in self.schema.node_types:
            offsets[t] = np.arange(self.num_nodes[t]) + cursor
            cursor += self.num_nodes[t]
        srcs, dsts, weights = [], [], []
        for key, edge in self.edges.items():
            src_type, _, dst_type = key
            srcs.append(offsets[src_type][edge.src])
            dsts.append(offsets[dst_type][edge.dst])
            weights.append(edge.weight)
        if srcs:
            return (np.concatenate(srcs), np.concatenate(dsts),
                    np.concatenate(weights), offsets)
        empty = np.array([], dtype=np.intp)
        return empty, empty, np.array([]), offsets

    def to_networkx(self):
        """Export to a :class:`networkx.MultiDiGraph`.

        Nodes are ``(type, id)`` tuples carrying ``name`` (when known) and
        any node attributes; edges carry ``relation`` and ``weight``.
        Intended for interoperability and visualization, not training.
        """
        import networkx as nx

        graph = nx.MultiDiGraph()
        for node_type in self.schema.node_types:
            names = self.node_names.get(node_type)
            for i in range(self.num_nodes[node_type]):
                attrs = {"node_type": node_type}
                if names is not None:
                    attrs["name"] = names[i]
                for attr, values in self.node_attrs[node_type].items():
                    attrs[attr] = values[i]
                graph.add_node((node_type, i), **attrs)
        for key, edge in self.edges.items():
            src_type, relation, dst_type = key
            for s, d, w in zip(edge.src, edge.dst, edge.weight):
                graph.add_edge((src_type, int(s)), (dst_type, int(d)),
                               relation=relation, weight=float(w))
        return graph

    def __repr__(self) -> str:
        counts = ", ".join(f"{t}={n}" for t, n in self.num_nodes.items())
        return f"HeteroGraph({counts}, edges={self.total_edges})"
