"""Heterogeneous publication-network data model (Definition 3.1)."""

from .graph import EdgeArray, HeteroGraph
from .structure import BatchStructure, EdgeStructure
from .metapath import (
    FUNDAMENTAL_METAPATHS,
    MetaPath,
    metapath_pairs,
    metapath_random_walks,
    validate_metapath,
)
from .sampling import negative_nodes, sample_edges, sample_neighborhood
from .schema import (
    AUTHOR,
    NODE_TYPES,
    PAPER,
    TERM,
    VENUE,
    EdgeType,
    EdgeTypeKey,
    Schema,
    publication_schema,
)

__all__ = [
    "HeteroGraph",
    "EdgeArray",
    "BatchStructure",
    "EdgeStructure",
    "Schema",
    "EdgeType",
    "EdgeTypeKey",
    "publication_schema",
    "PAPER",
    "AUTHOR",
    "VENUE",
    "TERM",
    "NODE_TYPES",
    "sample_neighborhood",
    "sample_edges",
    "negative_nodes",
    "MetaPath",
    "FUNDAMENTAL_METAPATHS",
    "metapath_pairs",
    "metapath_random_walks",
    "validate_metapath",
]
