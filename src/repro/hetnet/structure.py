"""Immutable per-batch graph-structure cache for message passing.

Every layer of every forward pass needs the same handful of derived index
structures per edge type: a destination-sorted edge ordering (so segment
reductions can run as contiguous ``np.add.reduceat`` slices instead of
scattered ``np.add.at`` updates), CSR-style segment boundaries, in-degree
counts, and destination presence masks for the link-wise attention of
Eq. (15).  Before this cache existed, ``OneSpaceHGN._layer_forward``
recomputed all of them on every layer of every forward.

:class:`BatchStructure` computes them **once per batch** and is shared by

- all layers of one forward pass,
- all forward passes over the same batch (every mini-iteration, every
  outer iteration, every evaluation pass of Algorithm 1),
- the label-input augmented views produced by
  :meth:`repro.core.hgn.GraphBatch.with_label_inputs` (topology is
  untouched there, so the cache is propagated), and
- the GNN baselines via :mod:`repro.baselines.gnn_common`.

Invalidation rule: the cache is keyed by object identity of the edge
dict — any operation that changes topology (``TextEnhancer.
rebuild_graph_terms`` rewriting term edges, neighbourhood sampling
producing a subgraph) builds a *new* ``GraphBatch`` from the graph and
therefore a fresh structure.  The arrays themselves are treated as
immutable; nothing in the repository mutates them after construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .schema import EdgeTypeKey

__all__ = ["EdgeStructure", "BatchStructure"]


class EdgeStructure:
    """Destination-grouped index arrays for one edge type.

    Attributes
    ----------
    order:
        Stable argsort of ``dst`` — applying it to any per-edge array
        groups the rows of each destination contiguously.
    indptr:
        ``(num_dst + 1,)`` CSR boundaries into the sorted arrays:
        destination ``v``'s in-edges occupy ``order[indptr[v]:indptr[v+1]]``.
    counts:
        Float64 in-degree per destination (for mean aggregation).
    presence:
        Boolean mask of destinations with at least one in-edge (the
        Eq. 15 attention mask source).
    """

    __slots__ = ("src", "dst", "num_dst", "order", "sorted_dst", "indptr",
                 "counts", "presence", "_src_view")

    def __init__(self, src: np.ndarray, dst: np.ndarray, num_dst: int) -> None:
        self.src = np.asarray(src, dtype=np.intp)
        self.dst = np.asarray(dst, dtype=np.intp)
        self.num_dst = int(num_dst)
        self.order = np.argsort(self.dst, kind="stable")
        self.sorted_dst = self.dst[self.order]
        self.indptr = np.searchsorted(
            self.sorted_dst, np.arange(self.num_dst + 1), side="left"
        )
        self.counts = np.bincount(
            self.dst, minlength=self.num_dst
        ).astype(np.float64)
        self.presence = self.counts > 0
        self._src_view: Optional["EdgeStructure"] = None

    def src_view(self, num_src: int) -> "EdgeStructure":
        """Source-grouped companion structure (lazy, cached).

        The backward of a source-side gather scatters per-edge gradients
        by ``src``; with this view the scatter runs as a contiguous
        ``reduceat`` over src-sorted rows, just like the forward's
        dst-side reductions.
        """
        if self._src_view is None:
            self._src_view = EdgeStructure(self.dst, self.src, num_src)
        return self._src_view

    @classmethod
    def identity(cls, num_nodes: int) -> "EdgeStructure":
        """The self-loop structure: node ``v`` connects only to itself."""
        ids = np.arange(num_nodes, dtype=np.intp)
        return cls(ids, ids, num_nodes)


class BatchStructure:
    """All per-edge-type structures of one batch, plus attention masks.

    ``builds`` counts constructor invocations process-wide; the structure
    cache-hit test asserts it stays flat across layers and forwards.
    """

    #: Process-wide construction counter (observability for cache tests).
    builds: int = 0

    def __init__(
        self,
        edges: Dict[EdgeTypeKey, Tuple[np.ndarray, ...]],
        num_nodes: Dict[str, int],
        node_types: Optional[List[str]] = None,
    ) -> None:
        BatchStructure.builds += 1
        self.num_nodes = dict(num_nodes)
        self.edge: Dict[EdgeTypeKey, EdgeStructure] = {}
        for key, arrays in edges.items():
            src, dst = arrays[0], arrays[1]
            self.edge[key] = EdgeStructure(src, dst, num_nodes[key[2]])
        self._self: Dict[int, EdgeStructure] = {}
        if node_types is None:
            node_types = list(num_nodes)
        # Active (non-empty) incoming edge types per destination type, in
        # edge-dict order — the iteration order of Eq. 13's outer sum.
        self.active_keys: Dict[str, List[EdgeTypeKey]] = {
            t: [k for k in edges if k[2] == t and len(edges[k][0]) > 0]
            for t in node_types
        }
        # Eq. 15 presence masks: (N_t, T_t + 1) with the trailing all-True
        # column for the self-loop pseudo type.
        self.mask: Dict[str, np.ndarray] = {}
        for t in node_types:
            cols = [self.edge[k].presence for k in self.active_keys[t]]
            cols.append(np.ones(num_nodes[t], dtype=bool))
            self.mask[t] = np.stack(cols, axis=1)

    def self_loop(self, num_nodes: int) -> EdgeStructure:
        """Identity structure for ``num_nodes`` self edges (cached)."""
        if num_nodes not in self._self:
            self._self[num_nodes] = EdgeStructure.identity(num_nodes)
        return self._self[num_nodes]
