"""Neighbourhood sampling (Algorithm 1, line 5).

Given a batch of seed papers, expand their 1-to-L-hop typed neighbourhoods
with at most ``fanout`` sampled neighbours per node per incoming edge type
(the GraphSAGE-style fixed-size sampling of [10] that keeps CATE-HGN's
memory footprint constant), then return the induced subgraph.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .graph import HeteroGraph
from .schema import EdgeTypeKey


def sample_neighborhood(
    graph: HeteroGraph,
    seed_papers: np.ndarray,
    hops: int,
    fanout: int,
    rng: np.random.Generator,
    seed_type: str = "paper",
) -> Tuple[HeteroGraph, Dict[str, np.ndarray], np.ndarray]:
    """Sample the L-hop heterogeneous neighbourhood of ``seed_papers``.

    Returns
    -------
    subgraph:
        Induced :class:`HeteroGraph` over the sampled nodes.
    selected:
        Per-type arrays of original node ids kept in the subgraph.
    seed_local:
        Positions of the seed papers inside the subgraph's paper ids.
    """
    seed_papers = np.unique(np.asarray(seed_papers, dtype=np.intp))
    kept: Dict[str, set] = {t: set() for t in graph.schema.node_types}
    kept[seed_type].update(seed_papers.tolist())
    frontier: Dict[str, np.ndarray] = {seed_type: seed_papers}

    for _ in range(hops):
        next_frontier: Dict[str, list] = {t: [] for t in graph.schema.node_types}
        for node_type, nodes in frontier.items():
            if len(nodes) == 0:
                continue
            # Message passing flows src -> dst, so the relevant neighbours of
            # a frontier node v are the sources of edges *into* v.
            for edge_type in graph.schema.edge_types_into(node_type):
                csr = graph.csr(edge_type.key)
                src_type = edge_type.src_type
                for v in nodes:
                    neighbors, _ = csr.neighbors(int(v))
                    if len(neighbors) == 0:
                        continue
                    if len(neighbors) > fanout:
                        neighbors = rng.choice(neighbors, size=fanout,
                                               replace=False)
                    fresh = [u for u in neighbors.tolist()
                             if u not in kept[src_type]]
                    if fresh:
                        kept[src_type].update(fresh)
                        next_frontier[src_type].extend(fresh)
        frontier = {
            t: np.array(ids, dtype=np.intp)
            for t, ids in next_frontier.items() if ids
        }
        if not frontier:
            break

    node_sets = {t: np.array(sorted(ids), dtype=np.intp)
                 for t, ids in kept.items()}
    subgraph, selected = graph.subgraph(node_sets)
    seed_local = np.searchsorted(selected[seed_type], seed_papers)
    return subgraph, selected, seed_local


def sample_edges(
    key_edges: Tuple[np.ndarray, np.ndarray, np.ndarray],
    max_edges: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Uniformly subsample an edge array triple to at most ``max_edges``."""
    src, dst, weight = key_edges
    if len(src) <= max_edges:
        return src, dst, weight
    pick = rng.choice(len(src), size=max_edges, replace=False)
    return src[pick], dst[pick], weight[pick]


def negative_nodes(
    num_nodes: int, count: int, rng: np.random.Generator,
    exclude: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Uniform negative node samples for the MI estimator (Eq. 10)."""
    negatives = rng.integers(0, num_nodes, size=count)
    if exclude is not None:
        # Re-draw collisions once; residual collisions are harmless noise in
        # the estimator, matching common practice.
        collision = negatives == exclude
        if collision.any():
            negatives[collision] = rng.integers(0, num_nodes,
                                                size=int(collision.sum()))
    return negatives
