"""Meta-path utilities.

The paper's baselines consume the "most fundamental" meta-paths P-P, P-A-P,
P-V-P and P-T-P: metapath2vec walks along them, HAN/MAGNN aggregate over the
paper-paper pairs they induce.  This module provides both views.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import HeteroGraph
from .schema import AUTHOR, PAPER, TERM, VENUE, EdgeTypeKey

# A meta-path is a sequence of edge-type keys whose types chain up.
MetaPath = Tuple[EdgeTypeKey, ...]

# The four fundamental meta-paths of Section IV-A3, expressed over the
# publication schema's directed edge types.
FUNDAMENTAL_METAPATHS: Dict[str, MetaPath] = {
    "P-P": ((PAPER, "cites", PAPER),),
    "P-A-P": ((PAPER, "written_by", AUTHOR), (AUTHOR, "writes", PAPER)),
    "P-V-P": ((PAPER, "published_in", VENUE), (VENUE, "publishes", PAPER)),
    "P-T-P": ((PAPER, "mentions", TERM), (TERM, "mentioned_by", PAPER)),
}


def validate_metapath(path: MetaPath) -> None:
    """Raise if consecutive edge types do not chain (dst_i == src_{i+1})."""
    for (first, second) in zip(path[:-1], path[1:]):
        if first[2] != second[0]:
            raise ValueError(f"meta-path breaks at {first} -> {second}")


def _out_adjacency(graph: HeteroGraph, key: EdgeTypeKey) -> Tuple[np.ndarray, np.ndarray]:
    """CSR by *source* node: (indptr, dst) for outgoing neighbour lookup."""
    edges = graph.edges[key]
    num_src = graph.num_nodes[key[0]]
    order = np.argsort(edges.src, kind="stable")
    src_sorted = edges.src[order]
    dst_sorted = edges.dst[order]
    indptr = np.searchsorted(src_sorted, np.arange(num_src + 1), side="left")
    return indptr, dst_sorted


def metapath_pairs(
    graph: HeteroGraph,
    path: MetaPath,
    max_pairs: int = 2_000_000,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Enumerate (start, end) node pairs connected by a meta-path instance.

    Used by HAN/MAGNN to build per-meta-path adjacency.  Intermediate
    fan-outs are capped so hub nodes (e.g. a venue with thousands of papers)
    do not blow up quadratically; the cap subsamples uniformly.
    """
    validate_metapath(path)
    rng = rng or np.random.default_rng(0)
    # Frontier: (start_node, current_node) pairs.
    first_key = path[0]
    start = graph.edges[first_key].src
    current = graph.edges[first_key].dst
    for key in path[1:]:
        indptr, dst_sorted = _out_adjacency(graph, key)
        counts = indptr[current + 1] - indptr[current]
        total = int(counts.sum())
        if total == 0:
            return np.array([], dtype=np.intp), np.array([], dtype=np.intp)
        new_start = np.repeat(start, counts)
        gather_index = _expand_ranges(indptr[current], counts)
        new_current = dst_sorted[gather_index]
        if len(new_start) > max_pairs:
            pick = rng.choice(len(new_start), size=max_pairs, replace=False)
            new_start, new_current = new_start[pick], new_current[pick]
        start, current = new_start, new_current
    return start, current


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ranges [starts[i], starts[i]+counts[i]) vectorized."""
    nonzero = counts > 0
    starts, counts = starts[nonzero], counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.array([], dtype=np.intp)
    out = np.ones(total, dtype=np.intp)
    out[0] = starts[0]
    ends = np.cumsum(counts)
    boundaries = ends[:-1]
    out[boundaries] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(out)


def metapath_random_walks(
    graph: HeteroGraph,
    paths: Sequence[MetaPath],
    walks_per_node: int,
    walk_length: int,
    rng: np.random.Generator,
) -> List[List[Tuple[str, int]]]:
    """Meta-path-guided random walks (metapath2vec's corpus).

    Each walk starts at a paper and repeatedly follows a randomly chosen
    meta-path pattern, recording every visited (node_type, node_id).
    """
    adjacency = {}
    for path in paths:
        validate_metapath(path)
        for key in path:
            if key not in adjacency:
                adjacency[key] = _out_adjacency(graph, key)

    walks: List[List[Tuple[str, int]]] = []
    num_papers = graph.num_nodes[PAPER]
    for start in range(num_papers):
        for _ in range(walks_per_node):
            walk: List[Tuple[str, int]] = [(PAPER, start)]
            current = start
            while len(walk) < walk_length:
                path = paths[rng.integers(0, len(paths))]
                dead_end = False
                for key in path:
                    indptr, dst_sorted = adjacency[key]
                    lo, hi = indptr[current], indptr[current + 1]
                    if lo == hi:
                        dead_end = True
                        break
                    current = int(dst_sorted[rng.integers(lo, hi)])
                    walk.append((key[2], current))
                if dead_end:
                    break
            walks.append(walk)
    return walks
