"""CATE-HGN reproduction: Cluster-Aware Text-Enhanced Heterogeneous GNNs
for citation prediction (Yang & Han, ICDE 2023).

Subpackages
-----------
tensor
    Reverse-mode autodiff engine (numpy backend).
nn
    Layers, losses, and optimizers.
hetnet
    Heterogeneous publication-network data model and sampling.
text
    Corpus, TF-IDF, PPMI word embeddings, distributional masked LM.
data
    Synthetic DBLP-like dataset generator and the three benchmark networks.
core
    The CATE-HGN model: one-space HGN, cluster-aware module, text-enhancing
    module, and the Algorithm-1 trainer.
baselines
    The twelve comparison methods of the paper's Section IV-A.
eval
    Metrics, significance tests, and experiment runners.
analysis
    Correctness toolchain: gradcheck harness, runtime tape sanitizer
    (``detect_anomaly``), and the repo-specific AST lint (``repro-lint``).
serve
    Checkpointing, the tape-free inference engine, and the stdlib HTTP
    prediction service (``repro-serve``).
"""

__version__ = "1.0.0"

from . import tensor  # noqa: F401

__all__ = ["tensor", "analysis", "serve", "__version__"]

_LAZY_SUBPACKAGES = ("analysis", "serve")


def __getattr__(name):
    # Lazy imports: `repro.analysis` pulls in the nn package for lint/module
    # helpers and `repro.serve` pulls in the full model stack; keep base
    # `import repro` light.
    if name in _LAZY_SUBPACKAGES:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
