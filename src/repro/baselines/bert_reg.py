"""Text-only baseline ("BERT" in Table II).

The paper fine-tunes a pre-trained BERT on the citation loss, i.e. the
strongest model that sees *only the textual contents* of papers.  Our
stand-in regresses citations from the corpus-pretrained document embedding
(mean of SVD-of-PPMI word vectors — see DESIGN.md §2) through a three-layer
MLP.  It deliberately ignores all graph structure, which is the property
the tier comparison relies on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dblp import CitationDataset
from ..nn import MLP, Adam
from ..tensor import Tensor
from .api import LabelScaler


class BERTRegressor:
    """Citation regression from document embeddings alone (Table II row 1)."""

    name = "BERT"

    def __init__(self, hidden: int = 64, epochs: int = 200, lr: float = 0.01,
                 seed: int = 0) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.scaler = LabelScaler()
        self.mlp: Optional[MLP] = None
        self._X: Optional[np.ndarray] = None

    def fit(self, dataset: CitationDataset) -> "BERTRegressor":
        documents = [p.title for p in dataset.world.papers]
        self._X = dataset.text.embeddings.embed_documents(documents)
        rng = np.random.default_rng(self.seed)
        self.mlp = MLP([self._X.shape[1], self.hidden, self.hidden, 1], rng)
        fit_idx, val_idx = dataset.early_stopping_split()
        y = self.scaler.fit(dataset.labels[fit_idx]).transform(
            dataset.labels[fit_idx]
        )
        X_train = Tensor(self._X[fit_idx])
        target = Tensor(y)
        optimizer = Adam(list(self.mlp.parameters()), lr=self.lr)
        X_val, y_val = self._X[val_idx], dataset.labels[val_idx]
        best_val, best_state, bad = float("inf"), None, 0
        for epoch in range(self.epochs):
            pred = self.mlp(X_train).reshape(-1)
            diff = pred - target
            loss = (diff * diff).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            if epoch % 5 == 0:
                val_pred = self.scaler.inverse(
                    self.mlp(Tensor(X_val)).reshape(-1).data
                )
                val = float(np.sqrt(np.mean((y_val - val_pred) ** 2)))
                if val < best_val - 1e-6:
                    best_val, bad = val, 0
                    best_state = self.mlp.state_dict()
                else:
                    bad += 1
                    if bad >= 8:
                        break
        if best_state is not None:
            self.mlp.load_state_dict(best_state)
        return self

    def predict(self) -> np.ndarray:
        if self.mlp is None or self._X is None:
            raise RuntimeError("call fit() first")
        pred = self.mlp(Tensor(self._X)).reshape(-1)
        return self.scaler.inverse(pred.data)
