"""HGCN [14]: link-type compatibility-weighted heterogeneous convolution.

Per layer: relation-specific projections as in R-GCN, but the per-type
aggregates entering a destination type are combined through *learned
compatibility weights* (a softmax over the incoming link types), modeling
how compatible each link type's semantics are with the target embedding.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.hgn import GraphBatch
from ..hetnet import PAPER
from ..nn import Linear, Module, Parameter
from ..tensor import Tensor, gather, segment_mean, softmax, stack
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline


class HGCNLayer(Module):
    def __init__(self, in_dims: Dict[str, int], out_dim: int,
                 edge_keys: List, node_types: List[str],
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.edge_keys = edge_keys
        self.node_types = node_types
        self._into: Dict[str, List[int]] = {t: [] for t in node_types}
        for i, key in enumerate(edge_keys):
            self.register_module(f"W_rel{i}", Linear(in_dims[key[0]],
                                                     out_dim, rng, bias=False))
            self._into[key[2]].append(i)
        for t in node_types:
            self.register_module(f"W_self_{t}", Linear(in_dims[t], out_dim, rng))
            # Compatibility logits: self + one per incoming link type.
            setattr(self, f"compat_{t}",
                    Parameter(np.zeros(len(self._into[t]) + 1)))

    def forward(self, h: Dict[str, Tensor], batch: GraphBatch) -> Dict[str, Tensor]:
        out = {}
        for t in self.node_types:
            parts = [getattr(self, f"W_self_{t}")(h[t])]
            for i in self._into[t]:
                key = self.edge_keys[i]
                src, dst, _w, _wn = batch.edges[key]
                messages = getattr(self, f"W_rel{i}")(gather(h[key[0]], src))
                parts.append(segment_mean(messages, dst, batch.num_nodes[t]))
            weights = softmax(getattr(self, f"compat_{t}"), axis=0)
            combined = parts[0] * weights[0]
            for j, part in enumerate(parts[1:], start=1):
                combined = combined + part * weights[j]
            out[t] = combined.relu()
        return out


class HGCNNetwork(Module):
    def __init__(self, batch: GraphBatch, dim: int, layers: int,
                 seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        edge_keys = list(batch.edges.keys())
        node_types = list(batch.node_types)
        in_dims = {t: batch.features[t].shape[1] for t in node_types}
        self._layers: List[HGCNLayer] = []
        for i in range(layers):
            layer = HGCNLayer(in_dims, dim, edge_keys, node_types, rng)
            self.register_module(f"hgcn{i}", layer)
            self._layers.append(layer)
            in_dims = {t: dim for t in node_types}
        self.head = Linear(dim, 1, rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        h = {t: Tensor(batch.features[t]) for t in batch.node_types}
        for layer in self._layers:
            h = layer(h, batch)
        return self.head(h[PAPER]).reshape(-1)


class HGCN(SupervisedGNNBaseline):
    name = "HGCN"

    def __init__(self, config: GNNTrainConfig | None = None,
                 layers: int = 2) -> None:
        super().__init__(config)
        self.layers = layers

    def build_network(self, batch: GraphBatch) -> Module:
        return HGCNNetwork(batch, self.config.dim, self.layers,
                           self.config.seed)
