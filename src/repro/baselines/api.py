"""Common estimator surface for all compared algorithms (Section IV-A2).

Every baseline (and CATE-HGN itself) implements ``fit(dataset)`` /
``predict()`` returning per-paper citation predictions, so the Table-II
harness can sweep them uniformly.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..data.dblp import CitationDataset


@runtime_checkable
class CitationModel(Protocol):
    """fit/predict protocol shared by all fifteen compared models."""

    def fit(self, dataset: CitationDataset) -> "CitationModel":
        ...

    def predict(self) -> np.ndarray:
        """Predicted average citations/year for every paper in the dataset."""
        ...


class LabelScaler:
    """Standardize labels on train, un-standardize predictions."""

    def __init__(self) -> None:
        self.mean = 0.0
        self.std = 1.0

    def fit(self, labels: np.ndarray) -> "LabelScaler":
        labels = np.asarray(labels, dtype=np.float64)
        self.mean = float(labels.mean()) if labels.size else 0.0
        std = float(labels.std()) if labels.size else 1.0
        self.std = std if std > 1e-8 else 1.0
        return self

    def transform(self, labels: np.ndarray) -> np.ndarray:
        return (labels - self.mean) / self.std

    def inverse(self, preds: np.ndarray) -> np.ndarray:
        """Back to citations/year, floored at zero (counts are non-negative)."""
        return np.maximum(preds * self.std + self.mean, 0.0)
