"""HetGNN [16]: random-walk-with-restart neighbour sampling + per-type
content aggregation + type-mixing attention.

For each paper, a fixed budget of RWR visits collects its most frequent
typed neighbours; each type group is content-aggregated (the original's
Bi-LSTM is replaced by mean + linear — a documented simplification that
keeps the per-type grouping, which is the model's defining structure) and
the groups are mixed with learned attention against the self embedding.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.hgn import GraphBatch
from ..data.dblp import CitationDataset
from ..hetnet import PAPER, HeteroGraph
from ..nn import Linear, Module, Parameter, init
from ..tensor import Tensor, concatenate, gather, segment_mean, softmax, stack
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline


def rwr_neighbors(graph: HeteroGraph, restarts: float, walks: int,
                  length: int, top_k: int, rng: np.random.Generator,
                  ) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Per node type: (neighbour ids, owning paper ids) via RWR sampling."""
    out_adj: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    for key, edges in graph.edges.items():
        src_type, _, dst_type = key
        for s, d in zip(edges.src, edges.dst):
            out_adj.setdefault((src_type, int(s)), []).append((dst_type, int(d)))

    collected: Dict[str, Tuple[List[int], List[int]]] = {
        t: ([], []) for t in graph.schema.node_types
    }
    for paper in range(graph.num_nodes[PAPER]):
        visits: Dict[Tuple[str, int], int] = {}
        for _ in range(walks):
            current = (PAPER, paper)
            for _ in range(length):
                if rng.random() < restarts:
                    current = (PAPER, paper)
                neighbors = out_adj.get(current)
                if not neighbors:
                    break
                current = neighbors[rng.integers(len(neighbors))]
                if current != (PAPER, paper):
                    visits[current] = visits.get(current, 0) + 1
        by_type: Dict[str, List[Tuple[int, int]]] = {}
        for (t, n), count in visits.items():
            by_type.setdefault(t, []).append((count, n))
        for t, counted in by_type.items():
            counted.sort(reverse=True)
            for _count, n in counted[:top_k]:
                collected[t][0].append(n)
                collected[t][1].append(paper)
    return {
        t: (np.array(ids, dtype=np.intp), np.array(owners, dtype=np.intp))
        for t, (ids, owners) in collected.items()
    }


class HetGNNNetwork(Module):
    def __init__(self, batch: GraphBatch, dim: int,
                 neighbors: Dict[str, Tuple[np.ndarray, np.ndarray]],
                 seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.neighbors = neighbors
        self.num_papers = batch.num_nodes[PAPER]
        self.node_types = list(batch.node_types)
        for t in self.node_types:
            self.register_module(
                f"content_{t}", Linear(batch.features[t].shape[1], dim, rng)
            )
        self.att = Parameter(init.xavier_uniform(rng, 2 * dim,
                                                 len(self.node_types) + 1))
        self.head = Linear(dim, 1, rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        content = {t: getattr(self, f"content_{t}")(Tensor(batch.features[t])).relu()
                   for t in self.node_types}
        self_emb = content[PAPER]
        groups = [self_emb]
        for t in self.node_types:
            ids, owners = self.neighbors[t]
            if len(ids) == 0:
                groups.append(self_emb * 0.0)
                continue
            agg = segment_mean(gather(content[t], ids), owners,
                               self.num_papers)
            groups.append(agg)
        # Type-mixing attention against the self embedding.
        scores = []
        for g_idx, group in enumerate(groups):
            pair = concatenate([self_emb, group], axis=1)
            scores.append((pair @ self.att[:, g_idx].reshape(-1, 1))
                          .leaky_relu(0.2))
        score_mat = concatenate(scores, axis=1)
        alpha = softmax(score_mat, axis=1)
        mixed = groups[0] * alpha[:, 0].reshape(-1, 1)
        for g_idx in range(1, len(groups)):
            mixed = mixed + groups[g_idx] * alpha[:, g_idx].reshape(-1, 1)
        return self.head(mixed.relu()).reshape(-1)


class HetGNN(SupervisedGNNBaseline):
    name = "HetGNN"

    def __init__(self, config: GNNTrainConfig | None = None,
                 restarts: float = 0.3, walks: int = 8, length: int = 5,
                 top_k: int = 10) -> None:
        super().__init__(config)
        self.restarts = restarts
        self.walks = walks
        self.length = length
        self.top_k = top_k
        self._dataset: CitationDataset | None = None

    def fit(self, dataset: CitationDataset, **fit_kwargs) -> "HetGNN":
        self._dataset = dataset
        return super().fit(dataset, **fit_kwargs)

    def build_network(self, batch: GraphBatch) -> Module:
        rng = np.random.default_rng(self.config.seed)
        neighbors = rwr_neighbors(self._dataset.graph, self.restarts,
                                  self.walks, self.length, self.top_k, rng)
        return HetGNNNetwork(batch, self.config.dim, neighbors,
                             self.config.seed)
