"""MAGNN [17]: intra- and inter-meta-path aggregation.

Unlike HAN, MAGNN encodes whole meta-path *instances* including the
intermediate nodes.  For each 2-hop instance P-X-P we encode
(h_start, h_mid, h_end) — the original's relational-rotation encoder is
replaced by the mean of the three node embeddings (documented
simplification; the encoder is a drop-in function).  Intra-meta-path
attention weighs instances per target paper; inter-meta-path attention is
HAN-style semantic attention.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.hgn import GraphBatch
from ..data.dblp import CitationDataset
from ..hetnet import AUTHOR, PAPER, TERM, VENUE, HeteroGraph
from ..nn import Linear, Module, Parameter, init
from ..tensor import Tensor, gather, segment_softmax, segment_sum
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline
from .han import SemanticAttention

# (start=P, mid-type, end=P) instance tuples per meta-path.
Instance = Tuple[np.ndarray, Optional[np.ndarray], np.ndarray, Optional[str]]


def metapath_instances(graph: HeteroGraph, max_per_mid: int,
                       rng: np.random.Generator) -> List[Instance]:
    """Instances of P-P (no mid) and P-A-P / P-V-P / P-T-P (typed mid)."""
    out: List[Instance] = []
    cites = graph.edges[(PAPER, "cites", PAPER)]
    out.append((cites.src, None, cites.dst, None))
    for mid_type, fwd, bwd in ((AUTHOR, "written_by", "writes"),
                               (VENUE, "published_in", "publishes"),
                               (TERM, "mentions", "mentioned_by")):
        key_fwd = (PAPER, fwd, mid_type)
        if key_fwd not in graph.edges:
            continue
        edges = graph.edges[key_fwd]
        # Group papers by mid node, emit (p_i, mid, p_j) pairs with a cap.
        order = np.argsort(edges.dst, kind="stable")
        mids_sorted = edges.dst[order]
        papers_sorted = edges.src[order]
        indptr = np.searchsorted(mids_sorted,
                                 np.arange(graph.num_nodes[mid_type] + 1))
        starts, mids, ends = [], [], []
        for mid in range(graph.num_nodes[mid_type]):
            ps = papers_sorted[indptr[mid]:indptr[mid + 1]]
            if len(ps) < 2:
                continue
            if len(ps) > max_per_mid:
                ps = rng.choice(ps, size=max_per_mid, replace=False)
            grid_a = np.repeat(ps, len(ps))
            grid_b = np.tile(ps, len(ps))
            keep = grid_a != grid_b
            starts.append(grid_a[keep])
            ends.append(grid_b[keep])
            mids.append(np.full(int(keep.sum()), mid, dtype=np.intp))
        if starts:
            out.append((np.concatenate(starts), np.concatenate(mids),
                        np.concatenate(ends), mid_type))
    return out


class MAGNNNetwork(Module):
    def __init__(self, batch: GraphBatch, dim: int, heads: int,
                 instances: List[Instance], seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.instances = instances
        self.num_papers = batch.num_nodes[PAPER]
        for t in batch.node_types:
            self.register_module(
                f"embed_{t}", Linear(batch.features[t].shape[1], dim, rng)
            )
        for m in range(len(instances)):
            setattr(self, f"att_{m}",
                    Parameter(init.xavier_uniform(rng, 2 * dim, heads)))
        self.semantic = SemanticAttention(dim, dim, rng)
        self.head = Linear(dim, 1, rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        h = {t: getattr(self, f"embed_{t}")(Tensor(batch.features[t])).relu()
             for t in batch.node_types}
        per_path = []
        for m, (src, mid, dst, mid_type) in enumerate(self.instances):
            h_start = gather(h[PAPER], src)
            h_end = gather(h[PAPER], dst)
            if mid is None:
                inst = (h_start + h_end) * 0.5
            else:
                inst = (h_start + gather(h[mid_type], mid) + h_end) * (1.0 / 3.0)
            from ..tensor import concatenate

            score = (concatenate([h_end, inst], axis=1)
                     @ getattr(self, f"att_{m}")).leaky_relu(0.2)
            alpha = segment_softmax(score, dst, self.num_papers).mean(axis=1)
            agg = segment_sum(inst * alpha.reshape(-1, 1), dst,
                              self.num_papers)
            per_path.append((agg + h[PAPER]).relu())  # residual keeps
            # papers with no instances of this path well-defined
        z = self.semantic(per_path)
        return self.head(z).reshape(-1)


class MAGNN(SupervisedGNNBaseline):
    name = "MAGNN"

    def __init__(self, config: GNNTrainConfig | None = None,
                 heads: int = 4, max_per_mid: int = 12) -> None:
        super().__init__(config)
        self.heads = heads
        self.max_per_mid = max_per_mid
        self._dataset: CitationDataset | None = None

    def fit(self, dataset: CitationDataset, **fit_kwargs) -> "MAGNN":
        self._dataset = dataset
        return super().fit(dataset, **fit_kwargs)

    def build_network(self, batch: GraphBatch) -> Module:
        rng = np.random.default_rng(self.config.seed)
        instances = metapath_instances(self._dataset.graph,
                                       self.max_per_mid, rng)
        return MAGNNNetwork(batch, self.config.dim, self.heads, instances,
                            self.config.seed)
