"""HAN [15]: hierarchical attention over meta-paths.

Node-level attention aggregates each paper's meta-path-based neighbours
(P-P, P-A-P, P-V-P, P-T-P) GAT-style; semantic-level attention then
combines the per-meta-path embeddings.  Only the target type (papers) is
embedded — the design property Section III-C contrasts CATE-HGN against.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.hgn import GraphBatch
from ..data.dblp import CitationDataset
from ..hetnet import FUNDAMENTAL_METAPATHS, PAPER, metapath_pairs
from ..hetnet.structure import EdgeStructure
from ..nn import Linear, Module, Parameter, init
from ..tensor import (
    Tensor,
    concatenate,
    gather,
    segment_softmax,
    segment_softmax_fused,
    segment_sum,
    segment_weighted_sum,
    softmax,
    stack,
)
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline


class SemanticAttention(Module):
    """Combine per-meta-path embeddings with learned semantic weights."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.proj = Linear(dim, hidden, rng)
        self.q = Parameter(init.xavier_uniform(rng, hidden, 1))

    def forward(self, per_path: List[Tensor]) -> Tensor:
        weights = []
        for z in per_path:
            s = (self.proj(z).tanh() @ self.q).mean()  # scalar importance
            weights.append(s)
        logits = stack(weights, axis=0)
        beta = softmax(logits, axis=0)
        combined = per_path[0] * beta[0]
        for m, z in enumerate(per_path[1:], start=1):
            combined = combined + z * beta[m]
        return combined


class HANNetwork(Module):
    def __init__(self, feature_dim: int, dim: int, heads: int,
                 paths: List[Tuple[np.ndarray, np.ndarray]],
                 num_papers: int, seed: int, fused: bool = True) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.paths = paths
        self.num_papers = num_papers
        # Meta-path pair lists are fixed per network: sort each once.
        self.structures = ([EdgeStructure(src, dst, num_papers)
                            for src, dst in paths] if fused else None)
        self.W = Linear(feature_dim, dim, rng, bias=False)
        for m in range(len(paths)):
            setattr(self, f"att_src_{m}",
                    Parameter(init.xavier_uniform(rng, dim, heads)))
            setattr(self, f"att_dst_{m}",
                    Parameter(init.xavier_uniform(rng, dim, heads)))
        self.semantic = SemanticAttention(dim, dim, rng)
        self.head = Linear(dim, 1, rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        h = self.W(Tensor(batch.features[PAPER]))
        per_path = []
        for m, (src, dst) in enumerate(self.paths):
            score = (gather(h @ getattr(self, f"att_src_{m}"), src)
                     + gather(h @ getattr(self, f"att_dst_{m}"), dst)
                     ).leaky_relu(0.2)
            if self.structures is not None:
                es = self.structures[m]
                alpha = segment_softmax_fused(score, dst, self.num_papers,
                                              sorter=es).mean(axis=1)
                agg = segment_weighted_sum(gather(h, src), alpha, dst,
                                           self.num_papers, sorter=es)
            else:
                alpha = segment_softmax(score, dst, self.num_papers).mean(axis=1)
                agg = segment_sum(gather(h, src) * alpha.reshape(-1, 1),
                                  dst, self.num_papers)
            per_path.append(agg.relu())
        z = self.semantic(per_path)
        return self.head(z).reshape(-1)


def paper_metapath_adjacency(dataset: CitationDataset, max_pairs: int,
                             seed: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """(src, dst) paper pairs per fundamental meta-path, self-loops added."""
    rng = np.random.default_rng(seed)
    graph = dataset.graph
    num_papers = graph.num_nodes[PAPER]
    loops = np.arange(num_papers, dtype=np.intp)
    paths = []
    for path in FUNDAMENTAL_METAPATHS.values():
        if not all(key in graph.edges for key in path):
            continue
        src, dst = metapath_pairs(graph, path, max_pairs=max_pairs, rng=rng)
        paths.append((np.concatenate([src, loops]),
                      np.concatenate([dst, loops])))
    return paths


class HAN(SupervisedGNNBaseline):
    name = "HAN"

    def __init__(self, config: GNNTrainConfig | None = None,
                 heads: int = 4, max_pairs: int = 60_000) -> None:
        super().__init__(config)
        self.heads = heads
        self.max_pairs = max_pairs
        self._dataset: CitationDataset | None = None

    def fit(self, dataset: CitationDataset, **fit_kwargs) -> "HAN":
        self._dataset = dataset
        return super().fit(dataset, **fit_kwargs)

    def build_network(self, batch: GraphBatch) -> Module:
        paths = paper_metapath_adjacency(self._dataset, self.max_pairs,
                                         self.config.seed)
        feature_dim = batch.features[PAPER].shape[1]
        return HANNetwork(feature_dim, self.config.dim, self.heads, paths,
                          batch.num_nodes[PAPER], self.config.seed,
                          fused=self.config.fused)
