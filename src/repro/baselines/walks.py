"""Skip-gram with negative sampling over random-walk corpora.

Shared machinery for metapath2vec [40] and hin2vec [41].  Updates are
hand-rolled numpy SGD (mini-batched, scatter-add) — these unsupervised
embedders do not need the autodiff tape.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def walk_to_global_ids(walks: Sequence[Sequence[Tuple[str, int]]],
                       offsets: Dict[str, int]) -> List[np.ndarray]:
    """Map (type, local id) walks into a single global id space."""
    return [np.array([offsets[t] + i for t, i in walk], dtype=np.intp)
            for walk in walks]


def skipgram_pairs(walks: Sequence[np.ndarray], window: int,
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """(center, context) pairs within ±window on each walk."""
    centers: List[np.ndarray] = []
    contexts: List[np.ndarray] = []
    for walk in walks:
        n = len(walk)
        for offset in range(1, window + 1):
            if n <= offset:
                continue
            centers.append(walk[:-offset])
            contexts.append(walk[offset:])
            centers.append(walk[offset:])
            contexts.append(walk[:-offset])
    if not centers:
        return (np.array([], dtype=np.intp), np.array([], dtype=np.intp))
    return np.concatenate(centers), np.concatenate(contexts)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


def train_skipgram(
    centers: np.ndarray,
    contexts: np.ndarray,
    num_nodes: int,
    dim: int = 32,
    epochs: int = 3,
    negatives: int = 5,
    lr: float = 0.05,
    batch_size: int = 4096,
    seed: int = 0,
) -> np.ndarray:
    """Negative-sampling skip-gram; returns the input embedding matrix."""
    rng = np.random.default_rng(seed)
    W = rng.normal(0, 0.1, size=(num_nodes, dim))  # input vectors
    C = np.zeros((num_nodes, dim))  # output vectors
    n = len(centers)
    if n == 0:
        return W
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            c, o = centers[idx], contexts[idx]
            neg = rng.integers(0, num_nodes, size=(len(idx), negatives))
            wc = W[c]  # (B, d)
            # Positive pairs.
            pos_grad = _sigmoid((wc * C[o]).sum(axis=1)) - 1.0  # (B,)
            grad_wc = pos_grad[:, None] * C[o]
            grad_co = pos_grad[:, None] * wc
            # Negative samples.
            neg_score = _sigmoid(np.einsum("bd,bkd->bk", wc, C[neg]))  # (B,k)
            grad_wc += np.einsum("bk,bkd->bd", neg_score, C[neg])
            grad_cneg = neg_score[:, :, None] * wc[:, None, :]
            np.add.at(W, c, -lr * grad_wc)
            np.add.at(C, o, -lr * grad_co)
            np.add.at(C, neg.ravel(),
                      -lr * grad_cneg.reshape(-1, dim))
    return W
