"""hin2vec [41]: relation-aware walk embedding (no given meta-paths) + MLP.

hin2vec trains node embeddings to predict, for node pairs sampled from
unconstrained random walks, *which relation* (typed hop pattern up to a
small length) connects them: P(r | u, v) via a Hadamard model
sigmoid(sum(w_u ⊙ w_v ⊙ σ(w_r))) with negative sampling on relations and
targets.  The relation vocabulary here is (type_u, type_v, hop distance),
which covers the same one- and two-hop patterns as the original.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dblp import CitationDataset
from ..hetnet import PAPER, HeteroGraph
from .mlp_head import MLPRegressor


def _uniform_walks(graph: HeteroGraph, walks_per_node: int, walk_length: int,
                   rng: np.random.Generator) -> List[List[Tuple[str, int]]]:
    """Unconstrained random walks over all typed edges."""
    out_adj: Dict[Tuple[str, int], List[Tuple[str, int]]] = {}
    for key, edges in graph.edges.items():
        src_type, _, dst_type = key
        for s, d in zip(edges.src, edges.dst):
            out_adj.setdefault((src_type, int(s)), []).append((dst_type, int(d)))
    walks = []
    for start in range(graph.num_nodes[PAPER]):
        for _ in range(walks_per_node):
            walk = [(PAPER, start)]
            current = (PAPER, start)
            for _ in range(walk_length - 1):
                neighbors = out_adj.get(current)
                if not neighbors:
                    break
                current = neighbors[rng.integers(len(neighbors))]
                walk.append(current)
            walks.append(walk)
    return walks


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class Hin2Vec:
    """Relation-aware walk embedding + supervised MLP head (Table II row 6)."""

    name = "hin2vec"

    def __init__(self, dim: int = 32, walks_per_node: int = 4,
                 walk_length: int = 9, max_hops: int = 2, epochs: int = 3,
                 negatives: int = 4, lr: float = 0.05, seed: int = 0) -> None:
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.max_hops = max_hops
        self.epochs = epochs
        self.negatives = negatives
        self.lr = lr
        self.seed = seed
        self.head = MLPRegressor(seed=seed)
        self._paper_embeddings: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, dataset: CitationDataset) -> "Hin2Vec":
        graph = dataset.graph
        rng = np.random.default_rng(self.seed)
        walks = _uniform_walks(graph, self.walks_per_node, self.walk_length, rng)

        offsets, cursor = {}, 0
        for t in graph.schema.node_types:
            offsets[t] = cursor
            cursor += graph.num_nodes[t]

        relations: Dict[Tuple[str, str, int], int] = {}
        u_list, v_list, r_list = [], [], []
        for walk in walks:
            for i in range(len(walk)):
                for hop in range(1, self.max_hops + 1):
                    if i + hop >= len(walk):
                        break
                    (tu, nu), (tv, nv) = walk[i], walk[i + hop]
                    key = (tu, tv, hop)
                    r = relations.setdefault(key, len(relations))
                    u_list.append(offsets[tu] + nu)
                    v_list.append(offsets[tv] + nv)
                    r_list.append(r)
        u_arr = np.array(u_list, dtype=np.intp)
        v_arr = np.array(v_list, dtype=np.intp)
        r_arr = np.array(r_list, dtype=np.intp)

        W = rng.normal(0, 0.1, size=(cursor, self.dim))
        R = rng.normal(0, 0.1, size=(max(len(relations), 1), self.dim))

        n = len(u_arr)
        batch = 4096
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start:start + batch]
                u, v, r = u_arr[idx], v_arr[idx], r_arr[idx]
                wu, wv = W[u], W[v]
                fr = _sigmoid(R[r])
                score = _sigmoid((wu * wv * fr).sum(axis=1))
                # Positive: label 1.  Negative: corrupt the target node.
                neg_v = rng.integers(0, cursor, size=len(idx))
                wnv = W[neg_v]
                neg_score = _sigmoid((wu * wnv * fr).sum(axis=1))

                g_pos = (score - 1.0)[:, None]
                g_neg = neg_score[:, None]
                grad_wu = g_pos * wv * fr + g_neg * wnv * fr
                grad_wv = g_pos * wu * fr
                grad_wnv = g_neg * wu * fr
                grad_fr = g_pos * wu * wv + g_neg * wu * wnv
                grad_R = grad_fr * fr * (1.0 - fr)
                np.add.at(W, u, -self.lr * grad_wu)
                np.add.at(W, v, -self.lr * grad_wv)
                np.add.at(W, neg_v, -self.lr * grad_wnv)
                np.add.at(R, r, -self.lr * grad_R)

        papers = W[offsets[PAPER]:offsets[PAPER] + graph.num_nodes[PAPER]]
        self._paper_embeddings = papers
        self.head.fit(papers[dataset.train_idx],
                      dataset.labels[dataset.train_idx])
        return self

    def predict(self) -> np.ndarray:
        if self._paper_embeddings is None:
            raise RuntimeError("call fit() first")
        return self.head.predict(self._paper_embeddings)
