"""Traditional feature-engineering baselines: CCP [2] and CPDF [1].

Both extract per-paper features (Yan et al.'s 10-feature set and Bhat et
al.'s 17-feature set, each minus one unavailable feature, mirroring the
paper) and fit a CART regression tree.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dblp import CitationDataset
from .cart import CARTRegressor
from .features import FeatureExtractor


class _FeatureTreeModel:
    feature_set = "ccp"
    name = "base"

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 10) -> None:
        self.tree = CARTRegressor(max_depth=max_depth,
                                  min_samples_leaf=min_samples_leaf)
        self._features: Optional[np.ndarray] = None

    def _extract(self, dataset: CitationDataset) -> np.ndarray:
        extractor = FeatureExtractor(dataset)
        if self.feature_set == "ccp":
            return extractor.ccp_features()
        return extractor.cpdf_features()

    def fit(self, dataset: CitationDataset) -> "_FeatureTreeModel":
        self._features = self._extract(dataset)
        X = self._features[dataset.train_idx]
        y = dataset.labels[dataset.train_idx]
        self.tree.fit(X, y)
        return self

    def predict(self) -> np.ndarray:
        if self._features is None:
            raise RuntimeError("call fit() first")
        return np.maximum(self.tree.predict(self._features), 0.0)


class CCP(_FeatureTreeModel):
    """Yan et al. (CIKM 2011): 9 of 10 features (no h-index) + CART."""

    feature_set = "ccp"
    name = "CCP"


class CPDF(_FeatureTreeModel):
    """Bhat et al. (ICDMW 2015): 16 of 17 features (no page count) + CART."""

    feature_set = "cpdf"
    name = "CPDF"

    def __init__(self, max_depth: int = 5, min_samples_leaf: int = 8) -> None:
        super().__init__(max_depth=max_depth, min_samples_leaf=min_samples_leaf)
