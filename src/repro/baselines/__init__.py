"""The twelve compared algorithms of Section IV-A2.

``make_baselines`` builds the full Table-II roster with a shared seed; each
entry implements the :class:`~repro.baselines.api.CitationModel` protocol.
"""

from typing import Dict

from .api import CitationModel, LabelScaler
from .bert_reg import BERTRegressor
from .cart import CARTRegressor
from .features import FeatureExtractor
from .gat import GAT
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline
from .han import HAN
from .hetgnn import HetGNN
from .hgcn import HGCN
from .hgt import HGT
from .hin2vec import Hin2Vec
from .magnn import MAGNN
from .metapath2vec import MetaPath2Vec
from .mlp_head import MLPRegressor
from .rgcn import RGCN
from .traditional import CCP, CPDF


def make_baselines(dim: int = 32, epochs: int = 60,
                   seed: int = 0) -> Dict[str, CitationModel]:
    """The Table-II baseline roster (order matches the paper's table)."""

    def gnn_cfg() -> GNNTrainConfig:
        return GNNTrainConfig(dim=dim, epochs=epochs, seed=seed)

    return {
        "BERT": BERTRegressor(seed=seed),
        "GAT": GAT(gnn_cfg()),
        "CCP": CCP(),
        "CPDF": CPDF(),
        "metapath2vec": MetaPath2Vec(dim=dim, seed=seed),
        "hin2vec": Hin2Vec(dim=dim, seed=seed),
        "R-GCN": RGCN(gnn_cfg()),
        "HAN": HAN(gnn_cfg()),
        "HetGNN": HetGNN(gnn_cfg()),
        "HGT": HGT(gnn_cfg()),
        "MAGNN": MAGNN(gnn_cfg()),
        "HGCN": HGCN(gnn_cfg()),
    }


__all__ = [
    "CitationModel",
    "LabelScaler",
    "BERTRegressor",
    "GAT",
    "CCP",
    "CPDF",
    "MetaPath2Vec",
    "Hin2Vec",
    "RGCN",
    "HAN",
    "HetGNN",
    "HGT",
    "MAGNN",
    "HGCN",
    "CARTRegressor",
    "FeatureExtractor",
    "MLPRegressor",
    "GNNTrainConfig",
    "SupervisedGNNBaseline",
    "make_baselines",
]
