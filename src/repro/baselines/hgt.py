"""HGT [13]: heterogeneous graph transformer.

Edge-type-specific attention with node-type-specific projections: each
node type owns Q/K/V linear maps, each edge type owns relational attention
and message matrices plus a learned prior; every destination node applies
one softmax across *all* of its incoming edges regardless of type, then a
type-specific output projection with a residual connection.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.hgn import GraphBatch
from ..hetnet import PAPER
from ..nn import Linear, Module, Parameter, init
from ..tensor import Tensor, concatenate, gather, segment_softmax, segment_sum
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline


class HGTLayer(Module):
    def __init__(self, dim: int, edge_keys: List, node_types: List[str],
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        self.edge_keys = edge_keys
        self.node_types = node_types
        for t in node_types:
            self.register_module(f"Q_{t}", Linear(dim, dim, rng, bias=False))
            self.register_module(f"K_{t}", Linear(dim, dim, rng, bias=False))
            self.register_module(f"V_{t}", Linear(dim, dim, rng, bias=False))
            self.register_module(f"A_{t}", Linear(dim, dim, rng))
        for i, _key in enumerate(edge_keys):
            setattr(self, f"W_att_{i}",
                    Parameter(init.xavier_uniform(rng, dim, dim)))
            setattr(self, f"W_msg_{i}",
                    Parameter(init.xavier_uniform(rng, dim, dim)))
            setattr(self, f"mu_{i}", Parameter(np.ones(1)))

    def forward(self, h: Dict[str, Tensor], batch: GraphBatch) -> Dict[str, Tensor]:
        dim = self.dim
        q = {t: getattr(self, f"Q_{t}")(h[t]) for t in self.node_types}
        k = {t: getattr(self, f"K_{t}")(h[t]) for t in self.node_types}
        v = {t: getattr(self, f"V_{t}")(h[t]) for t in self.node_types}

        # Collect scores/messages per destination type across all edge types.
        scores: Dict[str, List[Tensor]] = {t: [] for t in self.node_types}
        messages: Dict[str, List[Tensor]] = {t: [] for t in self.node_types}
        dst_ids: Dict[str, List[np.ndarray]] = {t: [] for t in self.node_types}
        for i, key in enumerate(self.edge_keys):
            src, dst, _w, _wn = batch.edges[key]
            if len(src) == 0:
                continue
            src_type, _, dst_type = key
            k_edge = gather(k[src_type], src) @ getattr(self, f"W_att_{i}")
            q_edge = gather(q[dst_type], dst)
            mu = getattr(self, f"mu_{i}")
            score = (k_edge * q_edge).sum(axis=1) * mu[0] * (1.0 / np.sqrt(dim))
            msg = gather(v[src_type], src) @ getattr(self, f"W_msg_{i}")
            scores[dst_type].append(score)
            messages[dst_type].append(msg)
            dst_ids[dst_type].append(dst)

        out = {}
        for t in self.node_types:
            if not scores[t]:
                out[t] = h[t]
                continue
            score_all = concatenate(scores[t], axis=0)
            msg_all = concatenate(messages[t], axis=0)
            dst_all = np.concatenate(dst_ids[t])
            alpha = segment_softmax(score_all, dst_all, batch.num_nodes[t])
            agg = segment_sum(msg_all * alpha.reshape(-1, 1), dst_all,
                              batch.num_nodes[t])
            out[t] = getattr(self, f"A_{t}")(agg).relu() + h[t]  # residual
        return out


class HGTNetwork(Module):
    def __init__(self, batch: GraphBatch, dim: int, layers: int,
                 seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        node_types = list(batch.node_types)
        for t in node_types:
            self.register_module(
                f"embed_{t}", Linear(batch.features[t].shape[1], dim, rng)
            )
        self._layers: List[HGTLayer] = []
        for i in range(layers):
            layer = HGTLayer(dim, list(batch.edges.keys()), node_types, rng)
            self.register_module(f"hgt{i}", layer)
            self._layers.append(layer)
        self.head = Linear(dim, 1, rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        h = {t: getattr(self, f"embed_{t}")(Tensor(batch.features[t])).relu()
             for t in batch.node_types}
        for layer in self._layers:
            h = layer(h, batch)
        return self.head(h[PAPER]).reshape(-1)


class HGT(SupervisedGNNBaseline):
    name = "HGT"

    def __init__(self, config: GNNTrainConfig | None = None,
                 layers: int = 2) -> None:
        super().__init__(config)
        self.layers = layers

    def build_network(self, batch: GraphBatch) -> Module:
        return HGTNetwork(batch, self.config.dim, self.layers,
                          self.config.seed)
