"""R-GCN [12]: relation-specific weight matrices.

One exclusive transformation matrix per link type per layer plus a self
matrix per node type — the over-parameterization CATE-HGN's shared-W_a
composition is designed to avoid (Section III-C.1).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.hgn import GraphBatch
from ..hetnet import PAPER
from ..nn import Linear, Module
from ..tensor import Tensor, gather, gather_matmul, segment_mean
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline


class RGCNLayer(Module):
    def __init__(self, in_dims: Dict[str, int], out_dim: int,
                 edge_keys: List, node_types: List[str],
                 rng: np.random.Generator, fused: bool = True) -> None:
        super().__init__()
        self.edge_keys = edge_keys
        self.node_types = node_types
        self.fused = fused
        for i, key in enumerate(edge_keys):
            self.register_module(f"W_rel{i}", Linear(in_dims[key[0]],
                                                     out_dim, rng, bias=False))
        for t in node_types:
            self.register_module(f"W_self_{t}", Linear(in_dims[t], out_dim, rng))

    def forward(self, h: Dict[str, Tensor], batch: GraphBatch) -> Dict[str, Tensor]:
        out = {t: getattr(self, f"W_self_{t}")(h[t]) for t in self.node_types}
        structure = batch.structure if self.fused else None
        for i, key in enumerate(self.edge_keys):
            src, dst, _w, _wn = batch.edges[key]
            if len(src) == 0:
                continue
            src_type, _, dst_type = key
            if structure is not None:
                # Fused gather@W kernel + cached dst-sorted mean reduction.
                es = structure.edge[key]
                messages = gather_matmul(h[src_type], src,
                                         getattr(self, f"W_rel{i}").weight)
                agg = segment_mean(messages, dst, batch.num_nodes[dst_type],
                                   counts=es.counts, sorter=es)
            else:
                messages = getattr(self, f"W_rel{i}")(gather(h[src_type], src))
                agg = segment_mean(messages, dst, batch.num_nodes[dst_type])
            out[dst_type] = out[dst_type] + agg
        return {t: v.relu() for t, v in out.items()}


class RGCNNetwork(Module):
    def __init__(self, batch: GraphBatch, dim: int, layers: int,
                 seed: int, fused: bool = True) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        edge_keys = list(batch.edges.keys())
        node_types = list(batch.node_types)
        in_dims = {t: batch.features[t].shape[1] for t in node_types}
        self._layers: List[RGCNLayer] = []
        for i in range(layers):
            layer = RGCNLayer(in_dims, dim, edge_keys, node_types, rng,
                              fused=fused)
            self.register_module(f"rgcn{i}", layer)
            self._layers.append(layer)
            in_dims = {t: dim for t in node_types}
        self.head = Linear(dim, 1, rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        h = {t: Tensor(batch.features[t]) for t in batch.node_types}
        for layer in self._layers:
            h = layer(h, batch)
        return self.head(h[PAPER]).reshape(-1)


class RGCN(SupervisedGNNBaseline):
    name = "R-GCN"

    def __init__(self, config: GNNTrainConfig | None = None,
                 layers: int = 2) -> None:
        super().__init__(config)
        self.layers = layers

    def build_network(self, batch: GraphBatch) -> Module:
        return RGCNNetwork(batch, self.config.dim, self.layers,
                           self.config.seed, fused=self.config.fused)
