"""Hand-engineered citation-prediction features (CCP [2] / CPDF [1]).

All history statistics (author/venue/term track records) are computed from
*training-period* papers only — exactly the information available at
prediction time.  Mirroring the paper's own substitutions, the h-index
(CCP) and page count (CPDF) features are omitted as unavailable.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..data.dblp import CitationDataset
from ..hetnet import AUTHOR, PAPER, TERM, VENUE


class FeatureExtractor:
    """Feature matrices for the traditional baselines."""

    def __init__(self, dataset: CitationDataset) -> None:
        self.dataset = dataset
        graph = dataset.graph
        num_papers = graph.num_nodes[PAPER]
        labels = dataset.labels
        train_mask = np.zeros(num_papers, dtype=bool)
        train_mask[dataset.train_idx] = True

        pa = graph.edges[(PAPER, "written_by", AUTHOR)]
        pv = graph.edges[(PAPER, "published_in", VENUE)]
        pt = graph.edges[(PAPER, "mentions", TERM)]
        cites = graph.edges[(PAPER, "cites", PAPER)]

        self._paper_authors = _group(pa.src, pa.dst, num_papers)
        self._paper_terms = _group(pt.src, pt.dst, num_papers)
        self._paper_term_weights = _group_values(pt.src, pt.weight, num_papers)
        self._paper_venue = np.zeros(num_papers, dtype=np.intp)
        self._paper_venue[pv.src] = pv.dst
        # cites edges run cited -> citing, so dst is the citing paper.
        self._reference_count = np.bincount(cites.dst, minlength=num_papers)

        # Track records over the training period.
        self.author_stats = _entity_stats(
            pa.dst, pa.src, graph.num_nodes[AUTHOR], labels, train_mask
        )
        self.venue_stats = _entity_stats(
            pv.dst, pv.src, graph.num_nodes[VENUE], labels, train_mask
        )
        self.term_stats = _entity_stats(
            pt.dst, pt.src, graph.num_nodes[TERM], labels, train_mask
        )
        self._labels = labels
        self._train_mask = train_mask
        self.author_venue_entropy = _author_venue_entropy(
            pa, self._paper_venue, graph.num_nodes[AUTHOR], train_mask
        )
        self.years = graph.get_attr(PAPER, "year").astype(np.float64)
        self.title_lengths = np.array(
            [len(p.title) for p in dataset.world.papers], dtype=np.float64
        )

    # ------------------------------------------------------------------
    def _loo(self, stats: Dict[str, np.ndarray], entities: np.ndarray,
             paper: int) -> tuple:
        """Leave-one-out track record: a training paper must not see its
        own label inside its entities' statistics."""
        if len(entities) == 0:
            return np.zeros(1), np.zeros(1)
        means = stats["mean"][entities].copy()
        counts = stats["count"][entities].copy()
        if self._train_mask[paper]:
            label = self._labels[paper]
            multi = counts > 1
            means[multi] = ((means[multi] * counts[multi] - label)
                            / (counts[multi] - 1))
            means[~multi] = 0.0
            counts = np.maximum(counts - 1, 0.0)
        return means, counts

    def ccp_features(self) -> np.ndarray:
        """The 9 implemented CCP features (author/venue/topic/recency)."""
        rows = []
        for paper in range(self.dataset.graph.num_nodes[PAPER]):
            authors = self._paper_authors[paper]
            terms = self._paper_terms[paper]
            venue = np.array([self._paper_venue[paper]])
            a_mean, a_count = self._loo(self.author_stats, authors, paper)
            v_mean, v_count = self._loo(self.venue_stats, venue, paper)
            t_mean, _t_count = self._loo(self.term_stats, terms, paper)
            rows.append([
                a_mean.max(),     # max author track record
                a_mean.mean(),    # avg author track record
                a_count.max(),    # max author productivity
                a_count.mean(),   # avg author productivity
                v_mean[0],        # venue rank
                v_count[0],       # venue productivity
                t_mean.mean(),    # topic rank (avg)
                t_mean.max(),     # topic rank (max)
                self.years[paper],  # recency
            ])
        return np.asarray(rows)

    def cpdf_features(self) -> np.ndarray:
        """The 16 implemented CPDF features (CCP's 9 + 7 diverse extras)."""
        base = self.ccp_features()
        extras = []
        for paper in range(self.dataset.graph.num_nodes[PAPER]):
            authors = self._paper_authors[paper]
            weights = self._paper_term_weights[paper]
            a_mean, _a_count = self._loo(self.author_stats, authors, paper)
            entropy = (self.author_venue_entropy[authors]
                       if len(authors) else np.zeros(1))
            extras.append([
                float(len(authors)),                       # team size
                a_mean.min(),                              # weakest author
                entropy.max(),                             # interdisciplinarity
                entropy.mean(),
                self.title_lengths[paper],                 # title length
                float(self._reference_count[paper]),       # references
                float(np.mean(weights)) if len(weights) else 0.0,  # term weight
            ])
        return np.hstack([base, np.asarray(extras)])


def _group(keys: np.ndarray, values: np.ndarray, num_keys: int) -> List[np.ndarray]:
    """Group ``values`` by ``keys`` into per-key arrays."""
    order = np.argsort(keys, kind="stable")
    keys_sorted, values_sorted = keys[order], values[order]
    indptr = np.searchsorted(keys_sorted, np.arange(num_keys + 1))
    return [values_sorted[indptr[i]:indptr[i + 1]] for i in range(num_keys)]


def _group_values(keys: np.ndarray, values: np.ndarray,
                  num_keys: int) -> List[np.ndarray]:
    return _group(keys, values, num_keys)


def _entity_stats(entity_ids: np.ndarray, paper_ids: np.ndarray,
                  num_entities: int, labels: np.ndarray,
                  train_mask: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-entity (author/venue/term) training-period track record."""
    keep = train_mask[paper_ids]
    ent = entity_ids[keep]
    lab = labels[paper_ids[keep]]
    count = np.bincount(ent, minlength=num_entities).astype(np.float64)
    total = np.bincount(ent, weights=lab, minlength=num_entities)
    mean = total / np.maximum(count, 1.0)
    best = np.zeros(num_entities)
    np.maximum.at(best, ent, lab)
    return {"count": count, "mean": mean, "max": best}


def _author_venue_entropy(pa_edges, paper_venue: np.ndarray,
                          num_authors: int,
                          train_mask: np.ndarray) -> np.ndarray:
    """Shannon entropy of each author's training-period venue distribution."""
    keep = train_mask[pa_edges.src]
    authors = pa_edges.dst[keep]
    venues = paper_venue[pa_edges.src[keep]]
    entropy = np.zeros(num_authors)
    order = np.argsort(authors, kind="stable")
    authors_sorted, venues_sorted = authors[order], venues[order]
    indptr = np.searchsorted(authors_sorted, np.arange(num_authors + 1))
    for a in range(num_authors):
        vs = venues_sorted[indptr[a]:indptr[a + 1]]
        if len(vs) == 0:
            continue
        counts = np.bincount(vs).astype(np.float64)
        p = counts[counts > 0] / counts.sum()
        entropy[a] = float(-(p * np.log(p)).sum())
    return entropy
