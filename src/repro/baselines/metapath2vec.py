"""metapath2vec [40]: meta-path-guided walks + skip-gram + MLP head.

Unsupervised heterogeneous embedding — citation supervision only reaches
the downstream MLP, never the embeddings, which is why the paper places
this tier below the end-to-end GNNs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dblp import CitationDataset
from ..hetnet import FUNDAMENTAL_METAPATHS, PAPER, metapath_random_walks
from .mlp_head import MLPRegressor
from .walks import skipgram_pairs, train_skipgram, walk_to_global_ids


class MetaPath2Vec:
    """Unsupervised meta-path embedding + supervised MLP head (Table II row 5)."""

    name = "metapath2vec"

    def __init__(self, dim: int = 32, walks_per_node: int = 4,
                 walk_length: int = 9, window: int = 3, epochs: int = 3,
                 seed: int = 0) -> None:
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.seed = seed
        self.head = MLPRegressor(seed=seed)
        self._paper_embeddings: Optional[np.ndarray] = None

    def fit(self, dataset: CitationDataset) -> "MetaPath2Vec":
        graph = dataset.graph
        rng = np.random.default_rng(self.seed)
        paths = [p for p in FUNDAMENTAL_METAPATHS.values()
                 if all(key in graph.edges for key in p)]
        walks = metapath_random_walks(graph, paths, self.walks_per_node,
                                      self.walk_length, rng)
        offsets, cursor = {}, 0
        for t in graph.schema.node_types:
            offsets[t] = cursor
            cursor += graph.num_nodes[t]
        global_walks = walk_to_global_ids(walks, offsets)
        centers, contexts = skipgram_pairs(global_walks, self.window)
        embeddings = train_skipgram(centers, contexts, cursor, dim=self.dim,
                                    epochs=self.epochs, seed=self.seed)
        papers = embeddings[offsets[PAPER]:offsets[PAPER] + graph.num_nodes[PAPER]]
        self._paper_embeddings = papers
        self.head.fit(papers[dataset.train_idx],
                      dataset.labels[dataset.train_idx])
        return self

    def predict(self) -> np.ndarray:
        if self._paper_embeddings is None:
            raise RuntimeError("call fit() first")
        return self.head.predict(self._paper_embeddings)
