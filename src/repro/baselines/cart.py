"""CART regression tree (Loh 2011), from scratch.

CCP [2] and CPDF [1] pair hand-engineered features with "classification
and regression trees" as their best predictive model; this is that model.
Splits greedily minimize the weighted variance of the two children,
searching candidate thresholds at feature quantiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    # Leaf when feature < 0.
    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None


class CARTRegressor:
    """Binary regression tree with variance-reduction splitting."""

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 5,
                 min_samples_split: int = 10, max_thresholds: int = 32) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_thresholds = max_thresholds
        self._root: Optional[_Node] = None
        self.n_features: int = 0

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "CARTRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (n, f) aligned with y")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features = X.shape[1]
        self._root = self._grow(X, y, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or np.allclose(y, y[0])):
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n = len(y)
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain, best = 1e-12, None
        for feature in range(X.shape[1]):
            column = X[:, feature]
            thresholds = np.unique(
                np.quantile(column, np.linspace(0.05, 0.95,
                                                self.max_thresholds))
            )
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                if (n_left < self.min_samples_leaf
                        or n - n_left < self.min_samples_leaf):
                    continue
                y_left, y_right = y[mask], y[~mask]
                sse = (float(((y_left - y_left.mean()) ** 2).sum())
                       + float(((y_right - y_right.mean()) ** 2).sum()))
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain, best = gain, (feature, float(threshold))
        return best

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while node.feature >= 0:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.feature < 0:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)
