"""Three-layer MLP regression head.

The paper trains "a three layer MLP with equal sizes" on top of the
unsupervised embeddings of metapath2vec and hin2vec to predict citations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import MLP, Adam
from ..tensor import Tensor
from .api import LabelScaler


class MLPRegressor:
    """fit(X, y) / predict(X) on dense feature matrices."""

    def __init__(self, hidden: Optional[int] = None, epochs: int = 200,
                 lr: float = 0.01, seed: int = 0) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.scaler = LabelScaler()
        self.mlp: Optional[MLP] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        rng = np.random.default_rng(self.seed)
        hidden = self.hidden or X.shape[1]  # "equal sizes"
        self.mlp = MLP([X.shape[1], hidden, hidden, 1], rng)
        target = Tensor(self.scaler.fit(y).transform(y))
        X_t = Tensor(np.asarray(X, dtype=np.float64))
        optimizer = Adam(list(self.mlp.parameters()), lr=self.lr)
        for _ in range(self.epochs):
            pred = self.mlp(X_t).reshape(-1)
            diff = pred - target
            loss = (diff * diff).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.mlp is None:
            raise RuntimeError("call fit() first")
        pred = self.mlp(Tensor(np.asarray(X, dtype=np.float64))).reshape(-1)
        return self.scaler.inverse(pred.data)
