"""Shared training scaffold for the supervised GNN baselines.

Each baseline supplies a network whose forward maps a
:class:`~repro.core.hgn.GraphBatch` to per-paper predictions; this scaffold
owns label scaling, the Adam loop, early stopping on the validation year,
and the estimator API.

Fault tolerance (DESIGN §12): ``fit(dataset, checkpoint_dir=...,
resume=True)`` snapshots the complete loop state (network weights, Adam
moments, RNG stream, early-stopping trackers) through
:class:`repro.resilience.SnapshotStore`; a run interrupted at any epoch
and resumed from disk reproduces the uninterrupted run's remaining
trajectory bitwise.  The same divergence guard as the CATE-HGN trainer
rolls NaN/Inf steps back to the last good epoch with LR backoff
(``GNNTrainConfig.divergence_guard``); events land in ``self.events``.
"""

from __future__ import annotations

import copy
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.hgn import GraphBatch
from ..data.dblp import CitationDataset
from ..eval.metrics import rmse
from ..hetnet import PAPER
from ..nn import Adam, Module
from ..resilience import (
    DivergenceGuard,
    DivergenceSignal,
    SnapshotStore,
    faults,
    pack_namespace,
    unpack_namespace,
)
from ..tensor import Tensor, gather, no_grad
from .api import LabelScaler


@dataclass
class GNNTrainConfig:
    dim: int = 32
    epochs: int = 60
    lr: float = 0.02
    grad_clip: float = 5.0
    patience: int = 15
    eval_every: int = 2
    seed: int = 0
    weight_decay: float = 1e-3
    # Known-label input channels (same protocol as CATE-HGN's trainer —
    # masked during training, fully visible at inference).
    use_label_inputs: bool = True
    label_mask_rate: float = 0.5
    # Opt-in tape sanitizer (repro.analysis.detect_anomaly): flags NaN/Inf
    # at the op that produced it during every training step.  Costs one
    # reduction per op — debugging only.
    debug_anomaly: bool = False
    # Fused message-passing kernels + shared batch-structure cache
    # (DESIGN §10).  False selects the legacy composed-op path, kept for
    # the numerical-equivalence regression tests.
    fused: bool = True
    # Divergence guard (DESIGN §12); same semantics as CATEHGNConfig.
    divergence_guard: bool = True
    max_rollbacks: int = 3
    lr_backoff: float = 0.5
    explode_factor: float = 1e6


class SupervisedGNNBaseline:
    """fit/predict wrapper around a paper-predicting network."""

    name = "gnn"

    def __init__(self, config: Optional[GNNTrainConfig] = None) -> None:
        self.config = config or GNNTrainConfig()
        self.network: Optional[Module] = None
        self.scaler = LabelScaler()
        self._batch: Optional[GraphBatch] = None
        self.val_history: list[float] = []
        # Resilience event log (rollbacks / resumes), mirroring
        # TrainHistory.events on the CATE-HGN trainer.
        self.events: List[Dict[str, Any]] = []
        # Training-loop state held on the instance so snapshot/rollback
        # can capture and restore it mid-run.
        self._rng: Optional[np.random.Generator] = None
        self._optimizer: Optional[Adam] = None
        self._best_val: float = float("inf")
        self._best_state: Optional[Dict[str, np.ndarray]] = None
        self._bad: int = 0
        self._epoch_done: int = -1
        self._guard: Optional[DivergenceGuard] = None

    # Subclasses implement this.
    def build_network(self, batch: GraphBatch) -> Module:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def build_batches(self, dataset: CitationDataset
                      ) -> tuple[GraphBatch, GraphBatch, np.ndarray]:
        """(train base batch, eval batch, early-stop indices) for ``dataset``.

        Deterministic given the dataset and a fitted ``self.scaler`` — the
        checkpoint restore path (:mod:`repro.serve.checkpoint`) replays it
        with the saved scaler statistics to rebuild the exact inference
        batch (and, for networks that bake topology into their
        constructor, the exact network geometry) the estimator trained
        with.
        """
        fit_idx, stop_idx = dataset.early_stopping_split()
        base = GraphBatch.from_graph(
            dataset.graph, fit_idx,
            self.scaler.transform(dataset.labels[fit_idx]),
            share_structure=True,
        )
        return base, self._augment_eval(base), stop_idx

    def _validate_dataset(self, dataset: CitationDataset,
                          policy: str) -> CitationDataset:
        """Validate-before-train; identity on clean graphs (DESIGN §13)."""
        from dataclasses import replace

        from ..contracts import validate_graph

        graph, report = validate_graph(dataset.graph, policy=policy,
                                       subject="training graph")
        if graph is dataset.graph:
            return dataset
        self.events.append({
            "type": "quarantine",
            "policy": policy,
            "report": report.to_dict(),
        })
        return replace(dataset, graph=graph)

    def fit(self, dataset: CitationDataset, *,
            checkpoint_dir: Optional[Union[str, Path]] = None,
            resume: bool = False,
            checkpoint_every: int = 1,
            keep_last: int = 3,
            validate: Optional[str] = None) -> "SupervisedGNNBaseline":
        """Train; optionally checkpointed and resumable (see module doc).

        ``validate`` applies the contract layer (:mod:`repro.contracts`)
        to the dataset graph before training — identity pass-through on
        clean data, quarantine/repair or strict raise on poisoned data,
        with the quarantine report appended to ``self.events``.
        """
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        if validate is not None:
            dataset = self._validate_dataset(dataset, validate)
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)
        fit_idx, _ = dataset.early_stopping_split()
        self.scaler.fit(dataset.labels[fit_idx])
        base, eval_batch, stop_idx = self.build_batches(dataset)
        self._batch = eval_batch
        if cfg.fused:
            # Warm the batch-structure cache once; every training step and
            # eval pass below shares it (label augmentation keeps topology).
            base.structure
        self.network = self.build_network(eval_batch)
        self._optimizer = Adam(list(self.network.parameters()), lr=cfg.lr,
                               weight_decay=cfg.weight_decay)
        val_labels = dataset.labels[stop_idx]
        self._best_val = float("inf")
        self._best_state = None
        self._bad = 0
        self._epoch_done = -1

        store: Optional[SnapshotStore] = None
        if checkpoint_dir is not None:
            store = SnapshotStore(checkpoint_dir, keep_last=keep_last)
        if resume and store is not None:
            snapshot = store.load_latest()
            if snapshot is not None:
                self._check_resume_config(snapshot.meta)
                self._load_training_state(snapshot.meta, snapshot.arrays)
                self.events.append({
                    "type": "resume",
                    "step": int(snapshot.step),
                    "path": str(snapshot.path),
                })

        guard: Optional[DivergenceGuard] = None
        if cfg.divergence_guard:
            guard = DivergenceGuard(
                capture=self._training_state,
                restore=lambda state: self._load_training_state(*state),
                optimizers=[self._optimizer],
                max_rollbacks=cfg.max_rollbacks,
                lr_backoff=cfg.lr_backoff,
                explode_factor=cfg.explode_factor,
            )
            guard.adopt_history(self.events)
            guard.record_good(self._epoch_done)
        self._guard = guard

        epoch = self._epoch_done + 1
        try:
            while epoch < cfg.epochs:
                if self._bad >= cfg.patience:
                    break  # resumed run had already early-stopped
                faults.fire("baseline.epoch", epoch=epoch)
                try:
                    stop = self._train_epoch(epoch, base, eval_batch,
                                             stop_idx, val_labels)
                except DivergenceSignal as signal:
                    event = guard.rollback(step=epoch, reason=str(signal))
                    self.events.append(event)
                    continue  # retry the same epoch at the backed-off LR
                self._epoch_done = epoch
                if guard is not None:
                    guard.record_good(epoch)
                if store is not None and (
                        epoch % max(1, checkpoint_every) == 0
                        or stop or epoch == cfg.epochs - 1):
                    meta, arrays = self._training_state()
                    store.save(epoch, meta, arrays)
                if stop:
                    break
                epoch += 1
        finally:
            self._guard = None

        if self._best_state is not None:
            self.network.load_state_dict(self._best_state)
        return self

    # ------------------------------------------------------------------
    def _train_epoch(self, epoch: int, base: GraphBatch,
                     eval_batch: GraphBatch, stop_idx: np.ndarray,
                     val_labels: np.ndarray) -> bool:
        """One optimization step (+ scheduled eval); True = early stop."""
        cfg = self.config
        guard = self._guard
        step = self._augment_step(base, self._rng)
        try:
            with self._anomaly_context():
                preds = self.network(step)
                diff = gather(preds, step.labeled_ids) - Tensor(step.labels)
                loss = (diff * diff).mean()
                self._optimizer.zero_grad()
                loss.backward()
        except FloatingPointError as exc:
            # detect_anomaly's AnomalyError subclasses this: route the
            # sanitizer's signal into the rollback machinery.
            if guard is None:
                raise
            raise DivergenceSignal(f"tape sanitizer: {exc}") from exc
        faults.fire("baseline.grad", epoch=epoch,
                    params=self._optimizer.params)
        grad_norm = self._optimizer.clip_grad_norm(cfg.grad_clip)
        if guard is not None:
            guard.check_step(float(loss.data), grad_norm)
        self._optimizer.step()

        if epoch % cfg.eval_every == 0 or epoch == cfg.epochs - 1:
            with no_grad():  # validation pass never backprops
                val_pred = self.scaler.inverse(
                    self.network(eval_batch).data
                )[stop_idx]
            val = rmse(val_labels, val_pred)
            if guard is not None and not np.isfinite(val):
                raise DivergenceSignal(
                    f"non-finite validation RMSE ({val!r})"
                )
            self.val_history.append(val)
            if val < self._best_val - 1e-6:
                self._best_val, self._bad = val, 0
                self._best_state = self.network.state_dict()
            else:
                self._bad += 1
                if self._bad >= cfg.patience:
                    return True
        return False

    # ------------------------------------------------------------------
    # Snapshot / restore (DESIGN §12) — everything the loop needs.
    # ------------------------------------------------------------------
    def _training_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        meta: Dict[str, Any] = {
            "kind": "gnn-baseline-train",
            "baseline_class": type(self).__name__,
            "epoch": int(self._epoch_done),
            "config": asdict(self.config),
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "best_val": self._best_val,
            "bad": int(self._bad),
            "has_best": self._best_state is not None,
            "val_history": list(self.val_history),
            "events": copy.deepcopy(self.events),
            "scaler_mean": self.scaler.mean,
            "scaler_std": self.scaler.std,
        }
        arrays: Dict[str, np.ndarray] = {}
        pack_namespace(arrays, "network", self.network.state_dict())
        if self._best_state is not None:
            pack_namespace(arrays, "best", self._best_state)
        pack_namespace(arrays, "opt", self._optimizer.state_dict())
        return meta, arrays

    def _load_training_state(self, meta: Dict[str, Any],
                             arrays: Dict[str, np.ndarray]) -> None:
        self._epoch_done = int(meta["epoch"])
        self._best_val = float(meta["best_val"])
        self._bad = int(meta["bad"])
        self.scaler.mean = float(meta["scaler_mean"])
        self.scaler.std = float(meta["scaler_std"])
        self.val_history = list(meta["val_history"])
        self.events = copy.deepcopy(meta["events"])
        self.network.load_state_dict(unpack_namespace(arrays, "network"))
        self._best_state = (unpack_namespace(arrays, "best")
                            if meta["has_best"] else None)
        self._optimizer.load_state_dict(unpack_namespace(arrays, "opt"))
        self._rng.bit_generator.state = copy.deepcopy(meta["rng_state"])

    def _check_resume_config(self, meta: Dict[str, Any]) -> None:
        if meta.get("kind") != "gnn-baseline-train":
            raise ValueError(
                f"snapshot kind {meta.get('kind')!r} is not a GNN-baseline "
                f"training snapshot"
            )
        if meta.get("baseline_class") != type(self).__name__:
            raise ValueError(
                f"cannot resume: snapshot belongs to "
                f"{meta.get('baseline_class')!r}, not {type(self).__name__!r}"
            )
        saved = meta.get("config", {})
        current = asdict(self.config)
        diff = sorted(
            key for key in set(saved) | set(current)
            if saved.get(key) != current.get(key)
        )
        if diff:
            raise ValueError(
                "cannot resume: snapshot was written under a different "
                f"configuration (differing keys: {diff}); refit from "
                "scratch or restore the original config"
            )

    def _anomaly_context(self):
        """Opt-in tape sanitizer for one training step (no-op by default)."""
        if not self.config.debug_anomaly:
            from contextlib import nullcontext

            return nullcontext()
        from ..analysis import detect_anomaly

        # Unused-parameter auditing is off (modules=()): early-stopping
        # snapshots legitimately leave heads unused on restored epochs.
        return detect_anomaly()

    def _augment_eval(self, batch: GraphBatch) -> GraphBatch:
        if not self.config.use_label_inputs:
            return batch
        return batch.with_label_inputs(batch.labeled_ids, batch.labels,
                                       batch.labeled_ids, batch.labels)

    def _augment_step(self, batch: GraphBatch,
                      rng: np.random.Generator) -> GraphBatch:
        if not self.config.use_label_inputs:
            return batch
        hidden = rng.random(len(batch.labeled_ids)) < self.config.label_mask_rate
        if hidden.all() or not hidden.any():
            hidden[rng.integers(len(hidden))] ^= True
        return batch.with_label_inputs(
            batch.labeled_ids[~hidden], batch.labels[~hidden],
            batch.labeled_ids[hidden], batch.labels[hidden],
        )

    def predict(self) -> np.ndarray:
        if self.network is None or self._batch is None:
            raise RuntimeError("call fit() first")
        with no_grad():  # tape-free inference (bitwise-identical numbers)
            return self.scaler.inverse(self.network(self._batch).data)

    def save_checkpoint(self, path) -> "str":
        """Persist the fitted network to a versioned ``.npz`` checkpoint.

        Restore with :func:`repro.serve.load_gnn_baseline` (needs the same
        dataset — baseline topology is replayed, not serialized).
        """
        from ..serve.checkpoint import save_gnn_baseline  # lazy: optional dep

        return str(save_gnn_baseline(self, path))
