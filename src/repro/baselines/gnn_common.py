"""Shared training scaffold for the supervised GNN baselines.

Each baseline supplies a network whose forward maps a
:class:`~repro.core.hgn.GraphBatch` to per-paper predictions; this scaffold
owns label scaling, the Adam loop, early stopping on the validation year,
and the estimator API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.hgn import GraphBatch
from ..data.dblp import CitationDataset
from ..eval.metrics import rmse
from ..hetnet import PAPER
from ..nn import Adam, Module
from ..tensor import Tensor, gather, no_grad
from .api import LabelScaler


@dataclass
class GNNTrainConfig:
    dim: int = 32
    epochs: int = 60
    lr: float = 0.02
    grad_clip: float = 5.0
    patience: int = 15
    eval_every: int = 2
    seed: int = 0
    weight_decay: float = 1e-3
    # Known-label input channels (same protocol as CATE-HGN's trainer —
    # masked during training, fully visible at inference).
    use_label_inputs: bool = True
    label_mask_rate: float = 0.5
    # Opt-in tape sanitizer (repro.analysis.detect_anomaly): flags NaN/Inf
    # at the op that produced it during every training step.  Costs one
    # reduction per op — debugging only.
    debug_anomaly: bool = False
    # Fused message-passing kernels + shared batch-structure cache
    # (DESIGN §10).  False selects the legacy composed-op path, kept for
    # the numerical-equivalence regression tests.
    fused: bool = True


class SupervisedGNNBaseline:
    """fit/predict wrapper around a paper-predicting network."""

    name = "gnn"

    def __init__(self, config: Optional[GNNTrainConfig] = None) -> None:
        self.config = config or GNNTrainConfig()
        self.network: Optional[Module] = None
        self.scaler = LabelScaler()
        self._batch: Optional[GraphBatch] = None
        self.val_history: list[float] = []

    # Subclasses implement this.
    def build_network(self, batch: GraphBatch) -> Module:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def build_batches(self, dataset: CitationDataset
                      ) -> tuple[GraphBatch, GraphBatch, np.ndarray]:
        """(train base batch, eval batch, early-stop indices) for ``dataset``.

        Deterministic given the dataset and a fitted ``self.scaler`` — the
        checkpoint restore path (:mod:`repro.serve.checkpoint`) replays it
        with the saved scaler statistics to rebuild the exact inference
        batch (and, for networks that bake topology into their
        constructor, the exact network geometry) the estimator trained
        with.
        """
        fit_idx, stop_idx = dataset.early_stopping_split()
        base = GraphBatch.from_graph(
            dataset.graph, fit_idx,
            self.scaler.transform(dataset.labels[fit_idx]),
            share_structure=True,
        )
        return base, self._augment_eval(base), stop_idx

    def fit(self, dataset: CitationDataset) -> "SupervisedGNNBaseline":
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        fit_idx, _ = dataset.early_stopping_split()
        self.scaler.fit(dataset.labels[fit_idx])
        base, eval_batch, stop_idx = self.build_batches(dataset)
        self._batch = eval_batch
        if cfg.fused:
            # Warm the batch-structure cache once; every training step and
            # eval pass below shares it (label augmentation keeps topology).
            base.structure
        self.network = self.build_network(eval_batch)
        optimizer = Adam(list(self.network.parameters()), lr=cfg.lr,
                         weight_decay=cfg.weight_decay)
        val_labels = dataset.labels[stop_idx]

        best_val = float("inf")
        best_state: Optional[Dict[str, np.ndarray]] = None
        bad = 0
        for epoch in range(cfg.epochs):
            step = self._augment_step(base, rng)
            with self._anomaly_context():
                preds = self.network(step)
                diff = gather(preds, step.labeled_ids) - Tensor(step.labels)
                loss = (diff * diff).mean()
                optimizer.zero_grad()
                loss.backward()
            optimizer.clip_grad_norm(cfg.grad_clip)
            optimizer.step()

            if epoch % cfg.eval_every == 0 or epoch == cfg.epochs - 1:
                with no_grad():  # validation pass never backprops
                    val_pred = self.scaler.inverse(
                        self.network(eval_batch).data
                    )[stop_idx]
                val = rmse(val_labels, val_pred)
                self.val_history.append(val)
                if val < best_val - 1e-6:
                    best_val, bad = val, 0
                    best_state = self.network.state_dict()
                else:
                    bad += 1
                    if bad >= cfg.patience:
                        break
        if best_state is not None:
            self.network.load_state_dict(best_state)
        return self

    def _anomaly_context(self):
        """Opt-in tape sanitizer for one training step (no-op by default)."""
        if not self.config.debug_anomaly:
            from contextlib import nullcontext

            return nullcontext()
        from ..analysis import detect_anomaly

        # Unused-parameter auditing is off (modules=()): early-stopping
        # snapshots legitimately leave heads unused on restored epochs.
        return detect_anomaly()

    def _augment_eval(self, batch: GraphBatch) -> GraphBatch:
        if not self.config.use_label_inputs:
            return batch
        return batch.with_label_inputs(batch.labeled_ids, batch.labels,
                                       batch.labeled_ids, batch.labels)

    def _augment_step(self, batch: GraphBatch,
                      rng: np.random.Generator) -> GraphBatch:
        if not self.config.use_label_inputs:
            return batch
        hidden = rng.random(len(batch.labeled_ids)) < self.config.label_mask_rate
        if hidden.all() or not hidden.any():
            hidden[rng.integers(len(hidden))] ^= True
        return batch.with_label_inputs(
            batch.labeled_ids[~hidden], batch.labels[~hidden],
            batch.labeled_ids[hidden], batch.labels[hidden],
        )

    def predict(self) -> np.ndarray:
        if self.network is None or self._batch is None:
            raise RuntimeError("call fit() first")
        with no_grad():  # tape-free inference (bitwise-identical numbers)
            return self.scaler.inverse(self.network(self._batch).data)

    def save_checkpoint(self, path) -> "str":
        """Persist the fitted network to a versioned ``.npz`` checkpoint.

        Restore with :func:`repro.serve.load_gnn_baseline` (needs the same
        dataset — baseline topology is replayed, not serialized).
        """
        from ..serve.checkpoint import save_gnn_baseline  # lazy: optional dep

        return str(save_gnn_baseline(self, path))
