"""GAT [11] on the type-collapsed homogeneous graph.

The paper's representative of homogeneous GNNs: every node/link type is
flattened into one graph, so the model sees topology and features but no
type semantics — the property behind its Table-II tier.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.hgn import GraphBatch
from ..hetnet import PAPER
from ..hetnet.structure import EdgeStructure
from ..nn import Linear, Module, Parameter, init
from ..tensor import (
    Tensor,
    concatenate,
    gather,
    segment_softmax,
    segment_softmax_fused,
    segment_sum,
    segment_weighted_sum,
)
from .gnn_common import GNNTrainConfig, SupervisedGNNBaseline


class GATLayer(Module):
    """Single-head-averaged multi-head graph attention layer."""

    def __init__(self, in_dim: int, out_dim: int, heads: int,
                 rng: np.random.Generator, slope: float = 0.2) -> None:
        super().__init__()
        self.W = Linear(in_dim, out_dim, rng, bias=False)
        self.att_src = Parameter(init.xavier_uniform(rng, out_dim, heads))
        self.att_dst = Parameter(init.xavier_uniform(rng, out_dim, heads))
        self.slope = slope

    def forward(self, h: Tensor, src: np.ndarray, dst: np.ndarray,
                num_nodes: int,
                sorter: Optional[EdgeStructure] = None) -> Tensor:
        wh = self.W(h)
        score = (gather(wh @ self.att_src, src)
                 + gather(wh @ self.att_dst, dst)).leaky_relu(self.slope)
        if sorter is not None:
            # Fused path: single-node segment softmax + α-weighted
            # aggregation over the network's cached dst-sorted ordering.
            alpha = segment_softmax_fused(score, dst, num_nodes,
                                          sorter=sorter).mean(axis=1)
            return segment_weighted_sum(gather(wh, src), alpha, dst,
                                        num_nodes, sorter=sorter)
        alpha = segment_softmax(score, dst, num_nodes).mean(axis=1)
        messages = gather(wh, src) * alpha.reshape(-1, 1)
        return segment_sum(messages, dst, num_nodes)


class GATNetwork(Module):
    def __init__(self, feature_dim: int, dim: int, heads: int, layers: int,
                 src: np.ndarray, dst: np.ndarray, num_nodes: int,
                 paper_slice: slice, seed: int, fused: bool = True) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.src, self.dst, self.num_nodes = src, dst, num_nodes
        self.paper_slice = paper_slice
        # The collapsed homogeneous topology is fixed for the network's
        # lifetime: build its dst-sorted structure once, share across all
        # layers and epochs.
        self.structure = (EdgeStructure(src, dst, num_nodes)
                          if fused else None)
        self._layers: List[GATLayer] = []
        in_dim = feature_dim
        for i in range(layers):
            layer = GATLayer(in_dim, dim, heads, rng)
            self.register_module(f"gat{i}", layer)
            self._layers.append(layer)
            in_dim = dim
        self.head = Linear(dim, 1, rng)

    def forward(self, batch: GraphBatch) -> Tensor:
        # Types may have different feature widths (papers carry the extra
        # label-input channels); right-pad with zeros before collapsing.
        width = max(batch.features[t].shape[1] for t in batch.node_types)
        blocks = []
        for t in batch.node_types:
            feats = batch.features[t]
            if feats.shape[1] < width:
                pad = np.zeros((feats.shape[0], width - feats.shape[1]))
                feats = np.hstack([feats, pad])
            blocks.append(feats)
        h = Tensor(np.concatenate(blocks, axis=0))
        for layer in self._layers:
            h = layer(h, self.src, self.dst, self.num_nodes,
                      sorter=self.structure).relu()
        papers = h[self.paper_slice]
        return self.head(papers).reshape(-1)


class GAT(SupervisedGNNBaseline):
    name = "GAT"

    def __init__(self, config: GNNTrainConfig | None = None,
                 heads: int = 4, layers: int = 2) -> None:
        super().__init__(config)
        self.heads = heads
        self.layers = layers

    def build_network(self, batch: GraphBatch) -> Module:
        offsets, cursor = {}, 0
        for t in batch.node_types:
            offsets[t] = cursor
            cursor += batch.num_nodes[t]
        srcs, dsts = [], []
        for key, (src, dst, _w, _wn) in batch.edges.items():
            srcs.append(src + offsets[key[0]])
            dsts.append(dst + offsets[key[2]])
        # Self loops, as in the original GAT.
        loops = np.arange(cursor, dtype=np.intp)
        src = np.concatenate(srcs + [loops])
        dst = np.concatenate(dsts + [loops])
        lo = offsets[PAPER]
        paper_slice = slice(lo, lo + batch.num_nodes[PAPER])
        feature_dim = max(batch.features[t].shape[1]
                          for t in batch.node_types)
        return GATNetwork(feature_dim, self.config.dim, self.heads,
                          self.layers, src, dst, cursor, paper_slice,
                          self.config.seed, fused=self.config.fused)
