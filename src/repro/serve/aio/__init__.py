"""Asyncio serving runtime with cross-request dynamic batching.

See DESIGN §16.  Public surface:

* :class:`AsyncPredictionServer` — the asyncio HTTP app (same endpoint
  and JSON surface as the threaded server);
* :class:`BackgroundAsyncServer` — the app on its own thread + loop,
  for tests / drills / benchmarks;
* :func:`serve_forever_aio` — blocking CLI entry point;
* :class:`DynamicBatcher` / :class:`BatchSettings` — the coalescing
  core and its watermarks;
* :class:`AdmissionQueue` / :class:`AdmissionFull` — bounded admission
  (the asyncio analogue of ``InflightLimiter``);
* :class:`BatchingMetrics` — per-flush observability.
"""

from .admission import AdmissionFull, AdmissionQueue
from .batcher import BatchSettings, DynamicBatcher
from .metrics import BatchingMetrics
from .server import (
    AsyncPredictionServer,
    BackgroundAsyncServer,
    serve_forever_aio,
)

__all__ = [
    "AdmissionFull",
    "AdmissionQueue",
    "AsyncPredictionServer",
    "BackgroundAsyncServer",
    "BatchSettings",
    "BatchingMetrics",
    "DynamicBatcher",
    "serve_forever_aio",
]
