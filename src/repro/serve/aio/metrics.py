"""Batching-aware observability for the asyncio runtime (DESIGN §16).

The threaded server's :class:`~repro.serve.metrics.ServiceMetrics`
answers "how long did requests take"; under cross-request batching the
operationally interesting split is *why*: time spent **waiting in the
admission queue** (tunable via the watermarks) vs. time spent in the
**batched compute** itself.  :class:`BatchingMetrics` records, per
flush:

* a batch-size histogram (requests per flush — its weighted sum is the
  total number of batched requests, pinned by the BENCH schema test);
* the coalesce ratio (requests / flushes — 1.0 means batching never
  helped, higher means forwards were shared);
* bounded reservoirs of queue-wait and compute seconds (p50/p99).

Everything here runs on the event-loop thread (the batcher records
after the executor future resolves), so no locks are involved.
"""

from __future__ import annotations

from typing import Any, Dict

from ..metrics import LatencyReservoir


class BatchingMetrics:
    """Per-flush accounting for the dynamic batcher."""

    def __init__(self, window: int = 4096) -> None:
        self.batches = 0
        self.failed_batches = 0
        self.batched_requests = 0
        self.admitted = 0
        #: flush size (requests) -> number of flushes of that size
        self.size_histogram: Dict[int, int] = {}
        self.queue_wait = LatencyReservoir(window, seed=101)
        self.compute = LatencyReservoir(window, seed=202)

    def record_admitted(self) -> None:
        self.admitted += 1

    def record_batch(self, batch, compute_seconds: float,
                     failed: bool = False) -> None:
        size = len(batch)
        self.batches += 1
        self.batched_requests += size
        if failed:
            self.failed_batches += 1
        self.size_histogram[size] = self.size_histogram.get(size, 0) + 1
        for pending in batch:
            self.queue_wait.add(pending.queue_wait_s)
        self.compute.add(compute_seconds)

    def reset(self) -> None:
        """Forget everything (the load-test harness resets after warmup)."""
        self.__init__(window=self.queue_wait.capacity)

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def coalesce_ratio(self) -> float:
        """Requests per flush; > 1 means forwards were genuinely shared."""
        return self.mean_batch_size

    def snapshot(self) -> Dict[str, Any]:
        return {
            "batches": self.batches,
            "failed_batches": self.failed_batches,
            "batched_requests": self.batched_requests,
            "admitted": self.admitted,
            "mean_batch_size": self.mean_batch_size,
            "coalesce_ratio": self.coalesce_ratio,
            "batch_size_histogram": {
                str(k): v for k, v in sorted(self.size_histogram.items())
            },
            "queue_wait_ms_p50": self.queue_wait.quantile(0.50) * 1e3,
            "queue_wait_ms_p99": self.queue_wait.quantile(0.99) * 1e3,
            "compute_ms_p50": self.compute.quantile(0.50) * 1e3,
            "compute_ms_p99": self.compute.quantile(0.99) * 1e3,
        }
