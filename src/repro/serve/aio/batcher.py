"""Adaptive cross-request dynamic batcher (DESIGN §16).

The threaded service micro-batches only *within* one request: two
concurrent ``/predict`` calls each pay their own head application.  The
batcher closes that gap for the asyncio runtime — concurrent requests
are coalesced into **one** tape-free :class:`InferenceEngine` forward
and the per-request futures are resolved from slices of the batched
result.

Mechanics
---------
Handlers call :meth:`DynamicBatcher.submit_predict` /
:meth:`DynamicBatcher.submit_rank`, which enqueue a pending request into
the bounded :class:`~repro.serve.aio.admission.AdmissionQueue` and await
an ``asyncio.Future``.  A single collector task drains the queue into
batches and flushes when either watermark is hit:

* **size watermark** — the coalesced cost (total paper ids for predict,
  1 per rank) reaches ``BatchSettings.max_batch_size``;
* **wait watermark** — ``BatchSettings.max_wait_ms`` elapsed since the
  first request of the batch arrived (so a trickle of traffic never
  waits long for company).

The engine work runs on a single-worker thread executor, so the event
loop keeps accepting and queueing requests *while the previous batch
computes* — that overlap is what makes batches grow adaptively under
load: the heavier the traffic, the more requests accumulate per compute
window, the cheaper each request gets.

Correctness guarantees (pinned by the hypothesis suite):

* batched responses are **bitwise identical** to sequential unbatched
  ones — predictions come from the same micro-batched head path, which
  is row-wise deterministic, and ranks are stable-argsort prefixes;
* every submitted request is resolved exactly once, whatever the
  interleaving, including when the engine call raises mid-batch;
* predictions flow through :class:`~repro.serve.degrade.ServingRuntime`,
  so the circuit-breaker fallback chain (model → cache → prior) and
  ``source``/``degraded`` tagging survive batching unchanged.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .admission import AdmissionQueue
from .metrics import BatchingMetrics


@dataclass
class BatchSettings:
    """Tunable watermarks for the dynamic batcher."""

    #: Flush when the coalesced batch reaches this many units of work
    #: (paper ids for /predict, 1 per /rank request).
    max_batch_size: int = 256
    #: Flush a partial batch this long after its first request arrived.
    max_wait_ms: float = 2.0
    #: Admission bound: requests beyond this many queued are shed (503).
    max_queue_depth: int = 1024

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1e3


class _Pending:
    """One queued request: payload + the future its response resolves."""

    __slots__ = ("kind", "ids", "node_type", "k", "cluster", "cost",
                 "future", "enqueued_at", "queue_wait_s")

    def __init__(self, kind: str, future: "asyncio.Future",
                 enqueued_at: float, ids: Optional[np.ndarray] = None,
                 node_type: str = "", k: int = 0,
                 cluster: Optional[int] = None) -> None:
        self.kind = kind
        self.future = future
        self.enqueued_at = enqueued_at
        self.ids = ids
        self.node_type = node_type
        self.k = k
        self.cluster = cluster
        self.cost = len(ids) if ids is not None else 1
        self.queue_wait_s = 0.0


class DynamicBatcher:
    """Coalesces concurrent requests into single batched engine calls."""

    def __init__(self, runtime, settings: Optional[BatchSettings] = None,
                 metrics: Optional[BatchingMetrics] = None) -> None:
        self.runtime = runtime
        self.settings = settings or BatchSettings()
        self.metrics = metrics or BatchingMetrics()
        self.queue = AdmissionQueue(self.settings.max_queue_depth)
        self._task: Optional["asyncio.Task"] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Total futures resolved (result or exception) — the hypothesis
        #: suite pins ``resolutions == submissions`` for any interleaving.
        self.resolutions = 0

    # ------------------------------------------------------------------
    # Lifecycle (all on the event-loop thread)
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-aio-batch")
        self._task = self._loop.create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:  # noqa: R005 — shutdown signal
                pass
            self._task = None
        # Fail anything still queued so no client waits forever.
        for pending in self.queue.drain():
            self._resolve_exception(
                pending, RuntimeError("server shutting down"))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Submission API (called from request handlers)
    # ------------------------------------------------------------------
    async def submit_predict(self, paper_ids: Sequence[int]) -> Dict[str, Any]:
        """Queue a /predict for the next batch; await its slice.

        Client-side validation happens *before* admission so one bad
        request can never poison a whole batch: a range or type error
        raises here (HTTP 400) and nothing reaches the queue.
        """
        ids = np.asarray(paper_ids, dtype=np.intp).reshape(-1)
        engine = self.runtime.engine
        num_papers = getattr(engine, "num_papers", None)
        if (num_papers is not None and len(ids)
                and (ids.min() < 0 or ids.max() >= num_papers)):
            raise IndexError(f"paper id out of range [0, {num_papers})")
        pending = _Pending("predict", self._make_future(),
                           self._now(), ids=ids)
        self.queue.put(pending)  # raises AdmissionFull -> 503
        self.metrics.record_admitted()
        return await pending.future

    async def submit_rank(self, node_type: str, k: int,
                          cluster: Optional[int]) -> List[dict]:
        """Queue a /rank; concurrent ranks of one key share a forward."""
        pending = _Pending("rank", self._make_future(), self._now(),
                           node_type=node_type, k=int(k), cluster=cluster)
        self.queue.put(pending)
        self.metrics.record_admitted()
        return await pending.future

    def _make_future(self) -> "asyncio.Future":
        return asyncio.get_running_loop().create_future()

    def _now(self) -> float:
        loop = self._loop or asyncio.get_running_loop()
        return loop.time()

    # ------------------------------------------------------------------
    # Collector loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        settings = self.settings
        while True:
            first = await self.queue.get()
            batch = [first]
            try:
                cost = first.cost
                deadline = self._now() + settings.max_wait_s
                while cost < settings.max_batch_size:
                    remaining = deadline - self._now()
                    nxt = (self.queue.get_nowait() if remaining <= 0
                           else await self.queue.get_within(remaining))
                    if nxt is None:
                        break
                    batch.append(nxt)
                    cost += nxt.cost
                await self._execute(batch)
            except asyncio.CancelledError:
                # Shutdown caught us holding requests already popped
                # from the queue (accumulating or mid-execute); they
                # must still resolve — exactly-once includes teardown.
                for pending in batch:
                    self._resolve_exception(
                        pending, RuntimeError("server shutting down"))
                raise

    async def _execute(self, batch: List[_Pending]) -> None:
        started = self._now()
        for pending in batch:
            pending.queue_wait_s = started - pending.enqueued_at
        predicts = [p for p in batch if p.kind == "predict"]
        ranks = [p for p in batch if p.kind == "rank"]
        try:
            result = await self._loop.run_in_executor(
                self._executor, self._forward, predicts, ranks)
        except Exception as exc:  # noqa: BLE001 — fanned out per request
            for pending in batch:
                self._resolve_exception(pending, exc)
            self.metrics.record_batch(batch, self._now() - started,
                                      failed=True)
            return
        predicted, ranked = result
        if predicts:
            offsets = np.cumsum([0] + [p.cost for p in predicts])
            values = predicted["predictions"]
            for i, pending in enumerate(predicts):
                self._resolve_result(pending, {
                    "paper_ids": [int(x) for x in pending.ids],
                    "predictions": [
                        float(v) for v in values[offsets[i]:offsets[i + 1]]
                    ],
                    "source": predicted["source"],
                    "degraded": predicted["degraded"],
                })
        for pending in ranks:
            outcome = ranked[(pending.node_type, pending.cluster)]
            if isinstance(outcome, BaseException):
                self._resolve_exception(pending, outcome)
            else:
                # A stable-argsort top-k is a prefix of any longer one,
                # so serving pending.k from the group's max-k ranking is
                # bitwise what an unbatched call would have returned.
                self._resolve_result(pending, outcome[:pending.k])
        self.metrics.record_batch(batch, self._now() - started)

    def _forward(self, predicts: List[_Pending],
                 ranks: List[_Pending]) -> Tuple[dict, dict]:
        """One executor dispatch covering the whole flush (worker thread).

        Predict ids are concatenated into a single
        :meth:`ServingRuntime.predict` call — one pass through the
        breaker, one micro-batched head application, one fallback
        decision shared by every coalesced request.  Rank requests are
        grouped by ``(node_type, cluster)`` and each group computes one
        ranking at the group's largest ``k``.
        """
        predicted: dict = {}
        if predicts:
            concat = (np.concatenate([p.ids for p in predicts])
                      if predicts else np.array([], dtype=np.intp))
            predicted = self.runtime.predict(concat)
        ranked: Dict[Tuple[str, Optional[int]], Any] = {}
        for pending in ranks:
            key = (pending.node_type, pending.cluster)
            want_k = max(p.k for p in ranks
                         if (p.node_type, p.cluster) == key)
            if key not in ranked:
                try:
                    ranked[key] = self.runtime.engine.rank(
                        pending.node_type, k=want_k, cluster=pending.cluster)
                except Exception as exc:  # noqa: BLE001 — per-key verdict
                    ranked[key] = exc
        return predicted, ranked

    # ------------------------------------------------------------------
    def _resolve_result(self, pending: _Pending, value: Any) -> None:
        if not pending.future.done():
            pending.future.set_result(value)
            self.resolutions += 1

    def _resolve_exception(self, pending: _Pending,
                           exc: BaseException) -> None:
        if not pending.future.done():
            pending.future.set_exception(exc)
            self.resolutions += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Batching state for ``/metrics``."""
        out = self.metrics.snapshot()
        out["queue_depth"] = self.queue.depth
        out["queue_capacity"] = self.queue.capacity
        out["settings"] = {
            "max_batch_size": self.settings.max_batch_size,
            "max_wait_ms": self.settings.max_wait_ms,
            "max_queue_depth": self.settings.max_queue_depth,
        }
        return out
