"""Asyncio HTTP server with cross-request dynamic batching (DESIGN §16).

The asyncio twin of :mod:`repro.serve.service`: the same endpoint
surface (``/predict`` GET+POST, ``/rank``, ``/healthz``, ``/metrics``,
``/admin/reload``), the same JSON wire format, the same overload
semantics (503 + ``Retry-After`` on saturation, 413 body caps, 400 for
truncated bodies, probes always answered) — but one thread, one event
loop, and every concurrent ``/predict``/``/rank`` funneled through the
:class:`~repro.serve.aio.batcher.DynamicBatcher` so overlapping
requests share a single tape-free engine forward.

stdlib-only: ``asyncio.start_server`` plus a hand-rolled HTTP/1.1
request parser (keep-alive aware) keeps the zero-dependency constraint.
The degraded-mode story is unchanged — predictions flow through the
PR-5 :class:`~repro.serve.degrade.ServingRuntime`, so breaker trips
fall back model → cache → prior and still answer 200.

Entry points: :func:`serve_forever_aio` (blocking, used by
``repro-serve --aio``) and :class:`BackgroundAsyncServer` (own thread +
event loop, used by tests, the ``batching`` drill, and the
``benchmarks/perf loadtest`` harness).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..degrade import ReloadRejected, ServingRuntime
from ..metrics import ServiceMetrics
from ..service import CONTROL_ENDPOINTS, ServiceError, ServiceLimits
from .admission import AdmissionFull
from .batcher import BatchSettings, DynamicBatcher

#: Hard cap on request-line + header bytes (not payload, which has its
#: own ``max_body_bytes`` limit).
MAX_HEADER_BYTES = 16 * 1024


class AsyncPredictionServer:
    """Routes HTTP requests into the batcher; JSON in, JSON out."""

    def __init__(self, engine, runtime: Optional[ServingRuntime] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 limits: Optional[ServiceLimits] = None,
                 settings: Optional[BatchSettings] = None,
                 verbose: bool = False) -> None:
        self.runtime = runtime or ServingRuntime(engine)
        self.metrics = metrics or ServiceMetrics()
        self.limits = limits or ServiceLimits()
        self.batcher = DynamicBatcher(self.runtime, settings)
        self.verbose = verbose
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def engine(self):
        """The live engine, read through the runtime (hot-reload aware)."""
        return self.runtime.engine

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0,
                    backlog: int = 2048) -> Tuple[str, int]:
        self.batcher.start()
        # Deep listen backlog: a 1k-client load test opens all its
        # connections at once; asyncio's default backlog of 100 would
        # reset the overflow before the loop ever sees it.
        self._server = await asyncio.start_server(
            self._handle_client, host, port, backlog=backlog)
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (BrokenPipeError, ConnectionResetError):
            self.metrics.record_disconnect("<connection>")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (BrokenPipeError, ConnectionResetError, OSError):  # noqa: R005 — connection already gone
                pass
            except asyncio.CancelledError:  # noqa: R005 — server shutdown cancelled the drain
                # stop() closing the loop cancels handlers mid-drain;
                # the transport is torn down either way, and re-raising
                # from a finally would just spam the loop's exception
                # handler for every lingering keep-alive connection.
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        """Parse and answer one request; returns keep-alive."""
        timeout = self.limits.read_timeout
        try:
            line = await asyncio.wait_for(reader.readline(), timeout)
        except asyncio.TimeoutError:
            return False  # idle keep-alive connection: close quietly
        if not line or not line.strip():
            return False
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._respond(writer, "<parse>",
                                {"error": "malformed request line"}, 400,
                                close=True)
            return False

        headers: Dict[str, str] = {}
        header_bytes = len(line)
        while True:
            try:
                raw = await asyncio.wait_for(reader.readline(), timeout)
            except asyncio.TimeoutError:
                return False
            header_bytes += len(raw)
            if header_bytes > MAX_HEADER_BYTES:
                await self._respond(writer, "<parse>",
                                    {"error": "headers too large"}, 431,
                                    close=True)
                return False
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

        parsed = urlparse(target)
        endpoint = parsed.path
        client_close = headers.get("connection", "").lower() == "close"
        if self.verbose:
            print(f"aio {method} {target}")

        # -- body --------------------------------------------------------
        length = int(headers.get("content-length") or 0)
        if length > self.limits.max_body_bytes:
            # Never read the oversized payload; close so unread bytes
            # cannot be misparsed as a follow-up request.
            await self._respond(
                writer, endpoint,
                {"error": f"request body of {length} bytes exceeds the "
                          f"{self.limits.max_body_bytes}-byte limit"},
                413, close=True)
            return False
        body = b""
        if length > 0:
            try:
                body = await asyncio.wait_for(reader.readexactly(length),
                                              timeout)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                await self._respond(
                    writer, endpoint,
                    {"error": f"request body truncated: Content-Length "
                              f"{length} not received within {timeout}s"},
                    400, close=True)
                return False

        payload, status, extra = await self._dispatch(
            method, endpoint, parsed.query, body)
        sent = await self._respond(writer, endpoint, payload, status,
                                   headers=extra, close=client_close)
        return sent and not client_close

    async def _respond(self, writer: asyncio.StreamWriter, endpoint: str,
                       payload: dict, status: int,
                       headers: Optional[Dict[str, str]] = None,
                       close: bool = False) -> bool:
        body = json.dumps(payload).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  409: "Conflict", 413: "Payload Too Large",
                  431: "Request Header Fields Too Large",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Response")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Server: repro-serve-aio/1.0",
                f"Connection: {'close' if close else 'keep-alive'}"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
            await writer.drain()
        except (BrokenPipeError, ConnectionResetError):
            self.metrics.record_disconnect(endpoint)
            return False
        return True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, endpoint: str, query: str,
                        body: bytes) -> Tuple[dict, int, Dict[str, str]]:
        loop = asyncio.get_running_loop()
        start = loop.time()
        error = False
        extra: Dict[str, str] = {}
        try:
            if endpoint in CONTROL_ENDPOINTS:
                # Probes bypass admission entirely, as in the threaded
                # server: a saturated server still answers them.
                payload, status = self._handle_control(endpoint)
            elif endpoint == "/predict" and method == "GET":
                payload, status = await self._handle_predict_query(query)
            elif endpoint == "/predict" and method == "POST":
                payload, status = await self._handle_predict_post(body)
            elif endpoint == "/rank" and method == "POST":
                payload, status = await self._handle_rank(body)
            elif endpoint == "/admin/reload" and method == "POST":
                payload, status = await self._handle_reload(body)
            else:
                raise ServiceError(404, f"no such endpoint: {endpoint}")
        except AdmissionFull as exc:
            self.metrics.record_shed(endpoint)
            payload = {"error": str(exc)}
            status, error = 503, True
            extra["Retry-After"] = str(self.limits.retry_after_seconds)
        except ServiceError as exc:
            payload, status, error = {"error": exc.message}, exc.status, True
        except (IndexError, KeyError, TypeError, ValueError) as exc:
            payload, status, error = {"error": str(exc)}, 400, True
        except Exception as exc:  # noqa: BLE001 — surface as a 500
            payload, status, error = {"error": str(exc)}, 500, True
        self.metrics.observe(endpoint, loop.time() - start, error=error)
        return payload, status, extra

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _handle_control(self, endpoint: str) -> Tuple[dict, int]:
        if endpoint == "/healthz":
            queue = self.batcher.queue
            breaker_state = self.runtime.breaker.state
            status = ("degraded"
                      if queue.saturated or breaker_state != "closed"
                      else "ok")
            return {
                "status": status,
                "queue_depth": queue.depth,
                "queue_capacity": queue.capacity,
                "breaker": breaker_state,
                **self.engine.info(),
            }, 200
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.engine.cache.stats()
        snapshot["batching"] = self.batcher.snapshot()
        snapshot.update(self.runtime.snapshot())
        return snapshot, 200

    async def _handle_predict_query(self, query: str) -> Tuple[dict, int]:
        params = parse_qs(query)
        raw = ",".join(params.get("ids", []))
        if not raw:
            raise ServiceError(400, "missing ids query parameter")
        try:
            ids = [int(x) for x in raw.split(",") if x != ""]
        except ValueError as exc:
            raise ServiceError(400, f"bad ids: {exc}") from exc
        return await self.batcher.submit_predict(ids), 200

    async def _handle_predict_post(self, body: bytes) -> Tuple[dict, int]:
        payload = _parse_json(body)
        if "title" in payload:
            if not isinstance(payload["title"], str) or not payload["title"]:
                raise ServiceError(400, "title must be a non-empty string")
            # Cold-start scoring runs a bespoke 1-paper forward that can
            # never share a batch; dispatch it straight to the executor.
            loop = asyncio.get_running_loop()
            try:
                score = await loop.run_in_executor(
                    self.batcher._executor, self.engine.score_title,
                    payload["title"])
            except ValueError as exc:
                raise ServiceError(400, str(exc)) from exc
            return {"prediction": score, "cold_start": True}, 200
        if "paper_ids" in payload:
            ids = payload["paper_ids"]
            if not isinstance(ids, list):
                raise ServiceError(400, "paper_ids must be a list of ints")
            return await self.batcher.submit_predict(ids), 200
        raise ServiceError(400, "body must contain paper_ids or title")

    async def _handle_rank(self, body: bytes) -> Tuple[dict, int]:
        payload = _parse_json(body)
        node_type = payload.get("node_type", "paper")
        k = payload.get("k", 10)
        cluster = payload.get("cluster")
        ranking = await self.batcher.submit_rank(node_type, int(k), cluster)
        return {"node_type": node_type, "ranking": ranking}, 200

    async def _handle_reload(self, body: bytes) -> Tuple[dict, int]:
        payload = _parse_json(body)
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            raise ServiceError(400, "body must contain a checkpoint path")
        loop = asyncio.get_running_loop()
        try:
            # The shadow-validation load is seconds of blocking I/O +
            # compute; it shares the batcher's worker thread so the
            # event loop never stalls (and the swap happens between
            # batches, never inside one).
            result = await loop.run_in_executor(
                self.batcher._executor, self.runtime.reload, path)
        except ReloadRejected as exc:
            out: Dict[str, Any] = {"reloaded": False, "error": exc.reason}
            if exc.report is not None:
                out["report"] = exc.report
            return out, 409
        return result, 200


def _parse_json(body: bytes) -> dict:
    try:
        return json.loads(body or b"{}")
    except json.JSONDecodeError as exc:
        raise ServiceError(400, f"invalid JSON body: {exc}") from exc


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def serve_forever_aio(engine, host: str = "127.0.0.1", port: int = 8099,
                      verbose: bool = True,
                      limits: Optional[ServiceLimits] = None,
                      settings: Optional[BatchSettings] = None) -> None:
    """Blocking entry point used by ``repro-serve --aio``."""

    async def _main() -> None:
        app = AsyncPredictionServer(engine, limits=limits,
                                    settings=settings, verbose=verbose)
        bound_host, bound_port = await app.start(host, port)
        cfg = app.batcher.settings
        print(f"repro-serve (asyncio) listening on "
              f"http://{bound_host}:{bound_port} "
              f"({engine.num_papers} papers frozen, batching "
              f"max_batch_size={cfg.max_batch_size} "
              f"max_wait_ms={cfg.max_wait_ms})")
        try:
            await asyncio.Event().wait()  # run until cancelled (^C)
        finally:
            await app.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # noqa: R005 — ^C is the documented shutdown
        pass


class BackgroundAsyncServer:
    """The asyncio service on its own thread + event loop.

    Lets synchronous callers (tests, the ``batching`` drill, the
    load-test harness) boot the server, read its bound address, poke it
    over real sockets, and tear it down deterministically::

        bg = BackgroundAsyncServer(engine, settings=BatchSettings(...))
        host, port = bg.start()
        ...
        bg.shutdown()
    """

    def __init__(self, engine, host: str = "127.0.0.1", port: int = 0,
                 runtime: Optional[ServingRuntime] = None,
                 metrics: Optional[ServiceMetrics] = None,
                 limits: Optional[ServiceLimits] = None,
                 settings: Optional[BatchSettings] = None) -> None:
        self.app = AsyncPredictionServer(engine, runtime=runtime,
                                         metrics=metrics, limits=limits,
                                         settings=settings)
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self.address: Tuple[str, int] = ("", 0)

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._thread_main,
                                        daemon=True,
                                        name="repro-aio-server")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("async server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("async server failed to start") \
                from self._startup_error
        return self.address

    def shutdown(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    # ------------------------------------------------------------------
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — reported to starter
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.address = await self.app.start(self._host, self._port)
        self._ready.set()
        await self._stop_event.wait()
        await self.app.stop()
