"""Bounded admission queue for the asyncio serving runtime (DESIGN §16).

The asyncio analogue of the threaded server's
:class:`~repro.serve.service.InflightLimiter`: work is admitted into a
**bounded** queue and anything beyond the bound is shed immediately with
``503`` + ``Retry-After`` instead of building an unbounded backlog.  The
difference is *where* the bound bites — the threaded limiter caps
concurrently-executing handler threads, while here queued requests are
cheap coroutines and the bound caps how much latency the backlog may
represent.  ``/healthz`` and ``/metrics`` never pass through admission
(a saturated server must keep answering its probes), exactly like the
threaded ``CONTROL_ENDPOINTS`` bypass.

Single-threaded by design: every method runs on the event-loop thread,
so no locks are needed (and the A-rules have nothing to guard).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, List, Optional


class AdmissionFull(Exception):
    """The admission queue is at capacity; the request must be shed."""

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(
            f"admission queue full ({depth}/{capacity} requests queued); "
            f"retry shortly")
        self.depth = depth
        self.capacity = capacity


class AdmissionQueue:
    """FIFO of pending requests with a hard depth bound.

    A hand-rolled deque + event instead of :class:`asyncio.Queue`: the
    batcher needs non-blocking bulk drains (``get_nowait``/``drain``)
    and a timeout-bounded get without the cancellation-loses-an-item
    hazard of ``asyncio.wait_for(queue.get(), ...)`` — a timed-out
    ``Queue.get`` can swallow a concurrently-put item, which would
    violate the exactly-one-response guarantee.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, int(capacity))
        self._items: Deque = deque()
        self._ready = asyncio.Event()
        self.total_admitted = 0
        self.total_shed = 0

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def saturated(self) -> bool:
        return len(self._items) >= self.capacity

    # ------------------------------------------------------------------
    def put(self, item) -> None:
        """Admit ``item`` or raise :class:`AdmissionFull` (→ 503)."""
        if len(self._items) >= self.capacity:
            self.total_shed += 1
            raise AdmissionFull(len(self._items), self.capacity)
        self._items.append(item)
        self.total_admitted += 1
        self._ready.set()

    # ------------------------------------------------------------------
    def get_nowait(self):
        """Pop the oldest item, or ``None`` when empty."""
        if not self._items:
            self._ready.clear()
            return None
        item = self._items.popleft()
        if not self._items:
            self._ready.clear()
        return item

    async def get(self):
        """Pop the oldest item, waiting as long as it takes."""
        while True:
            item = self.get_nowait()
            if item is not None:
                return item
            await self._ready.wait()

    async def get_within(self, timeout: float):
        """Pop the oldest item, or ``None`` after ``timeout`` seconds.

        The wait races only the *event*, never a pop: an item admitted
        while the timer runs is picked up by the next loop iteration
        and can never be silently dropped by the timeout.
        """
        deadline = asyncio.get_running_loop().time() + max(0.0, timeout)
        while True:
            item = self.get_nowait()
            if item is not None:
                return item
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                return None
            try:
                await asyncio.wait_for(self._ready.wait(), remaining)
            except asyncio.TimeoutError:
                return None

    def drain(self) -> List:
        """Remove and return everything queued (used at shutdown)."""
        items = list(self._items)
        self._items.clear()
        self._ready.clear()
        return items
