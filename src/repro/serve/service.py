"""Stdlib-only JSON HTTP service around :class:`InferenceEngine`.

Endpoints
---------
``GET  /healthz``          liveness + snapshot description (``ok``/``degraded``)
``GET  /metrics``          request counts, latency p50/p99, cache hit rate,
                           shed/disconnect/deadline counters
``POST /predict``          ``{"paper_ids": [..]}`` or ``{"title": "..."}``
``GET  /predict?ids=1,2``  curl-friendly bulk prediction
``POST /rank``             ``{"node_type": "author", "k": 10, "cluster": 3}``

No third-party web framework: ``http.server.ThreadingHTTPServer`` plus
hand-rolled JSON marshalling keeps the dependency surface at zero, which
is the whole point of a reproduction repo's serving layer.

Overload & failure semantics (DESIGN §12)
-----------------------------------------
- **Bounded concurrency**: at most ``ServiceLimits.max_inflight`` work
  requests execute at once; excess requests are shed immediately with
  ``503`` + a ``Retry-After`` header instead of queueing unboundedly.
  ``/healthz`` and ``/metrics`` bypass the limiter (a saturated server
  must still answer its health checks) and report ``degraded`` while the
  limiter is saturated.
- **Body caps**: a ``Content-Length`` beyond ``max_body_bytes`` is
  rejected with ``413`` before a single payload byte is read.
- **Slow/truncated clients**: socket reads carry a ``read_timeout``; a
  client that promises more body bytes than it sends gets ``400`` and
  the connection is closed rather than a handler thread parked forever.
- **Deadlines**: requests whose handler ran past ``deadline_seconds``
  return ``504`` (cooperative/post-hoc — stdlib threads cannot be
  preempted, but the client gets an honest signal and the event is
  counted).
- **Disconnects**: clients that vanish mid-response (``BrokenPipeError``
  / ``ConnectionResetError``) are counted, not crashed on; no traceback
  spam from the server thread.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .degrade import ReloadRejected, ServingRuntime
from .engine import InferenceEngine
from .metrics import ServiceMetrics

#: Endpoints that bypass the in-flight limiter and deadline: operability
#: probes must keep answering while the server is saturated.
CONTROL_ENDPOINTS = frozenset({"/healthz", "/metrics"})


class ServiceError(Exception):
    """An HTTP-visible request error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ServiceLimits:
    """Operational guard-rails for the prediction service."""

    #: Reject request bodies whose Content-Length exceeds this (bytes).
    max_body_bytes: int = 1 << 20
    #: Maximum concurrently-executing work requests; excess is shed (503).
    max_inflight: int = 64
    #: Seconds the client should wait before retrying after a shed.
    retry_after_seconds: int = 1
    #: Socket read timeout (seconds); guards against stalled clients.
    read_timeout: float = 5.0
    #: Post-hoc per-request deadline (seconds); ``None`` disables.
    deadline_seconds: Optional[float] = None


class InflightLimiter:
    """Non-blocking concurrency gate with saturation introspection."""

    def __init__(self, limit: int) -> None:
        self.limit = max(1, int(limit))
        self._lock = threading.Lock()
        self._in_use = 0

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._in_use

    @property
    def saturated(self) -> bool:
        with self._lock:
            return self._in_use >= self.limit

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_use >= self.limit:
                return False
            self._in_use += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._in_use <= 0:
                raise RuntimeError("InflightLimiter released below zero")
            self._in_use -= 1


class PredictionHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's engine; JSON in, JSON out."""

    server_version = "repro-serve/1.1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    @property
    def runtime(self) -> ServingRuntime:
        return self.server.runtime  # type: ignore[attr-defined]

    @property
    def engine(self) -> InferenceEngine:
        # Always read through the runtime: a hot reload swaps the engine
        # under us and every handler must see the new one immediately.
        return self.runtime.engine

    @property
    def metrics(self) -> ServiceMetrics:
        return self.server.metrics  # type: ignore[attr-defined]

    @property
    def limits(self) -> ServiceLimits:
        return self.server.limits  # type: ignore[attr-defined]

    @property
    def limiter(self) -> InflightLimiter:
        return self.server.limiter  # type: ignore[attr-defined]

    def setup(self) -> None:
        # Socket-level read timeout: a stalled client can only park this
        # thread for read_timeout seconds, not forever.
        self.timeout = self.limits.read_timeout
        super().setup()

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        if length > self.limits.max_body_bytes:
            # The oversized body is never read; drop the connection so the
            # unread bytes cannot be misparsed as a follow-up request.
            self.close_connection = True
            raise ServiceError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.limits.max_body_bytes}-byte limit",
            )
        try:
            body = self.rfile.read(length)
        except TimeoutError as exc:  # body shorter than Content-Length
            self.close_connection = True
            raise ServiceError(
                400,
                f"request body shorter than Content-Length {length} "
                f"(read timed out after {self.limits.read_timeout}s)",
            ) from exc
        if len(body) < length:  # client half-closed before sending it all
            self.close_connection = True
            raise ServiceError(
                400,
                f"request body truncated: Content-Length {length} but "
                f"only {len(body)} bytes received",
            )
        try:
            return json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}") from exc

    def _send_json(self, payload: dict, status: int = 200,
                   headers: Optional[Dict[str, str]] = None,
                   endpoint: str = "") -> None:
        body = json.dumps(payload).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-response; count it, drop the
            # connection, and keep the worker thread alive.
            self.metrics.record_disconnect(endpoint or self.path)
            self.close_connection = True

    def _dispatch(self, endpoint: str, handler) -> None:
        control = endpoint in CONTROL_ENDPOINTS
        if not control and not self.limiter.try_acquire():
            self.metrics.record_shed(endpoint)
            retry = self.limits.retry_after_seconds
            self._send_json(
                {"error": "server is at its in-flight request limit; "
                          "retry shortly"},
                503,
                headers={"Retry-After": str(retry)},
                endpoint=endpoint,
            )
            return
        start = time.perf_counter()
        error = False
        try:
            try:
                payload, status = handler()
            except ServiceError as exc:
                payload, status, error = {"error": exc.message}, exc.status, True
            except (BrokenPipeError, ConnectionResetError):
                # Disconnect while *reading* the request: nothing to send.
                self.metrics.record_disconnect(endpoint)
                self.close_connection = True
                return
            except Exception as exc:  # noqa: BLE001 — surface as a 500
                payload, status, error = {"error": str(exc)}, 500, True
            elapsed = time.perf_counter() - start
            deadline = self.limits.deadline_seconds
            if (not control and not error and deadline is not None
                    and elapsed > deadline):
                # Post-hoc deadline: the work finished but too late to be
                # useful; report 504 honestly instead of a stale 200.
                self.metrics.record_deadline(endpoint)
                payload = {"error": f"deadline of {deadline}s exceeded "
                                    f"({elapsed:.3f}s elapsed)"}
                status, error = 504, True
            self.metrics.observe(endpoint, elapsed, error=error)
            self._send_json(payload, status, endpoint=endpoint)
        finally:
            if not control:
                self.limiter.release()

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._dispatch("/healthz", self._handle_healthz)
        elif parsed.path == "/metrics":
            self._dispatch("/metrics", self._handle_metrics)
        elif parsed.path == "/predict":
            query = parse_qs(parsed.query)
            self._dispatch(
                "/predict", lambda: self._handle_predict_query(query)
            )
        else:
            self._dispatch(parsed.path, self._not_found)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        parsed = urlparse(self.path)
        if parsed.path == "/predict":
            self._dispatch("/predict", self._handle_predict_post)
        elif parsed.path == "/rank":
            self._dispatch("/rank", self._handle_rank)
        elif parsed.path == "/admin/reload":
            self._dispatch("/admin/reload", self._handle_reload)
        else:
            self._dispatch(parsed.path, self._not_found)

    # ------------------------------------------------------------------
    def _not_found(self) -> Tuple[dict, int]:
        raise ServiceError(404, f"no such endpoint: {self.path}")

    def _handle_healthz(self) -> Tuple[dict, int]:
        saturated = self.limiter.saturated
        breaker_state = self.runtime.breaker.state
        status = ("degraded" if saturated or breaker_state != "closed"
                  else "ok")
        return {
            "status": status,
            "inflight": self.limiter.in_use,
            "inflight_limit": self.limiter.limit,
            "breaker": breaker_state,
            **self.engine.info(),
        }, 200

    def _handle_metrics(self) -> Tuple[dict, int]:
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.engine.cache.stats()
        snapshot["inflight"] = self.limiter.in_use
        snapshot["inflight_limit"] = self.limiter.limit
        # Breaker state + per-source fallback counters (DESIGN §13).
        snapshot.update(self.runtime.snapshot())
        return snapshot, 200

    def _handle_predict_query(self, query: dict) -> Tuple[dict, int]:
        raw = ",".join(query.get("ids", []))
        if not raw:
            raise ServiceError(400, "missing ids query parameter")
        try:
            ids = [int(x) for x in raw.split(",") if x != ""]
        except ValueError as exc:
            raise ServiceError(400, f"bad ids: {exc}") from exc
        return self._predict_ids(ids)

    def _handle_predict_post(self) -> Tuple[dict, int]:
        body = self._read_json()
        if "title" in body:
            if not isinstance(body["title"], str) or not body["title"]:
                raise ServiceError(400, "title must be a non-empty string")
            try:
                score = self.engine.score_title(body["title"])
            except ValueError as exc:
                raise ServiceError(400, str(exc)) from exc
            return {"prediction": score, "cold_start": True}, 200
        if "paper_ids" in body:
            ids = body["paper_ids"]
            if not isinstance(ids, list):
                raise ServiceError(400, "paper_ids must be a list of ints")
            return self._predict_ids(ids)
        raise ServiceError(400, "body must contain paper_ids or title")

    def _predict_ids(self, ids) -> Tuple[dict, int]:
        try:
            result = self.runtime.predict(ids)
        except (IndexError, TypeError, ValueError) as exc:
            raise ServiceError(400, str(exc)) from exc
        return {
            "paper_ids": [int(i) for i in ids],
            "predictions": [float(p) for p in result["predictions"]],
            "source": result["source"],
            "degraded": result["degraded"],
        }, 200

    def _handle_reload(self) -> Tuple[dict, int]:
        """Hot checkpoint reload behind the shadow-validation gate.

        A rejected candidate (corrupt file, contract violation, golden
        parity failure) returns ``409`` with the reason — and the old
        engine keeps serving; the reload is atomic on success.
        """
        body = self._read_json()
        path = body.get("path")
        if not isinstance(path, str) or not path:
            raise ServiceError(400, "body must contain a checkpoint path")
        try:
            result = self.runtime.reload(path)
        except ReloadRejected as exc:
            payload = {"reloaded": False, "error": exc.reason}
            if exc.report is not None:
                payload["report"] = exc.report
            return payload, 409
        return result, 200

    def _handle_rank(self) -> Tuple[dict, int]:
        body = self._read_json()
        node_type = body.get("node_type", "paper")
        k = body.get("k", 10)
        cluster = body.get("cluster")
        try:
            ranking = self.engine.rank(node_type, k=int(k),
                                       cluster=cluster)
        except (KeyError, ValueError, TypeError) as exc:
            raise ServiceError(400, str(exc)) from exc
        return {"node_type": node_type, "ranking": ranking}, 200


class ResilientHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats client disconnects as routine.

    Stdlib's default ``handle_error`` prints a full traceback for *any*
    exception escaping a handler thread — including the
    ``BrokenPipeError`` every impatient client causes.  Those are
    counted in metrics and suppressed; genuine bugs still get their
    traceback.
    """

    #: Exceptions that mean "the client hung up", not "the server broke".
    DISCONNECT_ERRORS = (BrokenPipeError, ConnectionResetError,
                         TimeoutError)

    #: Deep listen backlog (socketserver's default is 5): a burst of
    #: concurrent clients — e.g. the serving load test — must land in
    #: the accept queue, not get reset at the kernel's front door.
    request_queue_size = 1024

    @property
    def engine(self) -> InferenceEngine:
        """The live engine, read through the runtime (hot-reload aware)."""
        return self.runtime.engine  # type: ignore[attr-defined]

    def handle_error(self, request, client_address) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, self.DISCONNECT_ERRORS):
            metrics = getattr(self, "metrics", None)
            if metrics is not None:
                metrics.record_disconnect("<connection>")
            return
        super().handle_error(request, client_address)


def make_server(engine: InferenceEngine, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                metrics: Optional[ServiceMetrics] = None,
                limits: Optional[ServiceLimits] = None,
                runtime: Optional[ServingRuntime] = None
                ) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` = ephemeral.

    ``runtime`` optionally supplies a pre-configured
    :class:`~repro.serve.degrade.ServingRuntime` (custom breaker
    thresholds, model deadline); by default the engine is wrapped in one
    with standard settings.  The server's ``engine`` attribute always
    reflects the runtime's *current* engine, including after hot reloads.
    """
    server = ResilientHTTPServer((host, port), PredictionHandler)
    server.runtime = runtime or ServingRuntime(engine)  # type: ignore[attr-defined]
    server.metrics = metrics or ServiceMetrics()  # type: ignore[attr-defined]
    server.limits = limits or ServiceLimits()  # type: ignore[attr-defined]
    server.limiter = InflightLimiter(  # type: ignore[attr-defined]
        server.limits.max_inflight
    )
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve_forever(engine: InferenceEngine, host: str = "127.0.0.1",
                  port: int = 8099, verbose: bool = True,
                  limits: Optional[ServiceLimits] = None) -> None:
    """Blocking entry point used by ``python -m repro.serve``."""
    server = make_server(engine, host, port, verbose=verbose, limits=limits)
    bound = server.server_address
    print(f"repro-serve listening on http://{bound[0]}:{bound[1]} "
          f"({engine.num_papers} papers frozen, "
          f"freeze took {engine.freeze_seconds:.2f}s)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # noqa: R005 — ^C is the documented shutdown
        pass
    finally:
        server.server_close()
