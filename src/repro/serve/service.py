"""Stdlib-only JSON HTTP service around :class:`InferenceEngine`.

Endpoints
---------
``GET  /healthz``          liveness + snapshot description
``GET  /metrics``          request counts, latency p50/p99, cache hit rate
``POST /predict``          ``{"paper_ids": [..]}`` or ``{"title": "..."}``
``GET  /predict?ids=1,2``  curl-friendly bulk prediction
``POST /rank``             ``{"node_type": "author", "k": 10, "cluster": 3}``

No third-party web framework: ``http.server.ThreadingHTTPServer`` plus
hand-rolled JSON marshalling keeps the dependency surface at zero, which
is the whole point of a reproduction repo's serving layer.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .engine import InferenceEngine
from .metrics import ServiceMetrics


class ServiceError(Exception):
    """An HTTP-visible request error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class PredictionHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's engine; JSON in, JSON out."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    @property
    def engine(self) -> InferenceEngine:
        return self.server.engine  # type: ignore[attr-defined]

    @property
    def metrics(self) -> ServiceMetrics:
        return self.server.metrics  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        try:
            return json.loads(self.rfile.read(length) or b"{}")
        except json.JSONDecodeError as exc:
            raise ServiceError(400, f"invalid JSON body: {exc}") from exc

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, endpoint: str, handler) -> None:
        start = time.perf_counter()
        error = False
        try:
            payload, status = handler()
        except ServiceError as exc:
            payload, status, error = {"error": exc.message}, exc.status, True
        except Exception as exc:  # noqa: BLE001 — surface as a 500
            payload, status, error = {"error": str(exc)}, 500, True
        self.metrics.observe(endpoint, time.perf_counter() - start,
                             error=error)
        self._send_json(payload, status)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        parsed = urlparse(self.path)
        if parsed.path == "/healthz":
            self._dispatch("/healthz", self._handle_healthz)
        elif parsed.path == "/metrics":
            self._dispatch("/metrics", self._handle_metrics)
        elif parsed.path == "/predict":
            query = parse_qs(parsed.query)
            self._dispatch(
                "/predict", lambda: self._handle_predict_query(query)
            )
        else:
            self._dispatch(parsed.path, self._not_found)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        parsed = urlparse(self.path)
        if parsed.path == "/predict":
            self._dispatch("/predict", self._handle_predict_post)
        elif parsed.path == "/rank":
            self._dispatch("/rank", self._handle_rank)
        else:
            self._dispatch(parsed.path, self._not_found)

    # ------------------------------------------------------------------
    def _not_found(self) -> Tuple[dict, int]:
        raise ServiceError(404, f"no such endpoint: {self.path}")

    def _handle_healthz(self) -> Tuple[dict, int]:
        return {"status": "ok", **self.engine.info()}, 200

    def _handle_metrics(self) -> Tuple[dict, int]:
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.engine.cache.stats()
        return snapshot, 200

    def _handle_predict_query(self, query: dict) -> Tuple[dict, int]:
        raw = ",".join(query.get("ids", []))
        if not raw:
            raise ServiceError(400, "missing ids query parameter")
        try:
            ids = [int(x) for x in raw.split(",") if x != ""]
        except ValueError as exc:
            raise ServiceError(400, f"bad ids: {exc}") from exc
        return self._predict_ids(ids)

    def _handle_predict_post(self) -> Tuple[dict, int]:
        body = self._read_json()
        if "title" in body:
            if not isinstance(body["title"], str) or not body["title"]:
                raise ServiceError(400, "title must be a non-empty string")
            try:
                score = self.engine.score_title(body["title"])
            except ValueError as exc:
                raise ServiceError(400, str(exc)) from exc
            return {"prediction": score, "cold_start": True}, 200
        if "paper_ids" in body:
            ids = body["paper_ids"]
            if not isinstance(ids, list):
                raise ServiceError(400, "paper_ids must be a list of ints")
            return self._predict_ids(ids)
        raise ServiceError(400, "body must contain paper_ids or title")

    def _predict_ids(self, ids) -> Tuple[dict, int]:
        try:
            preds = self.engine.predict(ids)
        except (IndexError, TypeError, ValueError) as exc:
            raise ServiceError(400, str(exc)) from exc
        return {
            "paper_ids": [int(i) for i in ids],
            "predictions": [float(p) for p in preds],
        }, 200

    def _handle_rank(self) -> Tuple[dict, int]:
        body = self._read_json()
        node_type = body.get("node_type", "paper")
        k = body.get("k", 10)
        cluster = body.get("cluster")
        try:
            ranking = self.engine.rank(node_type, k=int(k),
                                       cluster=cluster)
        except (KeyError, ValueError, TypeError) as exc:
            raise ServiceError(400, str(exc)) from exc
        return {"node_type": node_type, "ranking": ranking}, 200


def make_server(engine: InferenceEngine, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                metrics: Optional[ServiceMetrics] = None
                ) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` = ephemeral."""
    server = ThreadingHTTPServer((host, port), PredictionHandler)
    server.engine = engine  # type: ignore[attr-defined]
    server.metrics = metrics or ServiceMetrics()  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve_forever(engine: InferenceEngine, host: str = "127.0.0.1",
                  port: int = 8099, verbose: bool = True) -> None:
    """Blocking entry point used by ``python -m repro.serve``."""
    server = make_server(engine, host, port, verbose=verbose)
    bound = server.server_address
    print(f"repro-serve listening on http://{bound[0]}:{bound[1]} "
          f"({engine.num_papers} papers frozen, "
          f"freeze took {engine.freeze_seconds:.2f}s)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
