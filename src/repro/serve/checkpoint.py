"""Versioned ``.npz`` checkpoints for trained citation models (DESIGN §11).

One checkpoint is a single ``<base>.npz`` file holding

- ``__checkpoint__``: a 0-d unicode array with the JSON metadata blob
  (``format_version``, model kind, config, architecture, label-scale
  statistics, term sets, ...);
- ``param/<name>``: one array per :meth:`repro.nn.Module.state_dict` entry;
- ``extra/<name>``: auxiliary arrays (labeled ids, normalized labels, text
  embedding vectors for cold-start scoring, ...).

CATE-HGN checkpoints additionally write a ``<base>.graph.npz/.json``
sidecar (via :func:`repro.data.save_graph`) holding the TE-rewritten
heterogeneous graph, so inference restores **without** the training
dataset and reproduces the estimator's predictions bitwise.  GNN-baseline
checkpoints instead replay their deterministic batch/topology construction
from the dataset passed at load time (GAT/HAN bake topology into their
network constructors).

Format policy: ``CHECKPOINT_FORMAT_VERSION`` is bumped on any incompatible
layout change; :func:`load_checkpoint` rejects versions it does not
understand with a clear error instead of mis-reading them.
"""

from __future__ import annotations

import contextlib
import inspect
import io
import json
import zipfile
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from ..core.hgn import GraphBatch
from ..core.model import CATEHGNConfig, CATEHGNModel
from ..core.trainer import CATEHGN
from ..data.io import load_graph, save_graph
from ..hetnet import HeteroGraph
from ..resilience import CheckpointCorruptError, atomic_write_bytes, content_digest

#: On-disk checkpoint format version (see module docstring).
CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__checkpoint__"
_PARAM_PREFIX = "param/"
_EXTRA_PREFIX = "extra/"


# ----------------------------------------------------------------------
# Low-level container API
# ----------------------------------------------------------------------
@dataclass
class Checkpoint:
    """A loaded checkpoint: metadata + parameter/auxiliary arrays."""

    meta: Dict[str, Any]
    state: Dict[str, np.ndarray]
    extras: Dict[str, np.ndarray]
    path: Path

    @property
    def kind(self) -> str:
        return self.meta["kind"]


def _base_path(path: Union[str, Path]) -> Path:
    """``foo``, ``foo.npz`` -> ``foo`` (the extension is added on write)."""
    path = Path(path)
    if path.suffix == ".npz":
        path = path.with_suffix("")
    return path


def save_checkpoint(path: Union[str, Path], meta: Dict[str, Any],
                    state: Dict[str, np.ndarray],
                    extras: Optional[Dict[str, np.ndarray]] = None) -> Path:
    """Write a versioned checkpoint; returns the ``.npz`` path written."""
    base = _base_path(path)
    meta = dict(meta)
    meta["format_version"] = CHECKPOINT_FORMAT_VERSION
    arrays: Dict[str, np.ndarray] = {}
    for name, value in state.items():
        arrays[_PARAM_PREFIX + name] = np.asarray(value)
    for name, value in (extras or {}).items():
        arrays[_EXTRA_PREFIX + name] = np.asarray(value)
    # Checksum the payload arrays (not the meta blob itself), embed the
    # digest in the meta blob, and write the whole npz crash-safely: a
    # kill at any point leaves the previous checkpoint intact.
    meta["content_sha256"] = content_digest(arrays)
    arrays[_META_KEY] = np.array(json.dumps(meta))
    out = base.with_suffix(".npz")
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    atomic_write_bytes(out, buffer.getvalue())
    return out


def load_checkpoint(path: Union[str, Path], *,
                    mmap_mode: Optional[str] = None) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises ``ValueError`` for files that are not checkpoints or carry an
    unknown ``format_version``, and
    :class:`~repro.resilience.CheckpointCorruptError` for files that are
    truncated, bit-flipped, or fail their embedded checksum.

    ``mmap_mode="r"`` returns the parameter/extra arrays as read-only
    memory maps through the :func:`repro.data.mmap_npz` extraction
    cache: N serving replicas loading the same checkpoint share its
    pages through the OS page cache instead of materializing N private
    copies.  Integrity on this path is enforced at extraction time (the
    zip CRCs are verified as members stream out, and the cache manifest
    pins the npz's SHA-256), so the per-load ``content_sha256`` pass —
    which would fault in and hash every page — is skipped.
    """
    base = _base_path(path)
    npz_path = base.with_suffix(".npz")
    if mmap_mode not in (None, "r"):
        raise ValueError(f"mmap_mode must be None or 'r', got {mmap_mode!r}")
    try:
        with contextlib.ExitStack() as stack:
            if mmap_mode is None:
                arrays = stack.enter_context(
                    np.load(npz_path, allow_pickle=False))
                files = list(arrays.files)
            else:
                from ..data.io import mmap_npz

                arrays = mmap_npz(npz_path)
                files = list(arrays)
            if _META_KEY not in files:
                raise ValueError(
                    f"{npz_path} is not a repro.serve checkpoint "
                    f"(missing {_META_KEY!r} metadata entry)"
                )
            meta = json.loads(str(arrays[_META_KEY][()]))
            version = meta.get("format_version")
            if version != CHECKPOINT_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint format_version {version!r} in "
                    f"{npz_path}: this build reads version "
                    f"{CHECKPOINT_FORMAT_VERSION}"
                )
            state, extras, payload = {}, {}, {}
            for key in files:
                if key.startswith(_PARAM_PREFIX):
                    state[key[len(_PARAM_PREFIX):]] = arrays[key]
                    payload[key] = state[key[len(_PARAM_PREFIX):]]
                elif key.startswith(_EXTRA_PREFIX):
                    extras[key[len(_EXTRA_PREFIX):]] = arrays[key]
                    payload[key] = extras[key[len(_EXTRA_PREFIX):]]
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError,
            KeyError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            f"checkpoint {npz_path} is unreadable ({exc}); the file is "
            f"truncated or corrupted — restore from a previous checkpoint"
        ) from exc
    expected = meta.get("content_sha256")  # absent in pre-checksum files
    if expected is not None and mmap_mode is None:
        actual = content_digest(payload)
        if actual != expected:
            raise CheckpointCorruptError(
                f"checkpoint {npz_path} failed its content checksum "
                f"(expected {expected[:12]}…, got {actual[:12]}…); the "
                f"payload was altered after writing"
            )
    return Checkpoint(meta=meta, state=state, extras=extras, path=npz_path)


# ----------------------------------------------------------------------
# CATE-HGN checkpoints (self-contained: graph sidecar included)
# ----------------------------------------------------------------------
def save_catehgn(est: CATEHGN, path: Union[str, Path]) -> Path:
    """Checkpoint a fitted :class:`repro.core.CATEHGN` estimator.

    Self-contained: the TE-rewritten graph goes into a
    ``<base>.graph.npz/.json`` sidecar, the fit labels / architecture /
    text embeddings into the checkpoint itself, so
    :func:`restore_catehgn` reproduces ``est.predict()`` bitwise with no
    dataset in sight.
    """
    if est.model is None or est._batch is None or est._graph is None:
        raise RuntimeError("cannot checkpoint an unfitted estimator; "
                           "call fit() first")
    base = _base_path(path)
    batch = est._batch
    # NB: no dot in the sidecar suffix — save_graph appends .npz/.json via
    # with_suffix(), which would otherwise clobber the checkpoint itself.
    graph_base = base.parent / (base.name + "_graph")
    save_graph(est._graph, graph_base)

    meta: Dict[str, Any] = {
        "kind": "catehgn",
        "config": asdict(est.config),
        "node_types": list(batch.node_types),
        "feature_dims": {t: int(batch.features[t].shape[1])
                         for t in batch.node_types},
        "edge_type_keys": [list(k) for k in batch.edges.keys()],
        "label_mean": est._label_mean,
        "label_std": est._label_std,
        "term_sets": est._term_sets,
        "domain_names": (list(est._dataset.domain_names)
                         if est._dataset is not None else None),
        "graph": graph_base.name,  # sidecar lives next to the checkpoint
    }
    embeddings = (est._dataset.text.embeddings
                  if est._dataset is not None else None)
    extras: Dict[str, np.ndarray] = {
        "labeled_ids": np.asarray(est._fit_idx, dtype=np.intp),
        "labels_norm": est._normalize(
            np.asarray(est._dataset.labels)[est._fit_idx]
        ) if est._dataset is not None else batch.labels,
    }
    if embeddings is not None:
        # Text embedding table: enables cold-start scoring of unseen
        # papers straight from their title tokens.
        extras["text_tokens"] = np.array(list(embeddings.vocabulary))
        extras["text_vectors"] = embeddings.vectors
    # Degraded-mode serving support (DESIGN §13): bake the cheap prior
    # head (venue-authority / author-prestige ridge scorer) and a golden
    # batch — ids + the estimator's own predictions — into the
    # checkpoint.  The prior is the last rung of the serving fallback
    # chain; the goldens gate hot reloads (prediction parity before an
    # engine swap).
    from .prior import PriorHead

    if est._dataset is not None:
        labels_raw = np.asarray(est._dataset.labels,
                                dtype=np.float64)[est._fit_idx]
    else:
        labels_raw = batch.labels * est._label_std + est._label_mean
    prior = PriorHead.fit(est._graph, est._fit_idx, labels_raw)
    extras.update(prior.to_extras())
    golden_ids = np.arange(min(16, batch.num_nodes["paper"]), dtype=np.intp)
    extras["golden_ids"] = golden_ids
    extras["golden_preds"] = np.asarray(est.predict(),
                                        dtype=np.float64)[golden_ids]
    return save_checkpoint(base, meta, est.model.state_dict(), extras)


@dataclass
class RestoredCATEHGN:
    """Everything :class:`repro.serve.InferenceEngine` needs to serve."""

    model: CATEHGNModel
    config: CATEHGNConfig
    graph: HeteroGraph
    batch: GraphBatch  # the exact inference batch the estimator used
    label_mean: float
    label_std: float
    term_sets: Optional[list]
    domain_names: Optional[list]
    embeddings: Optional["WordEmbeddings"]  # noqa: F821 — lazy text import
    #: Degraded-mode serving (DESIGN §13): the checkpoint-baked prior
    #: head and the golden batch used by the hot-reload parity gate.
    #: Defaults keep old pickled call sites constructing this dataclass
    #: positionally working.
    prior: Optional["PriorHead"] = None  # noqa: F821 — lazy prior import
    golden_ids: Optional[np.ndarray] = None
    golden_preds: Optional[np.ndarray] = None

    def predict_papers(self) -> np.ndarray:
        """Citations/year for every paper — matches ``CATEHGN.predict``."""
        raw = self.model.predict_papers(self.batch)
        return np.maximum(raw * self.label_std + self.label_mean, 0.0)


def restore_catehgn(path: Union[str, Path], *,
                    mmap_mode: Optional[str] = None) -> RestoredCATEHGN:
    """Rebuild model + inference batch from a CATE-HGN checkpoint.

    ``mmap_mode="r"`` memory-maps both the checkpoint arrays and the
    graph sidecar (see :func:`load_checkpoint`), so N fleet replicas
    restoring the same checkpoint share its bulk data — graph features,
    text-embedding vectors — through the OS page cache.  Model weights
    are still copied into private writable arrays by ``load_state_dict``
    (they are small relative to the graph payload).
    """
    ckpt = load_checkpoint(path, mmap_mode=mmap_mode)
    if ckpt.kind != "catehgn":
        raise ValueError(
            f"expected a 'catehgn' checkpoint, got kind={ckpt.kind!r} "
            f"(use load_gnn_baseline for baseline checkpoints)"
        )
    meta = ckpt.meta
    graph = load_graph(ckpt.path.parent / meta["graph"], mmap_mode=mmap_mode)
    # save_graph preserves edge insertion order, which fixes the Eq. 13
    # summation order; assert the invariant instead of silently reordering.
    saved_keys = [tuple(k) for k in meta["edge_type_keys"]]
    if list(graph.edges.keys()) != saved_keys:
        graph.edges = {k: graph.edges[k] for k in saved_keys}

    config = CATEHGNConfig(**meta["config"])
    labeled_ids = ckpt.extras["labeled_ids"]
    labels_norm = ckpt.extras["labels_norm"]
    base = GraphBatch.from_graph(graph, labeled_ids, labels_norm,
                                 share_structure=True)
    if config.use_label_inputs:
        batch = base.with_label_inputs(labeled_ids, labels_norm,
                                       labeled_ids, labels_norm)
    else:
        batch = base

    feature_dims = {t: int(d) for t, d in meta["feature_dims"].items()}
    for t in batch.node_types:
        if batch.features[t].shape[1] != feature_dims[t]:
            raise ValueError(
                f"restored feature width mismatch for {t!r}: checkpoint "
                f"says {feature_dims[t]}, graph gives "
                f"{batch.features[t].shape[1]}"
            )
    model = CATEHGNModel(config, meta["node_types"], feature_dims,
                         saved_keys)
    model.load_state_dict(ckpt.state)

    embeddings = None
    if "text_vectors" in ckpt.extras:
        from ..text import Vocabulary, WordEmbeddings

        vocab = Vocabulary(str(t) for t in ckpt.extras["text_tokens"])
        embeddings = WordEmbeddings(vocab, ckpt.extras["text_vectors"])

    from .prior import PriorHead

    label_mean = float(meta["label_mean"])
    label_std = float(meta["label_std"])
    prior = PriorHead.from_extras(ckpt.extras)
    if prior is None:
        # Pre-§13 checkpoint: refit the prior deterministically from the
        # sidecar graph + the saved (denormalized) training labels.
        prior = PriorHead.fit(graph, labeled_ids,
                              labels_norm * label_std + label_mean)
    golden_ids = ckpt.extras.get("golden_ids")
    golden_preds = ckpt.extras.get("golden_preds")
    return RestoredCATEHGN(
        model=model, config=config, graph=graph, batch=batch,
        label_mean=label_mean,
        label_std=label_std,
        term_sets=meta.get("term_sets"),
        domain_names=meta.get("domain_names"),
        embeddings=embeddings,
        prior=prior,
        golden_ids=golden_ids,
        golden_preds=golden_preds,
    )


# ----------------------------------------------------------------------
# GNN-baseline checkpoints (topology replayed from the dataset)
# ----------------------------------------------------------------------
def _baseline_init_kwargs(est) -> Dict[str, Any]:
    """Constructor kwargs beyond ``config``, read back off the instance.

    Every :class:`~repro.baselines.gnn_common.SupervisedGNNBaseline`
    subclass stores its extra ``__init__`` arguments under the same
    attribute name (``layers``, ``heads``, ``max_pairs``, ...), so the
    signature tells us exactly what to record.
    """
    kwargs = {}
    for name in inspect.signature(type(est).__init__).parameters:
        if name in ("self", "config"):
            continue
        if hasattr(est, name):
            kwargs[name] = getattr(est, name)
    return kwargs


def save_gnn_baseline(est, path: Union[str, Path]) -> Path:
    """Checkpoint a fitted supervised GNN baseline (R-GCN, GAT, HAN, ...).

    The network weights and scaler statistics are serialized; the batch
    and any constructor-baked topology are *replayed* deterministically
    from the dataset at :func:`load_gnn_baseline` time (same world, same
    split, same seed => same geometry).
    """
    if est.network is None:
        raise RuntimeError("cannot checkpoint an unfitted baseline; "
                           "call fit() first")
    meta = {
        "kind": "gnn_baseline",
        "baseline_class": type(est).__name__,
        "config": asdict(est.config),
        "init_kwargs": _baseline_init_kwargs(est),
        "scaler_mean": est.scaler.mean,
        "scaler_std": est.scaler.std,
    }
    return save_checkpoint(path, meta, est.network.state_dict())


def load_gnn_baseline(path: Union[str, Path], dataset):
    """Restore a baseline estimator against ``dataset``.

    ``dataset`` must be the dataset the estimator was fitted on (same
    generator seeds); predictions then match the fitted estimator's
    bitwise.
    """
    from .. import baselines
    from ..baselines.gnn_common import GNNTrainConfig

    ckpt = load_checkpoint(path)
    if ckpt.kind != "gnn_baseline":
        raise ValueError(
            f"expected a 'gnn_baseline' checkpoint, got kind={ckpt.kind!r}"
        )
    cls = getattr(baselines, ckpt.meta["baseline_class"], None)
    if cls is None:
        raise ValueError(
            f"unknown baseline class {ckpt.meta['baseline_class']!r}"
        )
    est = cls(GNNTrainConfig(**ckpt.meta["config"]),
              **ckpt.meta["init_kwargs"])
    est.scaler.mean = float(ckpt.meta["scaler_mean"])
    est.scaler.std = float(ckpt.meta["scaler_std"])
    if hasattr(est, "_dataset"):  # HAN / HetGNN / MAGNN topology source
        est._dataset = dataset
    _base, eval_batch, _stop = est.build_batches(dataset)
    est.network = est.build_network(eval_batch)
    est.network.load_state_dict(ckpt.state)
    est._batch = eval_batch
    return est
