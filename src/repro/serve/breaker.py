"""Circuit breaker for the degraded-mode serving chain (DESIGN §13).

Classic three-state machine guarding the full-model forward path:

``closed``
    requests flow to the model; ``failure_threshold`` *consecutive*
    failures (engine errors or deadline violations) trip the breaker;
``open``
    the model path is skipped entirely — callers fall back to the
    prediction cache or the prior head — until ``recovery_seconds``
    have elapsed;
``half_open``
    exactly **one** probe request is allowed through (a single probe
    token, so a thundering herd cannot re-stampede a struggling
    engine); success closes the breaker, failure re-opens it and
    restarts the recovery clock.

All transitions happen under one lock, so a burst of concurrent
failures trips the breaker exactly once (pinned by the 8-thread tests
in ``tests/test_serve_degraded.py``).  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker with one probe token."""

    def __init__(self, failure_threshold: int = 3,
                 recovery_seconds: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.recovery_seconds = float(recovery_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED  # guarded-by: _lock
        self._consecutive_failures = 0  # guarded-by: _lock
        self._opened_at: float = 0.0  # guarded-by: _lock
        self._probe_inflight = False  # guarded-by: _lock
        # Monotonic counters for /metrics (exact-count pinned in tests).
        self._trips = 0
        self._successes = 0
        self._failures = 0
        self._probes = 0
        self._recoveries = 0
        self._rejected = 0
        self._last_failure_reason = ""

    # ------------------------------------------------------------------
    def _effective_state_locked(self) -> str:
        """Promote ``open`` to ``half_open`` once the recovery time passed."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.recovery_seconds):
            self._state = HALF_OPEN
            self._probe_inflight = False
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state_locked()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May this request take the full-model path?

        ``closed`` → yes; ``open`` → no; ``half_open`` → yes for exactly
        one caller at a time (the probe).
        """
        with self._lock:
            state = self._effective_state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                self._probes += 1
                return True
            self._rejected += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                # Probe came back healthy: close and forget the episode.
                self._state = CLOSED
                self._probe_inflight = False
                self._recoveries += 1

    def record_failure(self, reason: str = "error") -> None:
        with self._lock:
            self._failures += 1
            self._last_failure_reason = reason
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, clock restarts.
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self._trips += 1
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._state = OPEN
                self._opened_at = self._clock()
                self._trips += 1

    def reset(self) -> None:
        """Force-close (used after a successful hot reload)."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Counter snapshot for ``/metrics`` and ``/healthz``."""
        with self._lock:
            return {
                "state": self._effective_state_locked(),
                "failure_threshold": self.failure_threshold,
                "recovery_seconds": self.recovery_seconds,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "successes": self._successes,
                "failures": self._failures,
                "probes": self._probes,
                "recoveries": self._recoveries,
                "rejected": self._rejected,
                "last_failure_reason": self._last_failure_reason,
            }
