"""A small thread-safe LRU cache with hit/miss accounting.

Backs the :class:`~repro.serve.engine.InferenceEngine` per-paper result
cache; the hit rate is exported through the service ``/metrics`` endpoint.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``capacity <= 0`` disables caching entirely (every lookup misses),
    which keeps the call sites branch-free.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Tuple[bool, Optional[Any]]:
        """Return ``(found, value)``; refreshes recency on a hit."""
        with self._lock:
            if self.capacity <= 0 or key not in self._data:
                self.misses += 1
                return False, None
            self._data.move_to_end(key)
            self.hits += 1
            return True, self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if self.capacity <= 0:
                return
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Consistent point-in-time view (single lock acquisition)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }
