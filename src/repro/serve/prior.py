"""Cheap prior head: the last rung of the degradation chain (DESIGN §13).

When the full CATE-HGN forward is unavailable (circuit breaker open) and
the prediction cache misses, the service still answers with a *prior*
score — a tiny closed-form ridge regression over the three structural
signals the paper's RankClus narrative names as the drivers of impact:

- **author prestige**: mean training-label of each author's labeled
  papers, averaged over a paper's authors;
- **venue authority**: mean training-label of each venue's labeled
  papers;
- **reference authority**: ``log1p`` of the paper's citation in-degree
  in the training graph.

The head is fitted **at checkpoint save time** from the training graph
and labels, and its per-paper scores are baked into the checkpoint
(``extra/prior_scores``), so serving a prior answer costs one array
gather — no model, no message passing, no tape.  Old checkpoints
without the extras get a deterministic refit from their graph sidecar
at restore time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..hetnet.schema import AUTHOR, PAPER, VENUE

FEATURE_NAMES = ("author_prestige", "venue_authority", "log1p_in_cites",
                 "bias")

_RIDGE_LAMBDA = 1e-3


def _group_mean(group_ids: np.ndarray, values: np.ndarray, num_groups: int,
                fallback: float) -> np.ndarray:
    """Mean of ``values`` per group id; ``fallback`` for empty groups."""
    sums = np.bincount(group_ids, weights=values, minlength=num_groups)
    counts = np.bincount(group_ids, minlength=num_groups)
    means = np.full(num_groups, fallback, dtype=np.float64)
    nonzero = counts > 0
    means[nonzero] = sums[nonzero] / counts[nonzero]
    return means


@dataclass
class PriorHead:
    """Per-paper prior scores + the ridge weights that produced them."""

    scores: np.ndarray   # (num_papers,) — denormalized, clipped >= 0
    weights: np.ndarray  # (4,) ridge solution over FEATURE_NAMES

    @property
    def num_papers(self) -> int:
        return len(self.scores)

    def predict(self, paper_ids: Sequence[int]) -> np.ndarray:
        ids = np.asarray(paper_ids, dtype=np.intp).reshape(-1)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.num_papers):
            raise IndexError(
                f"paper id out of range [0, {self.num_papers})"
            )
        return self.scores[ids]

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, graph, labeled_ids: np.ndarray,
            labels: np.ndarray) -> "PriorHead":
        """Closed-form ridge fit from the training graph + raw labels.

        Deterministic: same graph + labels always give the same head, so
        save-time baking and restore-time refitting agree bitwise.
        """
        labeled_ids = np.asarray(labeled_ids, dtype=np.intp)
        labels = np.asarray(labels, dtype=np.float64)
        num_papers = graph.num_nodes[PAPER]
        global_mean = float(labels.mean()) if len(labels) else 0.0

        paper_label = np.full(num_papers, global_mean, dtype=np.float64)
        paper_label[labeled_ids] = labels

        # Author prestige: mean label of each author's labeled papers,
        # spread back to papers as the mean over their authors.
        author_score = np.full(num_papers, global_mean, dtype=np.float64)
        wb = graph.edges.get((PAPER, "written_by", AUTHOR))
        if wb is not None and wb.num_edges:
            labeled_mask = np.zeros(num_papers, dtype=bool)
            labeled_mask[labeled_ids] = True
            on_labeled = labeled_mask[wb.src]
            per_author = _group_mean(
                wb.dst[on_labeled], paper_label[wb.src[on_labeled]],
                graph.num_nodes[AUTHOR], global_mean,
            )
            author_score = _group_mean(
                wb.src, per_author[wb.dst], num_papers, global_mean
            )

        # Venue authority: mean label of each venue's labeled papers.
        venue_score = np.full(num_papers, global_mean, dtype=np.float64)
        pv = graph.edges.get((PAPER, "published_in", VENUE))
        if pv is not None and pv.num_edges:
            labeled_mask = np.zeros(num_papers, dtype=bool)
            labeled_mask[labeled_ids] = True
            on_labeled = labeled_mask[pv.src]
            per_venue = _group_mean(
                pv.dst[on_labeled], paper_label[pv.src[on_labeled]],
                graph.num_nodes[VENUE], global_mean,
            )
            venue_score = _group_mean(
                pv.src, per_venue[pv.dst], num_papers, global_mean
            )

        # Reference authority: in-citation count (cites src = cited).
        in_cites = np.zeros(num_papers, dtype=np.float64)
        cites = graph.edges.get((PAPER, "cites", PAPER))
        if cites is not None and cites.num_edges:
            in_cites = np.bincount(cites.src,
                                   minlength=num_papers).astype(np.float64)

        features = np.stack([author_score, venue_score, np.log1p(in_cites),
                             np.ones(num_papers)], axis=1)
        x = features[labeled_ids]
        gram = x.T @ x + _RIDGE_LAMBDA * np.eye(x.shape[1])
        weights = np.linalg.solve(gram, x.T @ labels)
        scores = np.maximum(features @ weights, 0.0)
        return cls(scores=scores, weights=weights)

    # ------------------------------------------------------------------
    # Checkpoint (de)serialization
    # ------------------------------------------------------------------
    def to_extras(self) -> Dict[str, np.ndarray]:
        return {"prior_scores": self.scores, "prior_weights": self.weights}

    @classmethod
    def from_extras(cls, extras: Dict[str, np.ndarray]
                    ) -> Optional["PriorHead"]:
        if "prior_scores" not in extras:
            return None
        return cls(
            scores=np.asarray(extras["prior_scores"], dtype=np.float64),
            weights=np.asarray(extras.get(
                "prior_weights", np.zeros(len(FEATURE_NAMES))
            ), dtype=np.float64),
        )
