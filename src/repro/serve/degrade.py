"""Graceful-degradation runtime: model → cache → prior head (DESIGN §13).

:class:`ServingRuntime` wraps an :class:`~repro.serve.engine.InferenceEngine`
behind a :class:`~repro.serve.breaker.CircuitBreaker` and serves every
prediction from the best *available* rung of a fallback chain:

1. **model** — the full CATE-HGN forward (engine), when the breaker
   allows it and the call neither fails nor blows its deadline;
2. **cache** — the engine's LRU prediction cache, when *every* requested
   id is already cached (a partial hit would silently mix sources);
3. **prior** — the checkpoint-baked prior head
   (:class:`~repro.serve.prior.PriorHead`), which always answers.

Every response is tagged ``source ∈ {model, cache, prior}`` and
``degraded`` so clients can tell a full answer from a fallback.  Client
errors (bad ids/types) are *not* failures: they propagate as 400s and
never move the breaker.

The runtime also owns **hot checkpoint reload** with a shadow-validation
gate: a candidate engine is loaded off to the side, its graph passes a
strict contract check, and its predictions must reproduce the golden
batch baked into the checkpoint at save time — only then is the engine
swapped atomically (and the breaker reset).  A candidate failing any
gate is discarded and the old engine keeps serving.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from .breaker import CircuitBreaker

#: Exceptions that mean "the request is bad", not "the engine is sick".
#: These surface as HTTP 400s and never count against the breaker.
CLIENT_ERRORS = (IndexError, KeyError, TypeError, ValueError)

#: Absolute tolerance for golden-batch prediction parity on reload.
#: Engine forwards are bitwise-reproducible (DESIGN §11), so this only
#: leaves room for a different-but-equivalent BLAS build.
GOLDEN_ATOL = 1e-9


class ReloadRejected(RuntimeError):
    """A candidate checkpoint failed the shadow-validation gate."""

    def __init__(self, reason: str, report: Optional[dict] = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.report = report


class ServingRuntime:
    """Circuit-breaker-guarded prediction front-end with hot reload."""

    def __init__(self, engine, breaker: Optional[CircuitBreaker] = None,
                 deadline_seconds: Optional[float] = None) -> None:
        self._engine = engine  # not-guarded: atomic swap; readers snapshot once
        self.breaker = breaker or CircuitBreaker()
        #: Model calls slower than this count as breaker failures (the
        #: answer is still returned — it is correct, just late).  ``None``
        #: disables deadline accounting.
        self.deadline_seconds = deadline_seconds
        self._swap_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._served: Dict[str, int] = {"model": 0, "cache": 0, "prior": 0,
                                        "unserved": 0}
        self._reloads = 0  # guarded-by: _counter_lock
        self._reloads_rejected = 0  # guarded-by: _counter_lock

    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The live engine (atomic attribute read; swapped by reload)."""
        return self._engine

    def _count(self, source: str) -> None:
        with self._counter_lock:
            self._served[source] = self._served.get(source, 0) + 1

    # ------------------------------------------------------------------
    def predict(self, paper_ids: Sequence[int]) -> Dict[str, Any]:
        """Serve a prediction from the best available source.

        Returns ``{"predictions": ndarray, "source": ..., "degraded": bool}``.
        Raises only :data:`CLIENT_ERRORS` for malformed requests — or the
        underlying engine error when the breaker is open/tripped and no
        fallback source exists (plain engines without a prior head).
        """
        engine = self._engine
        ids = np.asarray(paper_ids, dtype=np.intp).reshape(-1)
        num_papers = getattr(engine, "num_papers", None)
        if (num_papers is not None and len(ids)
                and (ids.min() < 0 or ids.max() >= num_papers)):
            # Client-side validation happens *before* the breaker so bad
            # requests get their 400 even while the model path is down.
            raise IndexError(f"paper id out of range [0, {num_papers})")

        last_error: Optional[BaseException] = None
        if self.breaker.allow():
            start = time.perf_counter()
            try:
                values = engine.predict(ids)
            except CLIENT_ERRORS:
                raise  # the request's fault — not an engine failure
            except Exception as exc:  # noqa: BLE001 — any infra failure trips
                self.breaker.record_failure(type(exc).__name__)
                last_error = exc
            else:
                elapsed = time.perf_counter() - start
                if (self.deadline_seconds is not None
                        and elapsed > self.deadline_seconds):
                    self.breaker.record_failure("deadline")
                else:
                    self.breaker.record_success()
                self._count("model")
                return {"predictions": np.asarray(values, dtype=np.float64),
                        "source": "model", "degraded": False}

        cached = self._full_cache_hit(engine, ids)
        if cached is not None:
            self._count("cache")
            return {"predictions": cached, "source": "cache",
                    "degraded": True}

        prior = getattr(engine, "prior", None)
        if prior is not None:
            self._count("prior")
            return {"predictions": prior.predict(ids), "source": "prior",
                    "degraded": True}

        self._count("unserved")
        if last_error is not None:
            raise last_error
        raise RuntimeError(
            "model path unavailable (circuit breaker open) and the engine "
            "has no cache hit or prior head to fall back on"
        )

    @staticmethod
    def _full_cache_hit(engine, ids: np.ndarray) -> Optional[np.ndarray]:
        """All-or-nothing read of the engine's prediction cache."""
        cache = getattr(engine, "cache", None)
        if cache is None:
            return None
        out = np.empty(len(ids), dtype=np.float64)
        for i, pid in enumerate(ids):
            found, value = cache.get(int(pid))
            if not found:
                return None
            out[i] = value
        return out

    # ------------------------------------------------------------------
    # Hot reload with shadow validation
    # ------------------------------------------------------------------
    def reload(self, path: Union[str, Path]) -> Dict[str, Any]:
        """Swap in a new checkpoint — only if it passes shadow validation.

        Gate 1: the candidate loads at all (checksum, format version).
        Gate 2: its graph passes a strict contract check
        (:func:`repro.contracts.check_graph`, zero error findings).
        Gate 3: its predictions on the checkpoint's golden batch match
        the values recorded at save time within :data:`GOLDEN_ATOL`.

        Any gate failing raises :class:`ReloadRejected` and the old
        engine keeps serving untouched; on success the swap is atomic
        and the breaker resets.
        """
        from ..contracts import check_graph
        from .engine import InferenceEngine

        old = self._engine
        try:
            candidate = InferenceEngine.from_checkpoint(
                path,
                cache_size=getattr(getattr(old, "cache", None),
                                   "capacity", 4096),
                micro_batch=getattr(old, "micro_batch", 256),
            )
        except Exception as exc:  # noqa: BLE001 — any load failure rejects
            self._reject(f"checkpoint load failed: {exc}")

        report = check_graph(candidate.restored.graph)
        if report.has_errors:
            self._reject(
                f"contract check failed: {report.summary()}",
                report=report.to_dict(),
            )

        golden_ids = getattr(candidate.restored, "golden_ids", None)
        golden_preds = getattr(candidate.restored, "golden_preds", None)
        if golden_ids is not None and len(golden_ids):
            got = candidate.predict(np.asarray(golden_ids, dtype=np.intp))
            worst = float(np.max(np.abs(got - golden_preds)))
            if not np.isfinite(worst) or worst > GOLDEN_ATOL:
                self._reject(
                    f"golden-batch parity failed: max |Δ| = {worst:.3e} "
                    f"over {len(golden_ids)} papers (tolerance "
                    f"{GOLDEN_ATOL:.0e})"
                )

        with self._swap_lock:
            self._engine = candidate
            self.breaker.reset()
        with self._counter_lock:
            self._reloads += 1
        return {
            "reloaded": True,
            "num_papers": candidate.num_papers,
            "golden_checked": int(0 if golden_ids is None
                                  else len(golden_ids)),
            "contract": report.summary(),
        }

    def _reject(self, reason: str, report: Optional[dict] = None) -> None:
        with self._counter_lock:
            self._reloads_rejected += 1
        raise ReloadRejected(reason, report=report)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Fallback/breaker/reload counters for ``/metrics``."""
        with self._counter_lock:
            served = dict(self._served)
            reloads = self._reloads
            rejected = self._reloads_rejected
        return {
            "breaker": self.breaker.snapshot(),
            "served": served,
            "reloads": reloads,
            "reloads_rejected": rejected,
        }
