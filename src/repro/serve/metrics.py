"""Request metrics for the prediction service.

Counts, error counts, and latency quantiles (p50/p99) per endpoint, kept
in a bounded reservoir so a long-lived server does not grow without
limit.  Thread-safe: the service handler runs under
``ThreadingHTTPServer``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict


def _quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[idx])


class ServiceMetrics:
    """Per-endpoint request accounting."""

    def __init__(self, window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._window = int(window)
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._latency: Dict[str, Deque[float]] = {}

    def observe(self, endpoint: str, seconds: float,
                error: bool = False) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
            bucket = self._latency.setdefault(
                endpoint, deque(maxlen=self._window)
            )
            bucket.append(float(seconds))

    def snapshot(self) -> dict:
        """JSON-ready metrics: counts + latency p50/p99 in milliseconds."""
        with self._lock:
            endpoints = {}
            for name, count in self._requests.items():
                lat = sorted(self._latency.get(name, ()))
                endpoints[name] = {
                    "requests": count,
                    "errors": self._errors.get(name, 0),
                    "latency_ms_p50": _quantile(lat, 0.50) * 1e3,
                    "latency_ms_p99": _quantile(lat, 0.99) * 1e3,
                }
            return {
                "total_requests": sum(self._requests.values()),
                "total_errors": sum(self._errors.values()),
                "endpoints": endpoints,
            }
