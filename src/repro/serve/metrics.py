"""Request metrics for the prediction service.

Counts, error counts, and latency quantiles (p50/p99) per endpoint.
Latencies are kept in a bounded **reservoir sample**
(:class:`LatencyReservoir`, Vitter's Algorithm R): O(1) insertion with
no per-request allocation, a hard memory bound however long the server
lives, and — unlike the sliding window it replaced — quantiles that
stay representative of the *whole* request history instead of only the
most recent burst.  Thread-safe: the service handler runs under
``ThreadingHTTPServer`` (the asyncio runtime shares the class).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List


def _quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[idx])


class LatencyReservoir:
    """Fixed-size uniform sample of a stream of latencies (Algorithm R).

    The first ``capacity`` observations are kept verbatim; afterwards
    each new observation replaces a random slot with probability
    ``capacity / count``, which keeps every observation equally likely
    to be in the sample.  The RNG is seeded so two servers fed the same
    stream report the same quantiles.  NOT thread-safe on its own — the
    owner serializes access (``ServiceMetrics`` under its lock, the
    batcher on the event-loop thread).
    """

    __slots__ = ("capacity", "count", "values", "_rng")

    def __init__(self, capacity: int = 2048, seed: int = 0) -> None:
        self.capacity = max(1, int(capacity))
        self.count = 0
        self.values: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.count += 1
        if len(self.values) < self.capacity:
            self.values.append(float(value))
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self.values[slot] = float(value)

    def quantile(self, q: float) -> float:
        return _quantile(sorted(self.values), q)


class ServiceMetrics:
    """Per-endpoint request accounting.

    Beyond request/error counts and latency quantiles, the resilience
    counters record the server's failure-handling behaviour: ``shed``
    (503s from the in-flight limiter / admission queue), ``disconnects``
    (clients that hung up mid-request/response), and
    ``deadline_timeouts`` (requests that finished past their deadline
    and were answered 504).
    """

    def __init__(self, window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._window = int(window)
        self._requests: Dict[str, int] = {}  # guarded-by: _lock
        self._errors: Dict[str, int] = {}  # guarded-by: _lock
        self._latency: Dict[str, LatencyReservoir] = {}  # guarded-by: _lock
        self._shed: Dict[str, int] = {}  # guarded-by: _lock
        self._disconnects: Dict[str, int] = {}  # guarded-by: _lock
        self._deadline: Dict[str, int] = {}  # guarded-by: _lock

    def observe(self, endpoint: str, seconds: float,
                error: bool = False) -> None:
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            if error:
                self._errors[endpoint] = self._errors.get(endpoint, 0) + 1
            reservoir = self._latency.get(endpoint)
            if reservoir is None:
                # Endpoint-name-derived seed: deterministic, and distinct
                # endpoints do not share a replacement sequence.
                reservoir = LatencyReservoir(
                    self._window, seed=len(self._latency))
                self._latency[endpoint] = reservoir
            reservoir.add(float(seconds))

    def record_shed(self, endpoint: str) -> None:
        """Count a request shed by the in-flight limiter (503)."""
        with self._lock:
            self._shed[endpoint] = self._shed.get(endpoint, 0) + 1

    def record_disconnect(self, endpoint: str) -> None:
        """Count a client that vanished mid-request or mid-response."""
        with self._lock:
            self._disconnects[endpoint] = (
                self._disconnects.get(endpoint, 0) + 1
            )

    def record_deadline(self, endpoint: str) -> None:
        """Count a request answered 504 after missing its deadline."""
        with self._lock:
            self._deadline[endpoint] = self._deadline.get(endpoint, 0) + 1

    def snapshot(self) -> dict:
        """JSON-ready metrics: counts + latency p50/p99 in milliseconds."""
        with self._lock:
            endpoints = {}
            names = (set(self._requests) | set(self._shed)
                     | set(self._disconnects) | set(self._deadline))
            for name in sorted(names):
                reservoir = self._latency.get(name)
                lat = sorted(reservoir.values) if reservoir else []
                endpoints[name] = {
                    "requests": self._requests.get(name, 0),
                    "errors": self._errors.get(name, 0),
                    "shed": self._shed.get(name, 0),
                    "disconnects": self._disconnects.get(name, 0),
                    "deadline_timeouts": self._deadline.get(name, 0),
                    "latency_ms_p50": _quantile(lat, 0.50) * 1e3,
                    "latency_ms_p99": _quantile(lat, 0.99) * 1e3,
                }
            return {
                "total_requests": sum(self._requests.values()),
                "total_errors": sum(self._errors.values()),
                "total_shed": sum(self._shed.values()),
                "total_disconnects": sum(self._disconnects.values()),
                "total_deadline_timeouts": sum(self._deadline.values()),
                "endpoints": endpoints,
            }
