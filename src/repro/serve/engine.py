"""Tape-free inference engine over a frozen checkpoint (DESIGN §11).

:class:`InferenceEngine` loads a CATE-HGN checkpoint, runs **one**
tape-free forward pass over the graph snapshot (reusing the shared
:class:`~repro.hetnet.structure.BatchStructure` cache), and then serves

- single-paper / bulk citation predictions (micro-batched head
  application over the precomputed embeddings, LRU result cache);
- top-k impact rankings per node type, optionally within one research
  domain (the Table-III analysis, productionized);
- cold-start scoring of unseen papers straight from their title text
  through the checkpointed word-embedding table (the TE text path).

Serving never touches the autodiff tape: every forward here runs under
:func:`repro.tensor.inference_mode`, so no backward closures or tape
nodes are allocated and the numbers are bitwise-identical to a grad-mode
forward.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..hetnet import PAPER
from ..core.hgn import GraphBatch
from ..resilience import faults
from ..tensor import Tensor, gather, inference_mode
from ..text import tokenize
from .cache import LRUCache
from .checkpoint import RestoredCATEHGN, restore_catehgn


class InferenceEngine:
    """Frozen-snapshot prediction service over a restored CATE-HGN."""

    def __init__(self, restored: RestoredCATEHGN, cache_size: int = 4096,
                 micro_batch: int = 256) -> None:
        self.restored = restored
        self.model = restored.model
        self.batch = restored.batch
        self.micro_batch = max(1, int(micro_batch))
        self.cache = LRUCache(cache_size)
        #: Checkpoint-baked prior head — the last rung of the serving
        #: fallback chain (DESIGN §13); ``None`` only for hand-built
        #: restores that carry no graph to fit one from.
        self.prior = restored.prior
        self._lock = threading.Lock()
        self._L = restored.config.num_layers
        # Freeze the snapshot: one tape-free forward precomputes every
        # node embedding; the batch's shared structure cache makes this
        # the only structure build of the engine's lifetime.
        start = time.perf_counter()
        with inference_mode():
            self._state = self.model.forward_state(self.batch)
        self.freeze_seconds = time.perf_counter() - start
        self._embeddings: Dict[str, Tensor] = self._state.masked[self._L]
        self._impact_cache: Dict[tuple, np.ndarray] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path: Union[str, Path], cache_size: int = 4096,
                        micro_batch: int = 256,
                        mmap_mode: Optional[str] = None) -> "InferenceEngine":
        return cls(restore_catehgn(path, mmap_mode=mmap_mode),
                   cache_size=cache_size, micro_batch=micro_batch)

    # ------------------------------------------------------------------
    @property
    def num_papers(self) -> int:
        return self.batch.num_nodes[PAPER]

    def _denormalize(self, raw: np.ndarray) -> np.ndarray:
        r = self.restored
        return np.maximum(raw * r.label_std + r.label_mean, 0.0)

    def _head(self, embeddings: Tensor) -> np.ndarray:
        with inference_mode():
            return self.model.hgn.regress(self._L, embeddings).data

    # ------------------------------------------------------------------
    def predict(self, paper_ids: Sequence[int]) -> np.ndarray:
        """Citations/year for ``paper_ids`` (bitwise == the estimator's).

        Cached per paper id; cache misses are gathered and pushed through
        the regression head in ``micro_batch``-sized chunks over the
        precomputed embeddings — no message passing at query time.
        """
        ids = np.asarray(paper_ids, dtype=np.intp).reshape(-1)
        if len(ids) and (ids.min() < 0 or ids.max() >= self.num_papers):
            raise IndexError(
                f"paper id out of range [0, {self.num_papers})"
            )
        # Fault site for the degrade drill (after the client-side range
        # check: an injected failure simulates *infrastructure* breakage,
        # never a bad request).  No-op unless an injector is armed.
        faults.fire("engine.predict", ids=ids)
        out = np.empty(len(ids), dtype=np.float64)
        miss_pos: List[int] = []
        for i, pid in enumerate(ids):
            found, value = self.cache.get(int(pid))
            if found:
                out[i] = value
            else:
                miss_pos.append(i)
        if miss_pos:
            with self._lock:
                miss_ids = ids[miss_pos]
                h_paper = self._embeddings[PAPER]
                for lo in range(0, len(miss_ids), self.micro_batch):
                    chunk = miss_ids[lo:lo + self.micro_batch]
                    with inference_mode():
                        rows = gather(h_paper, chunk)
                    preds = self._denormalize(self._head(rows))
                    for offset, (pid, value) in enumerate(zip(chunk, preds)):
                        out[miss_pos[lo + offset]] = value
                        self.cache.put(int(pid), float(value))
        return out

    def predict_all(self) -> np.ndarray:
        """Full prediction vector via the estimator's exact head call."""
        return self._denormalize(self._head(self._embeddings[PAPER]))

    # ------------------------------------------------------------------
    def impacts(self, node_type: str,
                cluster: Optional[int] = None) -> np.ndarray:
        """Impact score per node (Table III), from frozen embeddings."""
        if node_type not in self.batch.node_types:
            raise KeyError(f"unknown node type {node_type!r}")
        key = (node_type, cluster)
        # Check-compute-store under the engine lock: concurrent /rank
        # requests for the same key must not interleave dict mutation
        # (ThreadingHTTPServer runs handlers on separate threads).
        with self._lock:
            if key not in self._impact_cache:
                if cluster is not None:
                    if self.model.ca is None:
                        raise ValueError(
                            "cluster-scoped ranking requires a checkpoint "
                            "trained with use_ca=True"
                        )
                    with inference_mode():
                        h = self.model.ca.mask_with_cluster(
                            self._state.output.layers[self._L][node_type],
                            int(cluster), self._L,
                        )
                else:
                    h = self._embeddings[node_type]
                self._impact_cache[key] = self._head(h)
            return self._impact_cache[key]

    def rank(self, node_type: str, k: int = 10,
             cluster: Optional[int] = None) -> List[dict]:
        """Top-``k`` nodes of ``node_type`` by predicted impact."""
        raw = self.impacts(node_type, cluster)
        scores = raw * self.restored.label_std + self.restored.label_mean
        k = max(0, min(int(k), len(scores)))
        top = np.argsort(scores, kind="stable")[::-1][:k]
        names = self.restored.graph.node_names.get(node_type)
        return [
            {
                "id": int(i),
                "name": (names[int(i)] if names is not None else str(int(i))),
                "score": float(scores[int(i)]),
            }
            for i in top
        ]

    # ------------------------------------------------------------------
    def score_title(self, title: Union[str, Sequence[str]]) -> float:
        """Cold-start: predicted citations/year for an *unseen* paper.

        The title is embedded with the checkpointed word-embedding table
        (the same featurization the training graph used) and pushed
        through the full model as a one-paper graph — self-loop-only
        propagation, the exact code path of
        :meth:`~repro.core.model.CATEHGNModel.predict_papers`.
        """
        embeddings = self.restored.embeddings
        if embeddings is None:
            raise ValueError(
                "checkpoint carries no text embeddings; cold-start "
                "scoring is unavailable"
            )
        tokens = tokenize(title) if isinstance(title, str) else list(title)
        row = embeddings.embed_tokens(tokens).reshape(1, -1)
        batch = self._single_paper_batch(row)
        with inference_mode():
            raw = self.model.predict_papers(batch)
        return float(self._denormalize(raw)[0])

    def _single_paper_batch(self, paper_row: np.ndarray) -> GraphBatch:
        """A 1-paper, 0-edge batch with the snapshot's feature geometry."""
        graph = self.restored.graph
        features: Dict[str, np.ndarray] = {}
        num_nodes: Dict[str, int] = {}
        for t in self.batch.node_types:
            if t == PAPER:
                width = graph.node_features[PAPER].shape[1]
                if paper_row.shape[1] != width:
                    raise ValueError(
                        f"title embedding dim {paper_row.shape[1]} != "
                        f"paper feature dim {width}"
                    )
                features[t] = paper_row.astype(np.float64)
                num_nodes[t] = 1
            else:
                features[t] = np.zeros(
                    (0, graph.node_features[t].shape[1])
                )
                num_nodes[t] = 0
        empty_i = np.array([], dtype=np.intp)
        empty_f = np.array([], dtype=np.float64)
        edges = {key: (empty_i, empty_i, empty_f, empty_f)
                 for key in self.batch.edges}
        batch = GraphBatch(node_types=list(self.batch.node_types),
                           features=features, edges=edges,
                           num_nodes=num_nodes, labeled_ids=empty_i,
                           labels=empty_f)
        if self.restored.config.use_label_inputs:
            # No known labels for an unseen paper: the two label-input
            # channels are appended as zeros (value 0, is-known 0).
            batch = batch.with_label_inputs(empty_i, empty_f,
                                            empty_i, empty_f)
        return batch

    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Snapshot description for ``/healthz``."""
        g = self.restored.graph
        return {
            "num_papers": self.num_papers,
            "num_nodes": {t: int(n) for t, n in g.num_nodes.items()},
            "num_edges": int(g.total_edges),
            "dim": self.restored.config.dim,
            "num_layers": self._L,
            "use_ca": self.restored.config.use_ca,
            "use_te": self.restored.config.use_te,
            "cold_start": self.restored.embeddings is not None,
            "prior_head": self.prior is not None,
            "freeze_seconds": self.freeze_seconds,
        }
