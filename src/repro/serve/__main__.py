"""``python -m repro.serve`` / ``repro-serve``: boot the prediction service.

Usage::

    repro-serve model.npz --host 127.0.0.1 --port 8099

The checkpoint must have been written by
:func:`repro.serve.save_catehgn` (or ``CATEHGN.save_checkpoint``); its
``.graph`` sidecar is expected next to it.
"""

from __future__ import annotations

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve citation predictions from a CATE-HGN checkpoint.",
    )
    parser.add_argument("checkpoint",
                        help="path to a .npz checkpoint written by "
                             "CATEHGN.save_checkpoint / save_catehgn")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8099)
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="LRU result-cache capacity (0 disables)")
    parser.add_argument("--micro-batch", type=int, default=256,
                        help="bulk-prediction micro-batch size")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logs")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Imports after arg parsing so --help stays instant.
    from .engine import InferenceEngine
    from .service import serve_forever

    engine = InferenceEngine.from_checkpoint(
        args.checkpoint, cache_size=args.cache_size,
        micro_batch=args.micro_batch,
    )
    serve_forever(engine, host=args.host, port=args.port,
                  verbose=not args.quiet)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
