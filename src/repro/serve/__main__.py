"""``python -m repro.serve`` / ``repro-serve``: boot the prediction service.

Usage::

    repro-serve model.npz --host 127.0.0.1 --port 8099

The checkpoint must have been written by
:func:`repro.serve.save_catehgn` (or ``CATEHGN.save_checkpoint``); its
``.graph`` sidecar is expected next to it.
"""

from __future__ import annotations

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve citation predictions from a CATE-HGN checkpoint.",
    )
    parser.add_argument("checkpoint",
                        help="path to a .npz checkpoint written by "
                             "CATEHGN.save_checkpoint / save_catehgn")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8099)
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="LRU result-cache capacity (0 disables)")
    parser.add_argument("--micro-batch", type=int, default=256,
                        help="bulk-prediction micro-batch size")
    parser.add_argument("--mmap", action="store_true",
                        help="memory-map the checkpoint and graph arrays "
                             "(read-only) so co-located replicas share one "
                             "copy via the OS page cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-request access logs")
    aio = parser.add_argument_group("asyncio runtime (DESIGN §16)")
    aio.add_argument("--aio", action="store_true",
                     help="serve on the asyncio runtime with cross-request "
                          "dynamic batching instead of the threaded server")
    aio.add_argument("--max-batch-size", type=int, default=256,
                     help="flush a batch once its coalesced cost (paper ids "
                          "+ ranks) reaches this many units")
    aio.add_argument("--max-wait-ms", type=float, default=2.0,
                     help="flush a partial batch this many ms after its "
                          "first request arrived")
    aio.add_argument("--queue-depth", type=int, default=1024,
                     help="admission queue bound; excess requests are shed "
                          "with 503 + Retry-After")
    limits = parser.add_argument_group("limits (DESIGN §12)")
    limits.add_argument("--max-inflight", type=int, default=64,
                        help="max concurrently-executing requests; excess "
                             "is shed with 503 + Retry-After")
    limits.add_argument("--max-body-bytes", type=int, default=1 << 20,
                        help="reject larger request bodies with 413")
    limits.add_argument("--read-timeout", type=float, default=5.0,
                        help="socket read timeout in seconds (stalled or "
                             "truncating clients get 400)")
    limits.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline in seconds; late "
                             "responses become 504 (default: off)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Imports after arg parsing so --help stays instant.
    from .engine import InferenceEngine
    from .service import ServiceLimits, serve_forever

    engine = InferenceEngine.from_checkpoint(
        args.checkpoint, cache_size=args.cache_size,
        micro_batch=args.micro_batch,
        mmap_mode="r" if args.mmap else None,
    )
    limits = ServiceLimits(max_body_bytes=args.max_body_bytes,
                           max_inflight=args.max_inflight,
                           read_timeout=args.read_timeout,
                           deadline_seconds=args.deadline)
    if args.aio:
        from .aio import BatchSettings, serve_forever_aio

        settings = BatchSettings(max_batch_size=args.max_batch_size,
                                 max_wait_ms=args.max_wait_ms,
                                 max_queue_depth=args.queue_depth)
        serve_forever_aio(engine, host=args.host, port=args.port,
                          verbose=not args.quiet, limits=limits,
                          settings=settings)
        return 0
    serve_forever(engine, host=args.host, port=args.port,
                  verbose=not args.quiet, limits=limits)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
