"""repro.serve — checkpointing + tape-free inference + prediction service.

The deployment story of the reproduction (DESIGN §11): train an estimator,
:func:`save_catehgn` it to a versioned ``.npz`` checkpoint, freeze it into
an :class:`InferenceEngine` (one tape-free forward per graph snapshot),
and expose predictions over stdlib HTTP via ``python -m repro.serve``.
"""

from .aio import (
    AdmissionFull,
    AdmissionQueue,
    AsyncPredictionServer,
    BackgroundAsyncServer,
    BatchSettings,
    BatchingMetrics,
    DynamicBatcher,
    serve_forever_aio,
)
from .breaker import CircuitBreaker
from .cache import LRUCache
from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    RestoredCATEHGN,
    load_checkpoint,
    load_gnn_baseline,
    restore_catehgn,
    save_catehgn,
    save_checkpoint,
    save_gnn_baseline,
)
from .degrade import ReloadRejected, ServingRuntime
from .engine import InferenceEngine
from .metrics import ServiceMetrics
from .prior import PriorHead
from .service import (
    InflightLimiter,
    ResilientHTTPServer,
    ServiceError,
    ServiceLimits,
    make_server,
    serve_forever,
)

__all__ = [
    "AdmissionFull",
    "AdmissionQueue",
    "AsyncPredictionServer",
    "BackgroundAsyncServer",
    "BatchSettings",
    "BatchingMetrics",
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "CircuitBreaker",
    "DynamicBatcher",
    "InferenceEngine",
    "InflightLimiter",
    "LRUCache",
    "PriorHead",
    "ReloadRejected",
    "ResilientHTTPServer",
    "RestoredCATEHGN",
    "ServiceError",
    "ServiceLimits",
    "ServiceMetrics",
    "ServingRuntime",
    "load_checkpoint",
    "load_gnn_baseline",
    "make_server",
    "restore_catehgn",
    "save_catehgn",
    "save_checkpoint",
    "save_gnn_baseline",
    "serve_forever",
    "serve_forever_aio",
]
