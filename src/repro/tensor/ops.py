"""Functional operations on :class:`~repro.tensor.Tensor`.

These cover the graph-specific primitives the GNN stack needs (gather /
segment reductions / segment softmax for message passing and attention) and
the knowledge-graph composition primitives (circular correlation and
convolution, Eq. (3) of the paper with the HolE operator).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import GradMode, Tensor


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op when it already is one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not GradMode.enabled:
        return Tensor(out_data)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(lo, hi)
            tensor._accumulate(grad[tuple(sl)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            tensor._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def gather(tensor: Tensor, index: np.ndarray, sorter=None) -> Tensor:
    """Row-gather ``tensor[index]`` for an integer index array.

    The gradient scatters (sums) back into the gathered rows, which makes
    ``gather`` the adjoint of :func:`segment_sum`.  ``sorter`` (optional)
    is an index-grouped structure (``order``/``indptr`` over ``index``
    with ``len(indptr) - 1 == len(tensor)`` segments, e.g. an
    :meth:`EdgeStructure.src_view <repro.hetnet.structure.EdgeStructure
    .src_view>`); with it the backward scatter runs as a contiguous
    ``reduceat`` instead of ``np.add.at``.
    """
    index = np.asarray(index, dtype=np.intp)
    out_data = tensor.data[index]
    if not GradMode.enabled:
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        if sorter is not None:
            tensor._accumulate(
                _sorted_segment_sum(grad, sorter.order, sorter.indptr)
            )
            return
        full = np.zeros_like(tensor.data)
        np.add.at(full, index, grad)
        tensor._accumulate(full)

    return Tensor._make(out_data, (tensor,), backward)


# ----------------------------------------------------------------------
# Sorted segment reductions
#
# ``np.add.at`` is an unbuffered scatter — correct but slow (it cannot
# vectorize over duplicate indices).  When the caller supplies a *sorter*
# (any object with ``order``/``indptr`` attributes, e.g. a cached
# :class:`repro.hetnet.structure.EdgeStructure`), segment reductions run
# as contiguous ``np.ufunc.reduceat`` slices over dst-sorted rows instead.
# ----------------------------------------------------------------------


def _sorted_segment_sum(x: np.ndarray, order: np.ndarray,
                        indptr: np.ndarray) -> np.ndarray:
    """Segment sum of ``x`` via ``np.add.reduceat`` over sorted rows."""
    num = len(indptr) - 1
    out = np.zeros((num,) + x.shape[1:], dtype=np.float64)
    if x.shape[0] == 0:
        return out
    starts = indptr[:-1]
    nonempty = indptr[1:] > starts
    if nonempty.any():
        out[nonempty] = np.add.reduceat(x[order], starts[nonempty], axis=0)
    return out


def _sorted_segment_max(x: np.ndarray, order: np.ndarray, indptr: np.ndarray,
                        empty_fill: float = 0.0) -> np.ndarray:
    """Segment max of ``x`` via ``np.maximum.reduceat`` over sorted rows."""
    num = len(indptr) - 1
    out = np.full((num,) + x.shape[1:], empty_fill, dtype=np.float64)
    if x.shape[0] == 0:
        return out
    starts = indptr[:-1]
    nonempty = indptr[1:] > starts
    if nonempty.any():
        out[nonempty] = np.maximum.reduceat(x[order], starts[nonempty], axis=0)
    return out


def _segment_sum_data(x: np.ndarray, segment_ids: np.ndarray,
                      num_segments: int, sorter=None) -> np.ndarray:
    """Raw segment sum: reduceat fast path when a sorter is available."""
    if sorter is not None:
        return _sorted_segment_sum(x, sorter.order, sorter.indptr)
    out = np.zeros((num_segments,) + x.shape[1:], dtype=np.float64)
    np.add.at(out, segment_ids, x)
    return out


def segment_sum(tensor: Tensor, segment_ids: np.ndarray, num_segments: int,
                sorter=None) -> Tensor:
    """Sum rows of ``tensor`` into ``num_segments`` buckets.

    ``out[s] = sum_i tensor[i] for segment_ids[i] == s`` — the scatter-add
    aggregation at the heart of message passing.  ``sorter`` (optional)
    provides precomputed dst-sorted ``order``/``indptr`` arrays for the
    contiguous-reduction fast path.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    out_data = _segment_sum_data(tensor.data, segment_ids, num_segments, sorter)
    if not GradMode.enabled:
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (tensor,), backward)


def segment_mean(tensor: Tensor, segment_ids: np.ndarray, num_segments: int,
                 counts: Optional[np.ndarray] = None, sorter=None) -> Tensor:
    """Mean-aggregate rows into segments; empty segments yield zeros.

    ``counts`` (optional) is the precomputed per-segment row count, e.g.
    from a cached :class:`~repro.hetnet.structure.EdgeStructure`.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if counts is None:
        counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(tensor, segment_ids, num_segments, sorter=sorter)
    inv = 1.0 / counts
    return summed * Tensor(inv.reshape((-1,) + (1,) * (tensor.ndim - 1)))


def segment_softmax(
    scores: Tensor, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """Softmax of ``scores`` normalized within each segment.

    Used for attention coefficients, where each destination node normalizes
    over its own incoming edges (Eq. (14)/(15) denominators).  ``scores``
    may be (E,) or (E, heads); segments run along axis 0.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    # Max-subtraction for numerical stability (constant w.r.t. gradients).
    seg_max = np.full((num_segments,) + scores.shape[1:], -np.inf)
    np.maximum.at(seg_max, segment_ids, scores.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    denom_per_edge = gather(denom, segment_ids)
    return exp / (denom_per_edge + 1e-12)


# ----------------------------------------------------------------------
# Fused kernels (single tape node, analytic backward)
#
# Each op below collapses a chain of 3-6 elementary tape nodes from the
# message-passing hot path into one node with a hand-derived backward
# closure.  They are numerically equivalent (within fp64 rounding) to the
# composed forms noted in each docstring; ``tests/test_hgn_fused_equivalence``
# and the ``tests/test_gradcheck_ops.py`` sweeps enforce that.
# ----------------------------------------------------------------------


def gather_matmul(table: Tensor, index: np.ndarray, weight: Tensor,
                  bias: Optional[Tensor] = None, sorter=None) -> Tensor:
    """Fused ``gather(table, index) @ weight (+ bias)`` in one tape node.

    Equivalent to the composed form but never materializes the gathered
    ``(E, d_in)`` intermediate on the tape: the forward gathers into a
    temporary, and the backward scatters ``grad @ weight.T`` straight into
    ``table`` while reducing ``gathered.T @ grad`` into ``weight``.
    ``sorter`` (optional) is an index-grouped structure over ``index``
    with one segment per ``table`` row; it turns the backward scatter
    into a contiguous ``reduceat``.
    """
    index = np.asarray(index, dtype=np.intp)
    gathered = table.data[index]
    out_data = gathered @ weight.data
    if bias is not None:
        out_data = out_data + bias.data
    if not GradMode.enabled:
        return Tensor(out_data)
    parents = (table, weight) if bias is None else (table, weight, bias)

    def backward(grad: np.ndarray) -> None:
        g_rows = grad @ weight.data.T
        if sorter is not None:
            table._accumulate(
                _sorted_segment_sum(g_rows, sorter.order, sorter.indptr)
            )
        else:
            full = np.zeros_like(table.data)
            np.add.at(full, index, g_rows)
            table._accumulate(full)
        weight._accumulate(gathered.T @ grad)
        if bias is not None:
            bias._accumulate(grad.sum(axis=0))

    return Tensor._make(out_data, parents, backward)


def segment_weighted_sum(values: Tensor, weights: Tensor,
                         segment_ids: np.ndarray, num_segments: int,
                         sorter=None) -> Tensor:
    """Fused ``segment_sum(values * weights[:, None], ...)`` in one node.

    ``out[s] = sum_{i: seg[i]=s} weights[i] * values[i]`` — the
    attention-weighted aggregation of Eq. (13)'s inner sum.  ``values`` is
    ``(E, d)``, ``weights`` is ``(E,)``.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    w_col = weights.data.reshape(-1, 1)
    out_data = _segment_sum_data(values.data * w_col, segment_ids,
                                 num_segments, sorter)
    if not GradMode.enabled:
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        g_edge = grad[segment_ids]
        values._accumulate(g_edge * w_col)
        weights._accumulate((g_edge * values.data).sum(axis=1))

    return Tensor._make(out_data, (values, weights), backward)


def segment_softmax_fused(
    scores: Tensor, segment_ids: np.ndarray, num_segments: int, sorter=None
) -> Tensor:
    """:func:`segment_softmax` collapsed into one tape node.

    The composed form records five nodes (shift, exp, segment_sum, gather,
    div); this version computes ``alpha = exp(s - max_seg) / (sum_seg + eps)``
    in plain numpy and registers the closed-form Jacobian action

    ``grad_s = alpha * (g - segsum(alpha * g)[seg])``

    (the ``eps`` cancellation is exact in this form).  Skipping the
    intermediate gather of the denominator is the main saving.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if sorter is not None:
        seg_max = _sorted_segment_max(scores.data, sorter.order, sorter.indptr)
    else:
        seg_max = np.full((num_segments,) + scores.shape[1:], -np.inf)
        np.maximum.at(seg_max, segment_ids, scores.data)
        seg_max[~np.isfinite(seg_max)] = 0.0
    exp = np.exp(scores.data - seg_max[segment_ids])
    denom = _segment_sum_data(exp, segment_ids, num_segments, sorter)
    alpha = exp / (denom[segment_ids] + 1e-12)
    if not GradMode.enabled:
        return Tensor(alpha)

    def backward(grad: np.ndarray) -> None:
        ag = alpha * grad
        seg_dot = _segment_sum_data(ag, segment_ids, num_segments, sorter)
        scores._accumulate(ag - alpha * seg_dot[segment_ids])

    return Tensor._make(alpha, (scores,), backward)


def masked_softmax_combine(scores: Tensor, aggregates: Sequence[Tensor],
                           mask: np.ndarray,
                           mask_penalty: float = -1e9) -> Tensor:
    """Fused link-wise attention combine (Eq. 15 + Eq. 13 outer sum).

    Given per-type scores ``(N, T)``, a constant presence ``mask`` of the
    same shape, and ``T`` aggregate tensors of shape ``(N, d)``, computes

    ``alpha = softmax(scores + where(mask, 0, penalty), axis=1)``
    ``out = sum_t alpha[:, t, None] * aggregates[t]``

    as one tape node.  The composed form records ~``3T`` nodes (reshape /
    add-mask / softmax / T muls / T-1 adds); the fused backward is

    ``grad_agg_t = grad * alpha[:, t, None]``
    ``S[:, t]   = sum_d grad * agg_t``
    ``grad_scores = alpha * (S - sum_t alpha * S)``.
    """
    aggregates = list(aggregates)
    mask = np.asarray(mask, dtype=bool)
    shifted = scores.data + np.where(mask, 0.0, mask_penalty)
    shifted = shifted - shifted.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    alpha = exp / exp.sum(axis=1, keepdims=True)
    agg_data = [a.data for a in aggregates]
    out_data = alpha[:, 0].reshape(-1, 1) * agg_data[0]
    for t in range(1, len(agg_data)):
        out_data = out_data + alpha[:, t].reshape(-1, 1) * agg_data[t]
    if not GradMode.enabled:
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        score_grads = np.empty_like(alpha)
        for t, agg in enumerate(aggregates):
            agg._accumulate(grad * alpha[:, t].reshape(-1, 1))
            score_grads[:, t] = (grad * agg_data[t]).sum(axis=1)
        inner = (alpha * score_grads).sum(axis=1, keepdims=True)
        scores._accumulate(alpha * (score_grads - inner))

    return Tensor._make(out_data, (scores, *aggregates), backward)


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with max-subtraction stability."""
    shift = Tensor(tensor.data.max(axis=axis, keepdims=True))
    exp = (tensor - shift).exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Log of softmax along ``axis``, computed stably."""
    shift = Tensor(tensor.data.max(axis=axis, keepdims=True))
    shifted = tensor - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def circular_correlation(a: Tensor, b: Tensor) -> Tensor:
    """HolE circular correlation ``[a * b]_k = sum_i a_i b_{(i+k) mod d}``.

    Works row-wise on (..., d) tensors.  Gradients follow from the Fourier
    form F(a ★ b) = conj(F(a)) ⊙ F(b):
    grad_a = correlate(g, b) and grad_b = convolve(a, g).
    """
    d = a.data.shape[-1]
    fa = np.fft.rfft(a.data, axis=-1)
    fb = np.fft.rfft(b.data, axis=-1)
    out_data = np.fft.irfft(np.conj(fa) * fb, n=d, axis=-1)

    def backward(grad: np.ndarray) -> None:
        from .tensor import unbroadcast

        fg = np.fft.rfft(grad, axis=-1)
        ga = np.fft.irfft(np.conj(fg) * np.fft.rfft(b.data, axis=-1), n=d, axis=-1)
        gb = np.fft.irfft(np.fft.rfft(a.data, axis=-1) * fg, n=d, axis=-1)
        a._accumulate(unbroadcast(ga, a.shape))
        b._accumulate(unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def circular_correlation_row(table: Tensor, row: Tensor,
                             index: Optional[np.ndarray] = None,
                             sorter=None) -> Tensor:
    """Fused ``circular_correlation(table[index], row)`` for one ``row``.

    When the second operand is a single ``(1, d)`` link-type embedding —
    the shape the HGN's φ always sees, since every edge of a type shares
    one embedding — circular correlation collapses to a matmul with the
    circulant matrix ``C[j, k] = row[(j + k) mod d]``:

    ``corr(a, row)_k = sum_j a_j row_{(j+k) mod d} = (a @ C)_k``.

    This replaces per-edge FFTs (three transforms forward, five backward)
    with one ``(E, d) @ (d, d)`` BLAS call each way, and optionally fuses
    the source-side row gather into the same node (``index``), with a
    ``reduceat`` backward scatter when ``sorter`` groups ``index``.

    Gradients: ``grad_table = scatter(grad @ C.T, index)`` and
    ``grad_row[m] = sum_{(j+k) mod d = m} (gathered.T @ grad)[j, k]``
    (anti-diagonal wrap-sums of the ``(d, d)`` outer-product gradient).
    """
    d = table.data.shape[-1]
    idx_mat = (np.arange(d)[:, None] + np.arange(d)[None, :]) % d
    circ = row.data.reshape(-1)[idx_mat]  # (d, d) circulant of the row
    gathered = table.data if index is None else table.data[index]
    out_data = gathered @ circ
    if not GradMode.enabled:
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        g_rows = grad @ circ.T
        if index is None:
            table._accumulate(g_rows)
        elif sorter is not None:
            table._accumulate(
                _sorted_segment_sum(g_rows, sorter.order, sorter.indptr)
            )
        else:
            full = np.zeros_like(table.data)
            np.add.at(full, index, g_rows)
            table._accumulate(full)
        grad_circ = gathered.T @ grad  # (d, d)
        grad_row = np.bincount(idx_mat.ravel(), weights=grad_circ.ravel(),
                               minlength=d)
        row._accumulate(grad_row.reshape(row.shape))

    return Tensor._make(out_data, (table, row), backward)


def circular_convolution(a: Tensor, b: Tensor) -> Tensor:
    """Circular convolution ``[a ⊗ b]_k = sum_i a_i b_{(k-i) mod d}``."""
    d = a.data.shape[-1]
    fa = np.fft.rfft(a.data, axis=-1)
    fb = np.fft.rfft(b.data, axis=-1)
    out_data = np.fft.irfft(fa * fb, n=d, axis=-1)

    def backward(grad: np.ndarray) -> None:
        from .tensor import unbroadcast

        fg = np.fft.rfft(grad, axis=-1)
        ga = np.fft.irfft(fg * np.conj(np.fft.rfft(b.data, axis=-1)), n=d, axis=-1)
        gb = np.fft.irfft(fg * np.conj(np.fft.rfft(a.data, axis=-1)), n=d, axis=-1)
        a._accumulate(unbroadcast(ga, a.shape))
        b._accumulate(unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def dropout(tensor: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero a ``rate`` fraction and rescale the rest."""
    if not training or rate <= 0.0:
        return tensor
    keep = 1.0 - rate
    mask = (rng.random(tensor.shape) < keep).astype(np.float64) / keep
    return tensor * Tensor(mask)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        from .tensor import unbroadcast

        a._accumulate(unbroadcast(grad * cond, a.shape))
        b._accumulate(unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def numerical_gradient(func, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``tensor``.

    Test utility: perturbs ``tensor.data`` in place, re-evaluating the full
    forward closure each time.

    .. note::
       This is the low-level probe kept for existing tests; new code
       should prefer :func:`repro.analysis.check_gradients` /
       :func:`repro.analysis.check_module`, which compare against the
       analytic gradient with per-element relative-error reporting and
       handle non-scalar outputs via a fixed projection.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = float(func().data)
        flat[i] = orig - eps
        f_minus = float(func().data)
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad
