"""Functional operations on :class:`~repro.tensor.Tensor`.

These cover the graph-specific primitives the GNN stack needs (gather /
segment reductions / segment softmax for message passing and attention) and
the knowledge-graph composition primitives (circular correlation and
convolution, Eq. (3) of the paper with the HolE operator).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .tensor import Tensor


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op when it already is one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * grad.ndim
            sl[axis] = slice(lo, hi)
            tensor._accumulate(grad[tuple(sl)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.split(grad, len(tensors), axis=axis)
        for tensor, slab in zip(tensors, slabs):
            tensor._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def gather(tensor: Tensor, index: np.ndarray) -> Tensor:
    """Row-gather ``tensor[index]`` for an integer index array.

    The gradient scatters (sums) back into the gathered rows, which makes
    ``gather`` the adjoint of :func:`segment_sum`.
    """
    index = np.asarray(index, dtype=np.intp)
    out_data = tensor.data[index]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(tensor.data)
        np.add.at(full, index, grad)
        tensor._accumulate(full)

    return Tensor._make(out_data, (tensor,), backward)


def segment_sum(tensor: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``tensor`` into ``num_segments`` buckets.

    ``out[s] = sum_i tensor[i] for segment_ids[i] == s`` — the scatter-add
    aggregation at the heart of message passing.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    out_shape = (num_segments,) + tensor.data.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, tensor.data)

    def backward(grad: np.ndarray) -> None:
        tensor._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (tensor,), backward)


def segment_mean(tensor: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows into segments; empty segments yield zeros."""
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(tensor, segment_ids, num_segments)
    inv = 1.0 / counts
    return summed * Tensor(inv.reshape((-1,) + (1,) * (tensor.ndim - 1)))


def segment_softmax(
    scores: Tensor, segment_ids: np.ndarray, num_segments: int
) -> Tensor:
    """Softmax of ``scores`` normalized within each segment.

    Used for attention coefficients, where each destination node normalizes
    over its own incoming edges (Eq. (14)/(15) denominators).  ``scores``
    may be (E,) or (E, heads); segments run along axis 0.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    # Max-subtraction for numerical stability (constant w.r.t. gradients).
    seg_max = np.full((num_segments,) + scores.shape[1:], -np.inf)
    np.maximum.at(seg_max, segment_ids, scores.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    denom_per_edge = gather(denom, segment_ids)
    return exp / (denom_per_edge + 1e-12)


def softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with max-subtraction stability."""
    shift = Tensor(tensor.data.max(axis=axis, keepdims=True))
    exp = (tensor - shift).exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(tensor: Tensor, axis: int = -1) -> Tensor:
    """Log of softmax along ``axis``, computed stably."""
    shift = Tensor(tensor.data.max(axis=axis, keepdims=True))
    shifted = tensor - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def circular_correlation(a: Tensor, b: Tensor) -> Tensor:
    """HolE circular correlation ``[a * b]_k = sum_i a_i b_{(i+k) mod d}``.

    Works row-wise on (..., d) tensors.  Gradients follow from the Fourier
    form F(a ★ b) = conj(F(a)) ⊙ F(b):
    grad_a = correlate(g, b) and grad_b = convolve(a, g).
    """
    d = a.data.shape[-1]
    fa = np.fft.rfft(a.data, axis=-1)
    fb = np.fft.rfft(b.data, axis=-1)
    out_data = np.fft.irfft(np.conj(fa) * fb, n=d, axis=-1)

    def backward(grad: np.ndarray) -> None:
        from .tensor import unbroadcast

        fg = np.fft.rfft(grad, axis=-1)
        ga = np.fft.irfft(np.conj(fg) * np.fft.rfft(b.data, axis=-1), n=d, axis=-1)
        gb = np.fft.irfft(np.fft.rfft(a.data, axis=-1) * fg, n=d, axis=-1)
        a._accumulate(unbroadcast(ga, a.shape))
        b._accumulate(unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def circular_convolution(a: Tensor, b: Tensor) -> Tensor:
    """Circular convolution ``[a ⊗ b]_k = sum_i a_i b_{(k-i) mod d}``."""
    d = a.data.shape[-1]
    fa = np.fft.rfft(a.data, axis=-1)
    fb = np.fft.rfft(b.data, axis=-1)
    out_data = np.fft.irfft(fa * fb, n=d, axis=-1)

    def backward(grad: np.ndarray) -> None:
        from .tensor import unbroadcast

        fg = np.fft.rfft(grad, axis=-1)
        ga = np.fft.irfft(fg * np.conj(np.fft.rfft(b.data, axis=-1)), n=d, axis=-1)
        gb = np.fft.irfft(fg * np.conj(np.fft.rfft(a.data, axis=-1)), n=d, axis=-1)
        a._accumulate(unbroadcast(ga, a.shape))
        b._accumulate(unbroadcast(gb, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def dropout(tensor: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout: zero a ``rate`` fraction and rescale the rest."""
    if not training or rate <= 0.0:
        return tensor
    keep = 1.0 - rate
    mask = (rng.random(tensor.shape) < keep).astype(np.float64) / keep
    return tensor * Tensor(mask)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        from .tensor import unbroadcast

        a._accumulate(unbroadcast(grad * cond, a.shape))
        b._accumulate(unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def numerical_gradient(func, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``tensor``.

    Test utility: perturbs ``tensor.data`` in place, re-evaluating the full
    forward closure each time.

    .. note::
       This is the low-level probe kept for existing tests; new code
       should prefer :func:`repro.analysis.check_gradients` /
       :func:`repro.analysis.check_module`, which compare against the
       analytic gradient with per-element relative-error reporting and
       handle non-scalar outputs via a fixed projection.
    """
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = float(func().data)
        flat[i] = orig - eps
        f_minus = float(func().data)
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad
