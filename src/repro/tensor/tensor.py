"""Reverse-mode automatic differentiation over numpy arrays.

This module is the numerical substrate for everything trainable in the
repository: the CATE-HGN model and every gradient-based baseline are built on
:class:`Tensor`.  The design is a classic dynamic tape — each operation
records its parents and a closure that accumulates gradients into them, and
:meth:`Tensor.backward` walks the tape in reverse topological order.

Only float64 arrays are supported; integer index arrays are passed around as
plain numpy arrays (they are never differentiated).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]


class GradMode:
    """Process-wide autodiff mode switch plus tape observability counters.

    ``enabled`` gates tape construction inside :meth:`Tensor._make`: while
    it is ``False`` every op returns a *constant* tensor — no parents, no
    backward closure, no tape node — regardless of ``requires_grad`` on
    the inputs.  This is strictly stronger than detaching inputs: the
    graph is never built, so an inference forward pass allocates nothing
    beyond its output arrays.

    ``tape_nodes`` counts every tape node created since process start (or
    the last :func:`reset_tape_node_counter`); the inference-mode tests
    assert it stays flat across a ``no_grad()`` forward pass.
    """

    enabled: bool = True
    #: Cumulative count of tape nodes (tensors carrying a backward
    #: closure) created through :meth:`Tensor._make`.
    tape_nodes: int = 0


def is_grad_enabled() -> bool:
    """Whether ops currently record onto the autodiff tape."""
    return GradMode.enabled


def tape_nodes_created() -> int:
    """Total tape nodes created so far (see :class:`GradMode`)."""
    return GradMode.tape_nodes


def reset_tape_node_counter() -> None:
    """Zero the tape-node counter (test/benchmark hygiene)."""
    GradMode.tape_nodes = 0


class set_grad_enabled:
    """Context manager / decorator that sets tape recording on or off.

    Re-entrant and exception-safe: the previous mode is restored on exit
    no matter how the block terminates.  Usable as a decorator too::

        @no_grad()
        def serve_one(batch): ...
    """

    def __init__(self, mode: bool) -> None:
        self._mode = bool(mode)
        self._prev: Optional[bool] = None

    def __enter__(self) -> "set_grad_enabled":
        self._prev = GradMode.enabled
        GradMode.enabled = self._mode
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        GradMode.enabled = bool(self._prev)
        return False

    def __call__(self, func):
        import functools

        mode = self._mode

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with set_grad_enabled(mode):
                return func(*args, **kwargs)

        return wrapper


class no_grad(set_grad_enabled):
    """Disable tape recording: ops return constants, gradients never flow."""

    def __init__(self) -> None:
        super().__init__(False)


class enable_grad(set_grad_enabled):
    """Re-enable tape recording inside an outer :class:`no_grad` block."""

    def __init__(self) -> None:
        super().__init__(True)


class inference_mode(no_grad):
    """Tape-free inference context (alias of :class:`no_grad`).

    The serving engine's canonical entry point: inside this block a
    forward pass through any :class:`~repro.nn.Module` allocates zero
    tape nodes and zero backward closures on the hot fused kernels —
    outputs are plain constant tensors that can be kept alive (e.g. as
    precomputed node embeddings) without pinning an autodiff graph.
    """


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float64 numpy array (no copy when possible)."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a forward op broadcast an operand of ``shape`` up to ``grad.shape``,
    the chain rule requires summing the incoming gradient over every
    broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autodiff tape.

    Parameters
    ----------
    data:
        Array-like initial value; stored as float64.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single element, got {self.shape}")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        order: list[Tensor] = []
        visited: set[int] = set()
        # Iterative topological sort (recursion would overflow on deep tapes).
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        if not GradMode.enabled:
            # Inference mode: never build the tape, whatever the inputs.
            return Tensor(data)
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        needs_grad = any(p.requires_grad or p._parents for p in parents)
        if not needs_grad:
            return Tensor(data)
        GradMode.tape_nodes += 1
        return Tensor(data, _parents=parents, _backward=backward)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other_t._accumulate(unbroadcast(grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other_t._accumulate(unbroadcast(-grad, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
            )

        return Tensor._make(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
            elif a.ndim == 1:
                # (d,) @ (d, m) -> (m,)
                self._accumulate(b @ grad)
                other_t._accumulate(np.outer(a, grad))
            elif b.ndim == 1:
                # (n, d) @ (d,) -> (n,)
                self._accumulate(np.outer(grad, b))
                other_t._accumulate(a.T @ grad)
            else:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(unbroadcast(ga, a.shape))
                other_t._accumulate(unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        out_data = np.transpose(self.data, axes_tuple)
        if axes_tuple is None:
            inverse: Optional[Tuple[int, ...]] = None
        else:
            inverse = tuple(np.argsort(axes_tuple))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(np.float64)
            # Split gradient evenly across ties.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / denom)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = ((self.data >= low) & (self.data <= high)).astype(np.float64)
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0))

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        out_data = np.where(self.data > 0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(self.data > 0, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        """sp(x) = log(1 + exp(x)), computed stably."""
        x = self.data
        out_data = np.logaddexp(0.0, x)

        def backward(grad: np.ndarray) -> None:
            sig = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
            self._accumulate(grad * sig)

        return Tensor._make(out_data, (self,), backward)
