"""Reverse-mode autodiff substrate (numpy backend).

Public API::

    from repro.tensor import Tensor, ops
    x = Tensor([1.0, 2.0], requires_grad=True)
    y = (x * x).sum()
    y.backward()
"""

from . import ops
from .ops import (
    as_tensor,
    circular_convolution,
    circular_correlation,
    circular_correlation_row,
    concatenate,
    dropout,
    gather,
    gather_matmul,
    log_softmax,
    masked_softmax_combine,
    numerical_gradient,
    segment_mean,
    segment_softmax,
    segment_softmax_fused,
    segment_sum,
    segment_weighted_sum,
    softmax,
    stack,
    where,
)
from .tensor import (
    GradMode,
    Tensor,
    enable_grad,
    inference_mode,
    is_grad_enabled,
    no_grad,
    reset_tape_node_counter,
    set_grad_enabled,
    tape_nodes_created,
    unbroadcast,
)

__all__ = [
    "Tensor",
    "unbroadcast",
    "GradMode",
    "no_grad",
    "enable_grad",
    "inference_mode",
    "set_grad_enabled",
    "is_grad_enabled",
    "tape_nodes_created",
    "reset_tape_node_counter",
    "ops",
    "as_tensor",
    "concatenate",
    "stack",
    "gather",
    "gather_matmul",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "segment_softmax_fused",
    "segment_weighted_sum",
    "masked_softmax_combine",
    "softmax",
    "log_softmax",
    "circular_correlation",
    "circular_correlation_row",
    "circular_convolution",
    "dropout",
    "where",
    "numerical_gradient",
]
