"""Loss functions used across CATE-HGN and the baselines."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, as_tensor


def mse_loss(pred: Tensor, target, reduction: str = "mean") -> Tensor:
    """Squared error; the supervised citation loss of Eq. (6)."""
    target_t = as_tensor(target)
    diff = pred - target_t
    sq = diff * diff
    if reduction == "mean":
        return sq.mean()
    if reduction == "sum":
        return sq.sum()
    return sq


def l1_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error."""
    return (pred - as_tensor(target)).abs().mean()


def bce_with_logits(logits: Tensor, target) -> Tensor:
    """Stable binary cross-entropy from logits:
    max(x,0) - x*y + log(1+exp(-|x|))."""
    target_t = as_tensor(target)
    zeros = Tensor(np.zeros_like(logits.data))
    max_part = logits.clip(0.0, np.inf)
    return (max_part - logits * target_t + (-logits.abs()).softplus()).mean()


def kl_divergence(p: Tensor, q: Tensor, eps: float = 1e-10) -> Tensor:
    """KL(P || Q) = sum p log(p/q), summed over all entries.

    Both inputs are (rows of) probability distributions.  Used by the CA
    module's self-training loss (Eq. 18) and consistency loss (Eq. 20).
    """
    p_safe = p + eps
    q_safe = q + eps
    return (p * (p_safe.log() - q_safe.log())).sum()


def jsd_mi_estimate(pos_scores: Tensor, neg_scores: Tensor) -> Tensor:
    """Jensen–Shannon mutual-information estimator (Eq. 10).

    I = -sp(-D(pos)) - E[sp(D(neg))], where sp is soft-plus.  Returns the
    per-pair MI estimates (vector); maximizing their sum maximizes MI.
    """
    return -(-pos_scores).softplus() - neg_scores.softplus()
