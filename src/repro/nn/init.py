"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so that
every model in the repository is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-bound, bound, size=shape)


def he_normal(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    """He/Kaiming normal: N(0, sqrt(2 / fan_in)) — suited to ReLU stacks."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
