"""Standard neural-network layers built on the autodiff substrate."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..tensor import Tensor, dropout as dropout_op
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of ``num_embeddings`` vectors of size ``dim``."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator, std: float = 0.1) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal(rng, (num_embeddings, dim), std=std))

    def forward(self, index: np.ndarray) -> Tensor:
        from ..tensor import gather

        return gather(self.weight, np.asarray(index, dtype=np.intp))


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.rate = rate
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_op(x, self.rate, self.rng, training=self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers = list(modules)
        for i, module in enumerate(modules):
            self.register_module(f"layer{i}", module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)


class Activation(Module):
    """Wrap an elementwise activation as a module (for Sequential)."""

    def __init__(self, fn: Callable[[Tensor], Tensor]) -> None:
        super().__init__()
        self.fn = fn

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)


def relu_activation() -> Activation:
    return Activation(lambda t: t.relu())


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations.

    The paper trains "a three layer MLP with equal sizes" on top of
    unsupervised embeddings (metapath2vec / hin2vec baselines); this class is
    that head, and also the BERT-stand-in regressor body.
    """

    def __init__(self, dims: Sequence[int], rng: np.random.Generator,
                 dropout: float = 0.0,
                 output_activation: Optional[Callable[[Tensor], Tensor]] = None) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self._linears = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layer = Linear(d_in, d_out, rng)
            self.register_module(f"fc{i}", layer)
            self._linears.append(layer)
        self.dropout = Dropout(dropout, rng) if dropout > 0 else None
        self.output_activation = output_activation

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self._linears):
            x = layer(x)
            if i < len(self._linears) - 1:
                x = x.relu()
                if self.dropout is not None:
                    x = self.dropout(x)
        if self.output_activation is not None:
            x = self.output_activation(x)
        return x
