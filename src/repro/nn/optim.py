"""Gradient-descent optimizers."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Rescale all gradients so their global L2 norm is <= max_norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad = param.grad * scale
        return norm

    # ------------------------------------------------------------------
    # Snapshot support (repro.resilience): a flat Dict[str, np.ndarray]
    # mirroring Module.state_dict so optimizer state rides in the same
    # npz namespace as model parameters.
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Optimizer state as plain arrays (copies); subclasses extend."""
        return {"lr": np.array(self.lr, dtype=np.float64)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "lr" in state:
            self.lr = float(state["lr"])

    def _load_slot_arrays(self, state: Dict[str, np.ndarray], slot: str,
                          target: List[np.ndarray]) -> None:
        """Restore per-parameter arrays (``m/0000``-style) into ``target``."""
        keys = sorted(k for k in state if k.startswith(slot + "/"))
        if len(keys) != len(self.params):
            raise ValueError(
                f"optimizer state mismatch: {len(keys)} {slot!r} arrays "
                f"for {len(self.params)} parameters"
            )
        for i, key in enumerate(keys):
            arr = np.asarray(state[key], dtype=np.float64)
            if arr.shape != target[i].shape:
                raise ValueError(
                    f"optimizer state shape mismatch at {key}: "
                    f"{target[i].shape} vs {arr.shape}"
                )
            target[i] = arr.copy()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        for i, velocity in enumerate(self._velocity):
            state[f"velocity/{i:04d}"] = velocity.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._load_slot_arrays(state, "velocity", self._velocity)


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with optional decoupled weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Full Adam state (m, v, t, lr) as a flat array dict (copies).

        Restoring this via :meth:`load_state_dict` makes a resumed run's
        parameter updates bitwise-identical to the uninterrupted run's
        (repro.resilience resumable training relies on it).
        """
        state = super().state_dict()
        state["t"] = np.array(self._t, dtype=np.int64)
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m/{i:04d}"] = m.copy()
            state[f"v/{i:04d}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        if "t" in state:
            self._t = int(state["t"])
        self._load_slot_arrays(state, "m", self._m)
        self._load_slot_arrays(state, "v", self._v)
