"""Neural-network layer library on top of :mod:`repro.tensor`."""

from . import init, losses
from .layers import (
    MLP,
    Activation,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Sequential,
)
from .losses import bce_with_logits, jsd_mi_estimate, kl_divergence, l1_loss, mse_loss
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "Activation",
    "MLP",
    "SGD",
    "Adam",
    "Optimizer",
    "init",
    "losses",
    "mse_loss",
    "l1_loss",
    "bce_with_logits",
    "kl_divergence",
    "jsd_mi_estimate",
]
