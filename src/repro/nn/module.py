"""Module/Parameter system, mirroring the familiar torch.nn.Module contract.

A :class:`Module` owns :class:`Parameter` tensors and child modules, exposes
recursive parameter iteration, gradient zeroing, and train/eval switching.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all trainable components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are registered automatically via ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        # Drop any stale registry entry first: reassigning an attribute
        # that used to hold a Parameter/Module to a different kind of value
        # must not leave the old object visible to named_parameters() /
        # state_dict() (it would keep receiving optimizer updates and
        # serialize ghost weights).
        params = self.__dict__.get("_parameters")
        modules = self.__dict__.get("_modules")
        if params is not None:
            params.pop(name, None)
        if modules is not None:
            modules.pop(name, None)
        if isinstance(value, Parameter):
            if params is None:
                raise AttributeError(
                    "cannot assign Parameter before Module.__init__() call"
                )
            params[name] = value
        elif isinstance(value, Module):
            if modules is None:
                raise AttributeError(
                    "cannot assign Module before Module.__init__() call"
                )
            modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module stored outside attribute assignment."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        """Total scalar parameter count (for the paper's complexity claims)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot all parameters as plain arrays (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = own[name]
            arr = np.asarray(value)
            if arr.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{param.data.shape} vs {arr.shape}"
                )
            # The engine is float64-only: silently adopting a float32 (or
            # int) snapshot would change param.data's dtype and poison
            # every downstream op.  Coerce real-numeric kinds; reject the
            # rest (complex/object/str) with a clear error.
            if arr.dtype.kind not in "fiub":
                raise TypeError(
                    f"state_dict value for {name!r} has dtype {arr.dtype} "
                    "which cannot be cast to float64 (the engine is "
                    "float64-only)"
                )
            param.data = arr.astype(np.float64, copy=True)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
