"""Text-enhancing (TE) module (Section III-E).

Mines quality terms instead of trusting the papers' noisy keyword lists:

1. *Cluster-oriented term initialization* — bootstrap an initial term set
   per research domain by masking the domain name and reading the MLM's
   slot distribution (Eq. 23, top-κ hard threshold), then connect papers to
   the union of all sets with TF-IDF weights (Eq. 24).
2. *Adaptive term refinement* — each current quality term votes for its
   top-κ MLM neighbours, weighted by the term's model-estimated research
   impact ŷ_u; the top |T_k| voted terms become the next set, and the
   paper-term links are rebuilt (impact-based voting, Section III-E2).

The TE module adds no loss; it rewrites the term nodes / paper-term links
of the working graph and seeds the CA cluster centers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dblp import TextArtifacts
from ..hetnet import PAPER, TERM, HeteroGraph
from ..text import tfidf_matrix_entries


@dataclass
class TEConfig:
    kappa: int = 50  # top-relevant-term cut-off (paper: 50-100)
    use_bert_init: bool = True  # ablation: start from keyword terms instead
    use_tfidf: bool = True  # ablation: binary link weights instead
    iterative: bool = True  # ablation: never refine after initialization
    # Statistical-importance filter (heuristic 2 of Sec. III-E): a quality
    # term must not be "too frequent across all" papers, so candidates in
    # more than this fraction of documents are rejected.
    max_df_ratio: float = 0.25
    seed: int = 0


class TextEnhancer:
    """Quality-term mining over a fixed corpus."""

    def __init__(self, text: TextArtifacts, domain_names: Sequence[str],
                 config: Optional[TEConfig] = None) -> None:
        self.text = text
        self.domain_names = list(domain_names)
        self.config = config or TEConfig()
        self._top_terms_cache: Dict[str, List[str]] = {}
        # Document-frequency ratios for the statistical-importance filter.
        from ..text import document_frequencies

        documents = text.corpus.encoded()
        df = document_frequencies(documents, len(text.corpus.vocabulary))
        self._df_ratio = df / max(len(documents), 1)

    # ------------------------------------------------------------------
    def _statistically_important(self, token: str) -> bool:
        token_id = self.text.corpus.vocabulary.get(token)
        if token_id < 0:
            return False
        return self._df_ratio[token_id] <= self.config.max_df_ratio

    def _mlm_top(self, token: str) -> List[str]:
        if token not in self._top_terms_cache:
            # Over-fetch, then apply the importance filter (heuristic 2).
            pairs = self.text.mlm.top_terms(token, 2 * self.config.kappa)
            kept = [t for t, _ in pairs if self._statistically_important(t)]
            self._top_terms_cache[token] = kept[: self.config.kappa]
        return self._top_terms_cache[token]

    def bootstrap(self, fallback_terms: Optional[Sequence[str]] = None,
                  ) -> List[List[str]]:
        """Initial per-domain term sets T_k^0 (Section III-E1).

        With ``use_bert_init`` disabled (Fig. 4(a) ablation), falls back to
        the given keyword-derived terms, split across domains at random —
        "using available keywords of the papers as all other models".
        """
        if self.config.use_bert_init:
            sets = []
            for name in self.domain_names:
                terms = [name] if name in self.text.corpus.vocabulary else []
                terms += [t for t in self._mlm_top(name) if t not in terms]
                sets.append(terms[: self.config.kappa])
            return sets
        if fallback_terms is None:
            raise ValueError("bert-init disabled requires fallback terms")
        rng = np.random.default_rng(self.config.seed)
        in_vocab = [t for t in fallback_terms
                    if t in self.text.corpus.vocabulary]
        assignment = rng.integers(0, len(self.domain_names),
                                  size=len(in_vocab))
        return [[t for t, k in zip(in_vocab, assignment) if k == d]
                for d in range(len(self.domain_names))]

    # ------------------------------------------------------------------
    def build_links(self, term_tokens: Sequence[str],
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Paper-term links over the current term set (Eq. 24).

        Returns (paper ids, local term ids, weights); the ablation without
        TF-IDF uses binary weights.
        """
        vocab = self.text.corpus.vocabulary
        token_to_local = {t: i for i, t in enumerate(term_tokens)}
        vocab_ids = [vocab.id(t) for t in term_tokens]
        documents = self.text.corpus.encoded()
        if self.config.use_tfidf:
            papers, tokens, weights = tfidf_matrix_entries(
                documents, len(vocab), restrict_to=vocab_ids
            )
        else:
            keep = set(vocab_ids)
            entries = [(i, tok) for i, doc in enumerate(documents)
                       for tok in set(doc) if tok in keep]
            papers = np.array([p for p, _ in entries], dtype=np.intp)
            tokens = np.array([t for _, t in entries], dtype=np.intp)
            weights = np.ones(len(entries), dtype=np.float64)
        local = np.array([token_to_local[vocab.token(int(t))] for t in tokens],
                         dtype=np.intp)
        return papers, local, weights

    # ------------------------------------------------------------------
    def refine(self, term_sets: List[List[str]],
               impacts: Dict[str, float]) -> List[List[str]]:
        """Impact-based voting (Section III-E2).

        Each term u in T_k votes for its κ most MLM-relevant terms with
        weight ŷ_u; the union is re-thresholded to |T_k| terms.  Impacts
        can be negative early in training — votes are floored at a small
        positive value so every current term keeps some say.
        """
        new_sets = []
        for terms in term_sets:
            tally: Dict[str, float] = {}
            for u in terms:
                weight = max(impacts.get(u, 0.0), 1e-3)
                # A term's ballot covers its κ most relevant terms and
                # itself (it trivially fills its own masked slot).
                for candidate in [u] + self._mlm_top(u):
                    tally[candidate] = tally.get(candidate, 0.0) + weight
            ranked = sorted(tally, key=lambda t: -tally[t])
            new_sets.append(ranked[: max(len(terms), 1)])
        return new_sets

    # ------------------------------------------------------------------
    @staticmethod
    def union(term_sets: List[List[str]]) -> List[str]:
        seen: Dict[str, None] = {}
        for terms in term_sets:
            for t in terms:
                seen.setdefault(t)
        return sorted(seen)

    def rebuild_graph_terms(self, graph: HeteroGraph,
                            term_sets: List[List[str]]) -> List[str]:
        """Replace the graph's term nodes and paper-term links in place."""
        term_tokens = self.union(term_sets)
        papers, local, weights = self.build_links(term_tokens)
        graph.add_nodes(TERM, len(term_tokens), names=term_tokens)
        graph.node_attrs[TERM] = {}
        features = self.text.embeddings.embed_documents(
            [[t] for t in term_tokens]
        )
        graph.set_features(TERM, features)
        graph.set_edges((PAPER, "mentions", TERM), papers, local, weights)
        graph.set_edges((TERM, "mentioned_by", PAPER), local, papers, weights)
        return term_tokens
