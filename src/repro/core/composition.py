"""Entity-relation composition operators φ (Eq. 3).

CATE-HGN borrows the KGE composition trick (CompGCN-style) to share one
transformation matrix across all link types: messages are composed from the
neighbour embedding and the *link-type* embedding with a cheap
non-parameterized operator.  The paper evaluates three:

- ``sub``  — subtraction, TransE-style [26];
- ``mult`` — elementwise multiplication, DistMult-style [27];
- ``corr`` — circular correlation, HolE-style [28] (the default; the
  ablation in Fig. 4(a) shows it wins).
"""

from __future__ import annotations

from typing import Callable, Dict

from ..tensor import Tensor, circular_correlation

CompositionFn = Callable[[Tensor, Tensor], Tensor]


def compose_sub(node: Tensor, edge: Tensor) -> Tensor:
    return node - edge


def compose_mult(node: Tensor, edge: Tensor) -> Tensor:
    return node * edge


def compose_corr(node: Tensor, edge: Tensor) -> Tensor:
    return circular_correlation(node, edge)


COMPOSITIONS: Dict[str, CompositionFn] = {
    "sub": compose_sub,
    "mult": compose_mult,
    "corr": compose_corr,
}


def get_composition(name: str) -> CompositionFn:
    """Look up a composition operator φ by name (sub / mult / corr)."""
    try:
        return COMPOSITIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown composition {name!r}; choose from {sorted(COMPOSITIONS)}"
        ) from None
