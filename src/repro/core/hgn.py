"""One-space heterogeneous graph network (Section III-C).

The HGN jointly embeds *all* node types and link types into a single space:

- type-aware node/link encoders (Eq. 5);
- per-layer convolutions that compose neighbour and link-type embeddings
  with a KGE operator φ and share one transformation matrix across link
  types (Eq. 3-4);
- three-way multi-head attentions: node-wise within a neighbour type
  (Eq. 14) and link-wise across neighbour types (Eq. 15), combined per
  Eq. (13);
- a per-layer citation regressor supervised at every layer (Eq. 6).

Two faithful-by-construction simplifications are documented here rather
than hidden:

- Eq. 5 encodes each link type as W_ψ(e) x_e + b_ψ(e) where x_e is a
  *random constant* per type — that parameterization spans exactly one free
  learnable vector per link type, so we store it directly as a per-type
  embedding table.
- A learnable self-connection is added as an extra pseudo link type per
  node (the self-loop of Eq. 1's Ã), which keeps nodes with few in-links
  well-defined under attention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hetnet import HeteroGraph
from ..hetnet.schema import PAPER, EdgeTypeKey
from ..hetnet.structure import BatchStructure, EdgeStructure
from ..nn import Linear, Module, Parameter, init
from ..tensor import (
    Tensor,
    circular_correlation_row,
    concatenate,
    gather,
    gather_matmul,
    masked_softmax_combine,
    segment_mean,
    segment_softmax,
    segment_softmax_fused,
    segment_sum,
    segment_weighted_sum,
    softmax,
)

SELF_LOOP = "self"


@dataclass
class HGNConfig:
    """Hyper-parameters of the one-space HGN (paper's Section IV-A3).

    The paper's defaults are L=2, d=100, corr composition, 10 attention
    heads; the library defaults shrink dims/heads to CPU scale while keeping
    the same structure.
    """

    dim: int = 32
    num_layers: int = 2
    composition: str = "corr"
    attention_heads: int = 4  # D_a = D_b
    use_attention: bool = True
    leaky_slope: float = 0.2
    seed: int = 0
    # Fused message-passing kernels + batch-structure cache (DESIGN §10).
    # ``False`` selects the legacy composed-op path, kept for the
    # numerical-equivalence regression tests and as a fallback.
    fused: bool = True


@dataclass
class GraphBatch:
    """A heterogeneous (sub)graph flattened into training-ready arrays."""

    node_types: List[str]
    features: Dict[str, np.ndarray]
    # edge type key -> (src ids, dst ids, raw weight, normalized weight)
    edges: Dict[EdgeTypeKey, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]
    num_nodes: Dict[str, int]
    labeled_ids: np.ndarray  # paper ids with known citation labels
    labels: np.ndarray
    # Concatenation layout of the "one space": type -> (offset, length).
    slices: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # Shared lazy cell holding the immutable BatchStructure cache.  A
    # one-element list so label-augmented views (which share topology)
    # also share the cache the moment any of them builds it.
    _structure_cell: Optional[list] = field(default=None, repr=False,
                                            compare=False)

    def __post_init__(self) -> None:
        offset = 0
        for t in self.node_types:
            self.slices[t] = (offset, self.num_nodes[t])
            offset += self.num_nodes[t]
        self.total_nodes = offset
        if self._structure_cell is None:
            self._structure_cell = [None]

    @property
    def structure(self) -> BatchStructure:
        """Dst-sorted orderings / CSR indptr / presence masks, built once.

        Lazily constructed on first access and shared by every view of
        this batch (all layers, all forward passes, all
        :meth:`with_label_inputs` augmentations).  Topology changes must
        go through a new ``GraphBatch`` — see
        :mod:`repro.hetnet.structure` for the invalidation rules.
        """
        if self._structure_cell[0] is None:
            self._structure_cell[0] = BatchStructure(
                self.edges, self.num_nodes, self.node_types
            )
        return self._structure_cell[0]

    def with_label_inputs(self, input_ids: np.ndarray,
                          input_values: np.ndarray,
                          supervised_ids: np.ndarray,
                          supervised_labels: np.ndarray) -> "GraphBatch":
        """Augment paper features with known-label input channels.

        The paper's RankClus-inspired narrative — "starting from the
        labeled papers … infer the prestige of authors and the authority
        of venues" — propagates *known impact* through the network.  A
        feature-based GNN realizes that by feeding the training labels in
        as two extra paper-feature columns (value, is-known flag), in the
        style of masked label inputs (UniMP): during training, a random
        half of the labels is visible in the input while the loss is taken
        on the hidden half, so a paper never sees its own label.
        """
        features = dict(self.features)
        papers = features["paper"]
        extra = np.zeros((papers.shape[0], 2))
        extra[input_ids, 0] = input_values
        extra[input_ids, 1] = 1.0
        features["paper"] = np.hstack([papers, extra])
        return GraphBatch(node_types=list(self.node_types), features=features,
                          edges=self.edges, num_nodes=dict(self.num_nodes),
                          labeled_ids=np.asarray(supervised_ids, dtype=np.intp),
                          labels=np.asarray(supervised_labels, dtype=np.float64),
                          _structure_cell=self._structure_cell)

    @classmethod
    def from_graph(cls, graph: HeteroGraph, labeled_ids: np.ndarray,
                   labels: np.ndarray,
                   share_structure: bool = False,
                   validate: Optional[str] = None) -> "GraphBatch":
        """Flatten ``graph`` into a training-ready batch.

        With ``share_structure=True`` the batch adopts the graph's shared
        structure cell (:meth:`HeteroGraph.structure_cell`): every batch
        built from the same unmutated graph then shares one
        :class:`~repro.hetnet.structure.BatchStructure`, so a roster of
        models trained on one dataset builds it exactly once.  The
        default (``False``) keeps the historical per-batch cache.

        ``validate`` optionally runs the finished batch through the
        contract layer (:mod:`repro.contracts`) under the named policy
        (``"strict"``/``"repair"``/``"warn"``).  On clean input the
        batch is returned unchanged (identity), so enabling validation
        is trajectory-neutral; under ``"repair"`` a poisoned batch is
        rebuilt with offenders quarantined.  Note a repaired batch drops
        the shared structure cell — its topology differs from the
        graph's.
        """
        edges = {}
        for key, edge in graph.edges.items():
            max_w = edge.weight.max() if edge.num_edges else 1.0
            # Alias instead of copying when the weights are already
            # normalized (the common all-ones case): x / 1.0 == x
            # bitwise, and edge arrays are treated as immutable, so the
            # alias is safe and saves an O(E) allocation per batch.
            norm = (edge.weight if max_w == 1.0
                    else edge.weight / max(max_w, 1e-12))
            edges[key] = (edge.src, edge.dst, edge.weight, norm)
        batch = cls(
            node_types=list(graph.schema.node_types),
            features={t: graph.node_features[t] for t in graph.schema.node_types},
            edges=edges,
            num_nodes=dict(graph.num_nodes),
            labeled_ids=np.asarray(labeled_ids, dtype=np.intp),
            labels=np.asarray(labels, dtype=np.float64),
            _structure_cell=(graph.structure_cell() if share_structure
                             else None),
        )
        if validate is not None:
            from ..contracts import validate_batch  # lazy: no core->contracts cycle

            batch, _ = validate_batch(batch, policy=validate)
        return batch


@dataclass
class HGNOutput:
    """Everything downstream modules need from one forward pass."""

    # layers[l][node_type] -> (N_t, dim); layer 0 is the encoder output.
    layers: List[Dict[str, Tensor]]
    # Per-layer predictions on *unmasked* embeddings (filled by the model
    # wrapper when CA masking applies — see model.py).
    predictions: List[Dict[str, Tensor]] = field(default_factory=list)


class OneSpaceHGN(Module):
    """Eq. 3-6 and 13-15: the HGN backbone."""

    def __init__(self, config: HGNConfig, node_types: List[str],
                 feature_dims: Dict[str, int],
                 edge_type_keys: List[EdgeTypeKey]) -> None:
        super().__init__()
        from .composition import get_composition

        self.config = config
        self.node_types = list(node_types)
        self.edge_type_keys = list(edge_type_keys)
        self.compose = get_composition(config.composition)
        rng = np.random.default_rng(config.seed)
        d = config.dim
        heads = config.attention_heads

        # Type-aware node encoders (Eq. 5).
        for t in self.node_types:
            self.register_module(
                f"encode_{t}", Linear(feature_dims[t], d, rng)
            )

        # Link-type embeddings (Eq. 5, see module docstring) — one row per
        # edge type plus one for the self-loop pseudo type.
        self.num_edge_kinds = len(self.edge_type_keys) + 1
        self.edge_embedding = Parameter(
            init.normal(rng, (self.num_edge_kinds, d), std=0.1)
        )
        self._edge_kind = {key: i for i, key in enumerate(self.edge_type_keys)}
        self._edge_kind[SELF_LOOP] = len(self.edge_type_keys)

        # Per-layer parameters.
        for l in range(config.num_layers):
            if config.use_attention:
                # Eq. 13: shared W_a applied to φ(h_u, h_e).
                self.register_module(f"W_a_{l}", Linear(d, d, rng, bias=False))
            else:
                # Eq. 3: shared W_a applied to concat(φ(h_u, h_e), h_v).
                self.register_module(f"W_a_{l}", Linear(2 * d, d, rng, bias=False))
            if l < config.num_layers - 1:
                # Eq. 4: link embeddings only feed conv layers 0..L-1, so
                # the last layer needs no further link transformation.
                self.register_module(f"W_b_{l}", Linear(d, d, rng, bias=False))
            # Per-layer citation regressor (Eq. 6).
            self.register_module(f"W_y_{l}", Linear(d, 1, rng))
            if config.use_attention:
                # Node-wise attention a_t per edge kind (Eq. 14) and a
                # shared link-wise attention a_b (Eq. 15); multi-head via
                # `heads` columns, heads averaged after softmax.
                setattr(self, f"a_t_{l}", Parameter(
                    init.xavier_uniform(rng, 3 * d, heads,
                                        shape=(self.num_edge_kinds, 3 * d, heads))))
                setattr(self, f"a_b_{l}", Parameter(
                    init.xavier_uniform(rng, 3 * d, heads)))

    # ------------------------------------------------------------------
    def encode(self, batch: GraphBatch) -> Dict[str, Tensor]:
        """Layer-0 type-aware encoders (Eq. 5)."""
        out = {}
        for t in self.node_types:
            encoder = getattr(self, f"encode_{t}")
            out[t] = encoder(Tensor(batch.features[t])).relu()
        return out

    def edge_kind_index(self, key) -> int:
        return self._edge_kind[key]

    def _edge_embeddings_at_layer(self, layer: int) -> Tensor:
        """h_e^(l): the link-type table pushed through l applications of W_b."""
        table = self.edge_embedding
        for l in range(layer):
            table = getattr(self, f"W_b_{l}")(table)
        return table

    # ------------------------------------------------------------------
    # Fused path (default): batch-structure cache + fused kernels.
    # ------------------------------------------------------------------
    def _aggregate_type_fused(
        self,
        layer: int,
        h_src: Tensor,
        h_dst: Tensor,
        edge_row: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        num_dst: int,
        kind: int,
        sorter: EdgeStructure,
        self_loop: bool = False,
    ) -> Tensor:
        """Fused-kernel :meth:`_aggregate_type`: same math, fewer nodes.

        Numerical identities exploited (each within fp64 rounding of the
        legacy composed path; enforced by tests/test_hgn_fused_equivalence):

        - ``edge_row`` is a ``(1, d)`` row broadcast through φ instead of
          an explicitly tiled ``(E, d)`` gather;
        - ``concat([h_v, e, h_u]) @ a_t`` splits into three partial
          matmuls, where the ``h_v`` part becomes one
          :func:`~repro.tensor.gather_matmul` (the ``(E, d)`` gather of
          ``h_v`` is never materialized) and the ``e`` part collapses to
          a broadcast ``(1, heads)`` row;
        - segment softmax and the α-weighted aggregation run as single
          fused nodes over the cached dst-sorted ordering;
        - the self loop skips its identity gathers entirely.
        """
        d = self.config.dim
        src_view = (None if self_loop
                    else sorter.src_view(h_src.data.shape[0]))
        if self.config.composition == "corr":
            # φ = circular correlation against ONE shared (1, d) link
            # embedding: collapses to a circulant matmul, with the
            # source-side gather fused into the same node (no per-edge
            # FFTs, no (E, d) gather on the tape).
            msg = (circular_correlation_row(h_src, edge_row)
                   if self_loop else
                   circular_correlation_row(h_src, edge_row, index=src,
                                            sorter=src_view))
        else:
            h_u = h_src if self_loop else gather(h_src, src,
                                                 sorter=src_view)
            msg = self.compose(h_u, edge_row)
        W_a = getattr(self, f"W_a_{layer}")

        if not self.config.use_attention:
            W = W_a.weight
            h_v_part = (h_dst @ W[d:] if self_loop
                        else gather_matmul(h_dst, dst, W[d:], sorter=sorter))
            transformed = msg @ W[:d] + h_v_part
            return segment_mean(transformed, dst, num_dst,
                                counts=sorter.counts, sorter=sorter)

        transformed = W_a(msg)  # (E, d)
        a_t = getattr(self, f"a_t_{layer}")[kind]  # (3d, heads)
        v_scores = (h_dst @ a_t[:d] if self_loop
                    else gather_matmul(h_dst, dst, a_t[:d], sorter=sorter))
        # (h_src @ a)[src] == (h_src[src]) @ a exactly: project the N
        # source nodes once, then gather (E, heads) rows — cheaper both
        # ways than a (E, d) @ (d, heads) matmul plus its scatter.
        u_proj = h_src @ a_t[2 * d:]
        u_scores = u_proj if self_loop else gather(u_proj, src,
                                                   sorter=src_view)
        scores = v_scores + edge_row @ a_t[d:2 * d] + u_scores
        scores = scores.leaky_relu(self.config.leaky_slope)
        alpha = segment_softmax_fused(scores, dst, num_dst,
                                      sorter=sorter).mean(axis=1)
        return segment_weighted_sum(transformed, alpha, dst, num_dst,
                                    sorter=sorter)

    def _layer_forward_fused(self, layer: int, h: Dict[str, Tensor],
                             batch: GraphBatch) -> Dict[str, Tensor]:
        """Fused Eq. 13: cached structure, fused kernels, hoisted scores."""
        d = self.config.dim
        edge_table = self._edge_embeddings_at_layer(layer)
        structure = batch.structure
        next_h: Dict[str, Tensor] = {}

        for dst_type in self.node_types:
            num_dst = batch.num_nodes[dst_type]
            aggregates: List[Tensor] = []
            kinds: List[int] = []

            for key in structure.active_keys[dst_type]:
                src, dst, _w, _wn = batch.edges[key]
                kind = self._edge_kind[key]
                n_vt = self._aggregate_type_fused(
                    layer, h[key[0]], h[dst_type],
                    edge_table[kind].reshape(1, d),
                    src, dst, num_dst, kind, structure.edge[key],
                )
                aggregates.append(n_vt)
                kinds.append(kind)

            # Self-loop pseudo type (cached identity structure).
            self_kind = self._edge_kind[SELF_LOOP]
            loop = structure.self_loop(num_dst)
            n_self = self._aggregate_type_fused(
                layer, h[dst_type], h[dst_type],
                edge_table[self_kind].reshape(1, d),
                loop.src, loop.dst, num_dst, self_kind, loop, self_loop=True,
            )
            aggregates.append(n_self)
            kinds.append(self_kind)

            if not self.config.use_attention:
                total = aggregates[0]
                for agg in aggregates[1:]:
                    total = total + agg
                next_h[dst_type] = (total * (1.0 / len(aggregates))).relu()
                continue

            # Link-wise attention (Eq. 15): the h_v score term is shared
            # by every neighbour type, so it is computed once; the edge
            # term is a broadcast (1, heads) row; softmax + mask + the
            # Eq. 13 outer combination run as one fused node.
            a_b = getattr(self, f"a_b_{layer}")  # (3d, heads)
            b_e = a_b[d:2 * d]
            b_n = a_b[2 * d:]
            hv_scores = h[dst_type] @ a_b[:d]  # (N, heads)
            score_cols: List[Tensor] = []
            for n_vt, kind in zip(aggregates, kinds):
                e_row = edge_table[kind].reshape(1, d)
                s = (hv_scores + e_row @ b_e + n_vt @ b_n)
                s = s.leaky_relu(self.config.leaky_slope).mean(axis=1)
                score_cols.append(s.reshape(-1, 1))
            score_mat = concatenate(score_cols, axis=1)  # (N, T)
            combined = masked_softmax_combine(
                score_mat, aggregates, structure.mask[dst_type]
            )
            next_h[dst_type] = combined.relu()
        return next_h

    # ------------------------------------------------------------------
    # Legacy composed-op path (fused=False): the reference semantics the
    # fused kernels are regression-tested against.
    # ------------------------------------------------------------------
    def _aggregate_type(
        self,
        layer: int,
        h_src: Tensor,
        h_dst: Tensor,
        edge_vec: Tensor,
        src: np.ndarray,
        dst: np.ndarray,
        num_dst: int,
        kind: int,
    ) -> Tuple[Tensor, Optional[Tensor]]:
        """Messages of one link type into one destination type.

        Returns the aggregated neighbour embedding n_vt (Eq. 13's inner sum)
        and, under attention, the per-node type-level score input h_nvt.
        """
        d = self.config.dim
        h_u = gather(h_src, src)
        e_tiled = gather(edge_vec.reshape(1, d),
                         np.zeros(len(src), dtype=np.intp))
        msg = self.compose(h_u, e_tiled)
        W_a = getattr(self, f"W_a_{layer}")

        if not self.config.use_attention:
            h_v = gather(h_dst, dst)
            transformed = W_a(concatenate([msg, h_v], axis=1))
            # Mean aggregation keeps magnitudes degree-independent (the
            # paper's Eq. 3 sum, normalized as in Eq. 1's D^-1/2 A D^-1/2).
            return segment_mean(transformed, dst, num_dst), None

        transformed = W_a(msg)  # (E, d)
        h_v = gather(h_dst, dst)
        attn_input = concatenate([h_v, e_tiled, h_u], axis=1)  # (E, 3d)
        a_t = getattr(self, f"a_t_{layer}")[kind]  # (3d, heads)
        scores = (attn_input @ a_t).leaky_relu(self.config.leaky_slope)
        # Segment softmax per head over each destination's in-edges, then
        # average heads (multi-head attention with a shared value map).
        alpha = segment_softmax(scores, dst, num_dst).mean(axis=1)  # (E,)
        weighted = transformed * alpha.reshape(-1, 1)
        n_vt = segment_sum(weighted, dst, num_dst)
        return n_vt, None

    def _layer_forward(self, layer: int, h: Dict[str, Tensor],
                       batch: GraphBatch) -> Dict[str, Tensor]:
        """One full convolution: Eq. 13 over every destination type."""
        if self.config.fused:
            return self._layer_forward_fused(layer, h, batch)
        d = self.config.dim
        edge_table = self._edge_embeddings_at_layer(layer)
        next_h: Dict[str, Tensor] = {}

        for dst_type in self.node_types:
            num_dst = batch.num_nodes[dst_type]
            aggregates: List[Tensor] = []
            kinds: List[int] = []
            presence: List[np.ndarray] = []

            for key, (src, dst, _w, _wn) in batch.edges.items():
                if key[2] != dst_type or len(src) == 0:
                    continue
                kind = self._edge_kind[key]
                n_vt, _ = self._aggregate_type(
                    layer, h[key[0]], h[dst_type], edge_table[kind],
                    src, dst, num_dst, kind,
                )
                aggregates.append(n_vt)
                kinds.append(kind)
                present = np.zeros(num_dst, dtype=bool)
                present[dst] = True
                presence.append(present)

            # Self-loop pseudo type: φ(h_v, e_self) through the same W_a.
            self_kind = self._edge_kind[SELF_LOOP]
            self_ids = np.arange(num_dst, dtype=np.intp)
            n_self, _ = self._aggregate_type(
                layer, h[dst_type], h[dst_type], edge_table[self_kind],
                self_ids, self_ids, num_dst, self_kind,
            )
            aggregates.append(n_self)
            kinds.append(self_kind)
            presence.append(np.ones(num_dst, dtype=bool))

            if not self.config.use_attention:
                total = aggregates[0]
                for agg in aggregates[1:]:
                    total = total + agg
                next_h[dst_type] = (total * (1.0 / len(aggregates))).relu()
                continue

            # Link-wise attention across neighbour types (Eq. 15).
            a_b = getattr(self, f"a_b_{layer}")  # (3d, heads)
            h_v = h[dst_type]
            scores = []
            for n_vt, kind in zip(aggregates, kinds):
                e_vec = edge_table[kind].reshape(1, d)
                e_tiled = gather(e_vec, np.zeros(num_dst, dtype=np.intp))
                attn_input = concatenate([h_v, e_tiled, n_vt], axis=1)
                score = (attn_input @ a_b).leaky_relu(self.config.leaky_slope)
                scores.append(score.mean(axis=1))  # heads averaged -> (N,)
            score_mat = concatenate(
                [s.reshape(-1, 1) for s in scores], axis=1
            )  # (N, T)
            mask = np.stack(presence, axis=1)  # (N, T)
            score_mat = score_mat + Tensor(np.where(mask, 0.0, -1e9))
            alpha_b = softmax(score_mat, axis=1)  # (N, T)
            combined = aggregates[0] * alpha_b[:, 0].reshape(-1, 1)
            for t_idx in range(1, len(aggregates)):
                combined = combined + aggregates[t_idx] * alpha_b[:, t_idx].reshape(-1, 1)
            next_h[dst_type] = combined.relu()
        return next_h

    # ------------------------------------------------------------------
    def forward(self, batch: GraphBatch) -> HGNOutput:
        """Full forward pass: encoder + L convolutions."""
        h = self.encode(batch)
        layers = [h]
        for l in range(self.config.num_layers):
            h = self._layer_forward(l, h, batch)
            layers.append(h)
        return HGNOutput(layers=layers)

    def regress(self, layer: int, embeddings: Tensor) -> Tensor:
        """Citation prediction head of a given layer (Eq. 6), squeezed."""
        # Layer index here counts convolution outputs 1..L; head l-1 stored.
        head = getattr(self, f"W_y_{layer - 1}")
        return head(embeddings).reshape(-1)
