"""Cross-type mutual-information maximization (Section III-C.2).

Aligns and smooths the one-space embeddings across node types: for every
link (u, e, v), the MI between v's next-layer embedding and u's current
embedding is maximized with the Jensen-Shannon estimator (Eq. 10), weighted
by a *learnable* link weight ŵ(e) = sigmoid(h_v^{l+1} · h_u^{l}) that is
itself anchored to the real link weight ω(e) through a negative L2 term
(Eq. 9, 11).  The total unsupervised loss sums over layers (Eq. 12).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..hetnet import negative_nodes
from ..nn import Module, Parameter, init
from ..tensor import Tensor, gather

from .hgn import GraphBatch


class MIEstimator(Module):
    """Bilinear JSD discriminator D(x, y) = x^T W_d y (Eq. 10).

    The paper writes σ(x^T W_d y); a saturating σ inside the soft-plus
    flattens gradients, so — as in DGI/GMI practice — the raw bilinear
    score feeds the JSD estimator directly.
    """

    def __init__(self, dim: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.W_d = Parameter(init.xavier_uniform(rng, dim, dim))

    def score(self, x: Tensor, y: Tensor) -> Tensor:
        """Row-wise bilinear scores for aligned (x_i, y_i) pairs."""
        return ((x @ self.W_d) * y).sum(axis=1)

    def forward(self, x: Tensor, y: Tensor) -> Tensor:
        """Canonical Module entry point — alias of :meth:`score`."""
        return self.score(x, y)

    def loss(
        self,
        layers: List[Dict[str, Tensor]],
        batch: GraphBatch,
        rng: np.random.Generator,
        max_edges_per_type: int = 2000,
    ) -> Tensor:
        """Negative total MI objective (minimize this).

        For each layer transition l -> l+1 and each link type, over (a
        sample of) its links:

            maximize  ŵ(e) · I_JSD(h_v^{l+1}; h_u^{l})  -  (ŵ(e) - ω(e))^2
        """
        total = Tensor(0.0)
        count = 0
        num_layers = len(layers) - 1
        for l in range(num_layers):
            h_lo, h_hi = layers[l], layers[l + 1]
            for key, (src, dst, _w, w_norm) in batch.edges.items():
                if len(src) == 0:
                    continue
                src_type, _, dst_type = key
                if len(src) > max_edges_per_type:
                    pick = rng.choice(len(src), size=max_edges_per_type,
                                      replace=False)
                    src_s, dst_s, w_s = src[pick], dst[pick], w_norm[pick]
                else:
                    src_s, dst_s, w_s = src, dst, w_norm

                h_u = gather(h_lo[src_type], src_s)
                h_v = gather(h_hi[dst_type], dst_s)
                neg_ids = negative_nodes(batch.num_nodes[src_type],
                                         len(src_s), rng, exclude=src_s)
                h_neg = gather(h_lo[src_type], neg_ids)

                pos = self.score(h_v, h_u)
                neg = self.score(h_v, h_neg)
                # Eq. 10 (JSD): I = -sp(-pos) - sp(neg), per pair.
                mi = -(-pos).softplus() - neg.softplus()
                # Eq. 9: learnable link weight from raw embedding dot.
                w_hat = ((h_v * h_u).sum(axis=1)).sigmoid()
                align = (w_hat - Tensor(w_s)) ** 2  # Eq. 11 (negated MI)
                total = total + (align - w_hat * mi).sum()
                count += len(src_s)
        if count == 0:
            return Tensor(0.0)
        return total * (1.0 / count)
