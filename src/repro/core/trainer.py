"""Algorithm 1: the CATE-HGN training loop, packaged as an estimator.

:class:`CATEHGN` exposes the same fit/predict surface as every baseline in
:mod:`repro.baselines`, plus the CA/TE extras (cluster assignments, node
impacts, mined-term history) used by the case studies.

The paper trains with B-sized labeled batches and fixed-size neighbourhood
sampling to bound memory on 2.7M-paper graphs; at this repository's CPU
scale the full graph fits comfortably, so each "mini-iteration" (Algorithm
1, lines 3-9) is a full-batch step — equivalent to B = all labeled papers
and S = ∞.  Sampled mini-batching is available via ``sample_batches`` for
parity with the paper's memory analysis.

Fault tolerance (DESIGN §12): ``fit(dataset, checkpoint_dir=...,
resume=True)`` periodically snapshots the *complete* training state —
model parameters, both Adam states, the RNG bit-generator stream, TE
term sets, history, and the outer-iteration counter — through
:class:`repro.resilience.SnapshotStore` (atomic, checksummed,
keep-last-K).  A run interrupted at any point and resumed from disk
reproduces the uninterrupted run's remaining trajectory **bitwise**.  An
integrated divergence guard additionally rolls NaN/Inf or exploding
steps back to the last good outer iteration with learning-rate backoff
(``CATEHGNConfig.divergence_guard``); every event lands in
``TrainHistory.events``.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..data.dblp import CitationDataset
from ..data.sampling import MinibatchSampler
from ..eval.metrics import rmse
from ..hetnet import PAPER, TERM, HeteroGraph, sample_neighborhood
from ..nn import Adam
from ..resilience import (
    DivergenceGuard,
    DivergenceSignal,
    SnapshotStore,
    faults,
    pack_namespace,
    unpack_namespace,
)
from ..tensor import Tensor, no_grad
from .cluster import concat_one_space
from .hgn import GraphBatch
from .model import CATEHGNConfig, CATEHGNModel
from .text_enhance import TextEnhancer


@dataclass
class TrainHistory:
    """Per-outer-iteration diagnostics."""

    train_loss: List[float] = field(default_factory=list)
    val_rmse: List[float] = field(default_factory=list)
    term_sets: List[List[List[str]]] = field(default_factory=list)
    best_val_rmse: float = float("inf")
    best_iteration: int = -1
    # Wall-clock seconds per outer iteration (perf-benchmark trajectory;
    # see benchmarks/perf).
    iter_seconds: List[float] = field(default_factory=list)
    # Resilience event log (DESIGN §12): one dict per divergence
    # rollback / resume, e.g. {"type": "rollback", "step": 3,
    # "resumed_from": 2, "reason": ..., "lr": [...]}.
    events: List[Dict[str, Any]] = field(default_factory=list)


def _clone_graph(graph: HeteroGraph) -> HeteroGraph:
    full = {t: np.arange(graph.num_nodes[t]) for t in graph.schema.node_types}
    clone, _ = graph.subgraph(full)
    return clone


class CATEHGN:
    """Estimator wrapper: Algorithm 1 end to end.

    Parameters
    ----------
    config:
        Model + optimization configuration; ablation flags select the HGN /
        CA-HGN / CATE-HGN variants (``use_ca`` / ``use_te``).
    sample_batches:
        When set, each mini-iteration trains on a sampled (B, S, L-hop)
        neighbourhood instead of the full graph.
    """

    def __init__(self, config: Optional[CATEHGNConfig] = None,
                 sample_batches: bool = False,
                 batch_size: int = 256, fanout: int = 20) -> None:
        self.config = config or CATEHGNConfig()
        self.sample_batches = sample_batches
        self.batch_size = batch_size
        self.fanout = fanout
        self.model: Optional[CATEHGNModel] = None
        self.history = TrainHistory()
        self._graph: Optional[HeteroGraph] = None
        self._batch: Optional[GraphBatch] = None
        self._base_batch: Optional[GraphBatch] = None
        self._enhancer: Optional[TextEnhancer] = None
        self._term_sets: Optional[List[List[str]]] = None
        self._dataset: Optional[CitationDataset] = None
        # Labels are standardized for optimization and un-standardized at
        # prediction time (regression heads then start near the data scale).
        self._label_mean: float = 0.0
        self._label_std: float = 1.0
        # Internal fit/early-stopping split (see early_stopping_split).
        self._fit_idx: Optional[np.ndarray] = None
        self._stop_idx: Optional[np.ndarray] = None
        # Training-loop state (instance-held so snapshot/rollback can
        # capture and restore it mid-run; see _training_state).
        self._rng: Optional[np.random.Generator] = None
        self._opt_main: Optional[Adam] = None
        self._opt_centers: Optional[Adam] = None
        self._main_params: List[Any] = []
        self._best_state: Optional[Dict[str, np.ndarray]] = None
        self._best_terms: Optional[List[List[str]]] = None
        self._bad_iters: int = 0
        self._outer_done: int = -1
        self._guard: Optional[DivergenceGuard] = None
        # Minibatch pipeline (DESIGN §15): set by fit(sampler=...).
        self._sampler: Optional[MinibatchSampler] = None
        self._batch_policy: Optional[str] = None

    # ------------------------------------------------------------------
    def fit(self, dataset: CitationDataset, *,
            checkpoint_dir: Optional[Union[str, Path]] = None,
            resume: bool = False,
            checkpoint_every: int = 1,
            keep_last: int = 3,
            validate: Optional[str] = None,
            sampler: Optional[MinibatchSampler] = None) -> "CATEHGN":
        """Run Algorithm 1; optionally checkpointed and resumable.

        Parameters
        ----------
        checkpoint_dir:
            When given, the complete training state is snapshotted there
            every ``checkpoint_every`` outer iterations (atomic +
            checksummed, ``keep_last`` files retained).
        resume:
            Load the newest *valid* snapshot from ``checkpoint_dir`` and
            continue from it; the remaining trajectory is bitwise
            identical to the uninterrupted run's.  With no usable
            snapshot the run starts fresh.
        validate:
            Contract policy for the dataset graph (DESIGN §13):
            ``"strict"`` raises :class:`~repro.contracts.ContractViolation`
            on any violation, ``"repair"`` quarantines offending records
            (a ``"quarantine"`` event with the machine-readable report is
            appended to ``history.events``) and trains on the repaired
            graph, ``"warn"`` warns and proceeds.  On clean data every
            policy is trajectory-neutral — the graph object is passed
            through untouched, pinned by ``test_golden_metrics.py``.
        sampler:
            A :class:`~repro.data.sampling.MinibatchSampler` switches
            the mini-iterations of Algorithm 1 to neighbor-sampled
            minibatches (DESIGN §15): each step samples a fresh seed
            batch with its k-hop typed neighborhood and applies one
            optimizer update on that subgraph.  The sampler is bound to
            the (TE-rewritten) training graph and the fit split; its
            cursor and RNG stream ride the snapshot protocol, so
            kill-and-resume replays the identical remaining batch
            sequence.  Contract validation (``validate=``) then also
            runs per minibatch.  Center updates, TE refinement, and
            evaluation stay full-batch at this repository's scale.

        Raises
        ------
        repro.resilience.TrainingDivergedError
            If the divergence guard exhausts its rollback budget.
        """
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")
        if validate is not None:
            dataset = self._validate_dataset(dataset, validate)
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)
        self._dataset = dataset
        self._fit_idx, self._stop_idx = dataset.early_stopping_split()
        train_labels = dataset.labels[self._fit_idx]
        self._label_mean = float(train_labels.mean()) if len(train_labels) else 0.0
        self._label_std = float(train_labels.std()) if len(train_labels) else 1.0
        if self._label_std < 1e-8:
            self._label_std = 1.0
        graph = _clone_graph(dataset.graph)

        if cfg.use_te:
            self._enhancer = TextEnhancer(dataset.text, dataset.domain_names,
                                          cfg.te_config())
            self._term_sets = self._enhancer.bootstrap(
                fallback_terms=dataset.term_tokens
            )
            self._enhancer.rebuild_graph_terms(graph, self._term_sets)
        self._graph = graph

        self._base_batch = self._make_batch(graph, dataset)
        batch = self._augment_eval(self._base_batch)
        self._batch = batch
        self._sampler = sampler
        self._batch_policy = validate if sampler is not None else None
        if sampler is not None:
            sampler.bind(graph, self._fit_idx,
                         self._normalize(dataset.labels[self._fit_idx]),
                         hops=cfg.num_layers)
        if cfg.fused:
            # Warm the shared structure cache once, outside the timed
            # loop; every mini-iteration / eval pass below reuses it.
            self._base_batch.structure

        feature_dims = {t: batch.features[t].shape[1] for t in batch.node_types}
        self.model = CATEHGNModel(cfg, batch.node_types, feature_dims,
                                  list(batch.edges.keys()))
        if cfg.use_ca:
            self._initialize_centers(batch)

        center_params = (self.model.ca.center_parameters()
                         if self.model.ca is not None else [])
        center_ids = {id(p) for p in center_params}
        self._main_params = [p for p in self.model.parameters()
                             if id(p) not in center_ids]
        self._opt_main = Adam(self._main_params, lr=cfg.lr,
                              weight_decay=cfg.weight_decay)
        self._opt_centers = (Adam(center_params, lr=cfg.center_lr)
                             if center_params else None)

        self._best_state = None
        self._best_terms = copy.deepcopy(self._term_sets)
        self._bad_iters = 0
        self._outer_done = -1

        store: Optional[SnapshotStore] = None
        if checkpoint_dir is not None:
            store = SnapshotStore(checkpoint_dir, keep_last=keep_last)
        if resume and store is not None:
            snapshot = store.load_latest()
            if snapshot is not None:
                self._check_resume_config(snapshot.meta)
                self._load_training_state(snapshot.meta, snapshot.arrays)
                self.history.events.append({
                    "type": "resume",
                    "step": int(snapshot.step),
                    "path": str(snapshot.path),
                })

        guard: Optional[DivergenceGuard] = None
        if cfg.divergence_guard:
            guard = DivergenceGuard(
                capture=self._training_state,
                restore=lambda state: self._load_training_state(*state),
                optimizers=[self._opt_main, self._opt_centers],
                max_rollbacks=cfg.max_rollbacks,
                lr_backoff=cfg.lr_backoff,
                explode_factor=cfg.explode_factor,
            )
            guard.adopt_history(self.history.events)
            guard.record_good(self._outer_done)
        self._guard = guard

        outer = self._outer_done + 1
        try:
            while outer < cfg.outer_iters:
                if self._bad_iters >= cfg.patience:
                    break  # resumed run had already early-stopped
                faults.fire("trainer.outer", outer=outer)
                try:
                    stop = self._outer_iteration(outer)
                except DivergenceSignal as signal:
                    event = guard.rollback(step=outer, reason=str(signal))
                    self.history.events.append(event)
                    continue  # retry the same outer iteration, lower LR
                self._outer_done = outer
                if guard is not None:
                    guard.record_good(outer)
                if store is not None and (
                        outer % max(1, checkpoint_every) == 0
                        or stop or outer == cfg.outer_iters - 1):
                    meta, arrays = self._training_state()
                    store.save(outer, meta, arrays)
                if stop:
                    break
                outer += 1
        finally:
            self._guard = None

        if self._best_state is not None:
            if (cfg.use_te and self._best_terms is not None
                    and self._enhancer is not None):
                self._term_sets = self._best_terms
                self._enhancer.rebuild_graph_terms(self._graph,
                                                   self._best_terms)
                self._base_batch = self._make_batch(self._graph, dataset)
                self._batch = self._augment_eval(self._base_batch)
            self.model.load_state_dict(self._best_state)
        return self

    # ------------------------------------------------------------------
    def _validate_dataset(self, dataset: CitationDataset,
                          policy: str) -> CitationDataset:
        """Validate-before-train (DESIGN §13).

        Clean graphs pass through by identity (bitwise-neutral); under
        ``repair`` a poisoned graph is rebuilt and the quarantine report
        is recorded as a JSON-safe ``"quarantine"`` event in
        ``history.events``.
        """
        from dataclasses import replace

        from ..contracts import validate_graph

        graph, report = validate_graph(dataset.graph, policy=policy,
                                       subject="training graph")
        if graph is dataset.graph:
            return dataset
        self.history.events.append({
            "type": "quarantine",
            "policy": policy,
            "report": report.to_dict(),
        })
        return replace(dataset, graph=graph)

    def _outer_iteration(self, outer: int) -> bool:
        """One outer iteration (Algorithm 1 lines 3-11); True = early stop.

        Raises :class:`DivergenceSignal` when the guard trips; the
        caller rolls back and retries.
        """
        cfg = self.config
        rng = self._rng
        guard = self._guard
        iter_start = time.perf_counter()

        # Lines 3-9: I mini-iterations of HGN updates (centers frozen).
        loss_value = 0.0
        for mini in range(cfg.mini_iters):
            if self._sampler is not None:
                mini_batch = self._sampled_step_batch()
            else:
                mini_batch = self._augment_step(
                    self._sample_mini_batch(self._base_batch, self._dataset,
                                            rng),
                    rng,
                )
            try:
                with self._anomaly_context():
                    state = self.model.forward_state(mini_batch)
                    loss = self.model.hgn_loss(state, mini_batch, rng)
                    self._opt_main.zero_grad()
                    if self._opt_centers is not None:
                        self._opt_centers.zero_grad()
                    loss.backward()
            except FloatingPointError as exc:
                # detect_anomaly's AnomalyError subclasses this: route
                # the sanitizer's signal into the rollback machinery.
                if guard is None:
                    raise
                raise DivergenceSignal(f"tape sanitizer: {exc}") from exc
            faults.fire("trainer.grad", outer=outer, mini=mini,
                        params=self._main_params)
            grad_norm = self._opt_main.clip_grad_norm(cfg.grad_clip)
            loss_value = float(loss.data)
            if guard is not None:
                guard.check_step(loss_value, grad_norm)
            self._opt_main.step()
        self.history.train_loss.append(loss_value)

        # Line 10: update cluster centers with the CA loss.
        if self._opt_centers is not None:
            for _ in range(cfg.center_iters):
                try:
                    with self._anomaly_context():
                        state = self.model.forward_state(self._batch)
                        ca_loss = self.model.ca_loss(state)
                        self._opt_main.zero_grad()
                        self._opt_centers.zero_grad()
                        ca_loss.backward()
                except FloatingPointError as exc:
                    if guard is None:
                        raise
                    raise DivergenceSignal(
                        f"tape sanitizer (center step): {exc}") from exc
                ca_value = float(ca_loss.data)
                if guard is not None and not np.isfinite(ca_value):
                    raise DivergenceSignal(
                        f"non-finite center loss ({ca_value!r})"
                    )
                self._opt_centers.step()

        # Line 11: adaptive term refinement (TE).
        if (cfg.use_te and cfg.te_iterative and self._enhancer is not None
                and outer > 0 and outer % cfg.refine_every == 0):
            self._refine_terms(self._dataset)
            self._base_batch = self._make_batch(self._graph, self._dataset)
            self._batch = self._augment_eval(self._base_batch)
            if cfg.use_ca:
                # Term-enhanced clustering (Sec. III-E1) interleaved
                # with refinement: re-anchor the centers on the new
                # term sets so clusters track the research domains
                # instead of drifting as embeddings move.
                self._initialize_centers(self._batch)
        if cfg.use_te:
            self.history.term_sets.append(copy.deepcopy(self._term_sets))

        # Convergence tracking on the validation year.
        val_rmse = self._validation_rmse(self._dataset)
        if guard is not None and not np.isfinite(val_rmse):
            raise DivergenceSignal(
                f"non-finite validation RMSE ({val_rmse!r})"
            )
        self.history.iter_seconds.append(time.perf_counter() - iter_start)
        self.history.val_rmse.append(val_rmse)
        if val_rmse < self.history.best_val_rmse - 1e-6:
            self.history.best_val_rmse = val_rmse
            self.history.best_iteration = outer
            self._best_state = self.model.state_dict()
            self._best_terms = copy.deepcopy(self._term_sets)
            self._bad_iters = 0
        else:
            self._bad_iters += 1
            if self._bad_iters >= cfg.patience:
                return True
        return False

    # ------------------------------------------------------------------
    # Snapshot / restore of the complete training state (DESIGN §12).
    # ------------------------------------------------------------------
    def _training_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """(meta, arrays) capturing everything the loop needs to continue.

        Used both for disk snapshots (:class:`SnapshotStore`) and the
        divergence guard's in-memory last-good copy; everything is
        copied, nothing aliases live training state.
        """
        history = self.history
        meta: Dict[str, Any] = {
            "kind": "catehgn-train",
            "outer": int(self._outer_done),
            "config": asdict(self.config),
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "term_sets": copy.deepcopy(self._term_sets),
            "best_terms": copy.deepcopy(self._best_terms),
            "bad_iters": int(self._bad_iters),
            "has_best": self._best_state is not None,
            "label_mean": self._label_mean,
            "label_std": self._label_std,
            "history": {
                "train_loss": list(history.train_loss),
                "val_rmse": list(history.val_rmse),
                "iter_seconds": list(history.iter_seconds),
                "term_sets": copy.deepcopy(history.term_sets),
                "best_val_rmse": history.best_val_rmse,
                "best_iteration": history.best_iteration,
                "events": copy.deepcopy(history.events),
            },
        }
        if self._sampler is not None:
            # Item cursor + neighbor RNG stream: a resumed run replays
            # the identical remaining batch sequence (sample-resume
            # drill).  The fingerprint guards against resuming under a
            # different sampling configuration.
            meta["sampler"] = copy.deepcopy(self._sampler.state_dict())
            meta["sampler_fingerprint"] = self._sampler.fingerprint()
        arrays: Dict[str, np.ndarray] = {}
        pack_namespace(arrays, "model", self.model.state_dict())
        if self._best_state is not None:
            pack_namespace(arrays, "best", self._best_state)
        pack_namespace(arrays, "opt_main", self._opt_main.state_dict())
        if self._opt_centers is not None:
            pack_namespace(arrays, "opt_centers",
                           self._opt_centers.state_dict())
        return meta, arrays

    def _load_training_state(self, meta: Dict[str, Any],
                             arrays: Dict[str, np.ndarray]) -> None:
        """Restore a :meth:`_training_state` capture into the live run."""
        cfg = self.config
        self._outer_done = int(meta["outer"])
        self._label_mean = float(meta["label_mean"])
        self._label_std = float(meta["label_std"])
        self._term_sets = copy.deepcopy(meta["term_sets"])
        self._best_terms = copy.deepcopy(meta["best_terms"])
        self._bad_iters = int(meta["bad_iters"])
        if (cfg.use_te and self._enhancer is not None
                and self._term_sets is not None):
            self._enhancer.rebuild_graph_terms(self._graph, self._term_sets)
        self._base_batch = self._make_batch(self._graph, self._dataset)
        self._batch = self._augment_eval(self._base_batch)
        self.model.load_state_dict(unpack_namespace(arrays, "model"))
        self._best_state = (unpack_namespace(arrays, "best")
                            if meta["has_best"] else None)
        self._opt_main.load_state_dict(unpack_namespace(arrays, "opt_main"))
        if self._opt_centers is not None:
            self._opt_centers.load_state_dict(
                unpack_namespace(arrays, "opt_centers")
            )
        self._rng.bit_generator.state = copy.deepcopy(meta["rng_state"])
        if self._sampler is not None and meta.get("sampler") is not None:
            self._sampler.load_state_dict(copy.deepcopy(meta["sampler"]))
        saved = meta["history"]
        history = self.history
        history.train_loss = list(saved["train_loss"])
        history.val_rmse = list(saved["val_rmse"])
        history.iter_seconds = list(saved["iter_seconds"])
        history.term_sets = copy.deepcopy(saved["term_sets"])
        history.best_val_rmse = float(saved["best_val_rmse"])
        history.best_iteration = int(saved["best_iteration"])
        history.events = copy.deepcopy(saved["events"])

    def _check_resume_config(self, meta: Dict[str, Any]) -> None:
        if meta.get("kind") != "catehgn-train":
            raise ValueError(
                f"snapshot kind {meta.get('kind')!r} is not a CATE-HGN "
                f"training snapshot"
            )
        saved = meta.get("config", {})
        current = asdict(self.config)
        diff = sorted(
            key for key in set(saved) | set(current)
            if saved.get(key) != current.get(key)
        )
        if diff:
            raise ValueError(
                "cannot resume: snapshot was written under a different "
                f"configuration (differing keys: {diff}); refit from "
                "scratch or restore the original config"
            )
        saved_fp = meta.get("sampler_fingerprint")
        current_fp = (self._sampler.fingerprint()
                      if self._sampler is not None else None)
        # json round-trips the saved fingerprint, so compare through it.
        if saved_fp != (None if current_fp is None
                        else json.loads(json.dumps(current_fp))):
            raise ValueError(
                "cannot resume: snapshot was written under a different "
                f"minibatch-sampler configuration (snapshot: {saved_fp!r}, "
                f"current: {current_fp!r}); refit from scratch or restore "
                "the original sampler"
            )

    # ------------------------------------------------------------------
    def _anomaly_context(self):
        """Opt-in tape sanitizer around one optimization step.

        Unused-parameter auditing stays off (``modules=()``): Algorithm 1
        deliberately freezes the cluster centers during mini-iterations
        (and everything but the centers during line 10), so a ``grad is
        None`` audit would flag intentional behaviour every step.
        """
        if not self.config.debug_anomaly:
            from contextlib import nullcontext

            return nullcontext()
        from ..analysis import detect_anomaly

        return detect_anomaly()

    def _augment_eval(self, batch: GraphBatch) -> GraphBatch:
        """Inference-time batch: every fit label visible in the input."""
        if not self.config.use_label_inputs:
            return batch
        return batch.with_label_inputs(batch.labeled_ids, batch.labels,
                                       batch.labeled_ids, batch.labels)

    def _augment_step(self, batch: GraphBatch,
                      rng: np.random.Generator) -> GraphBatch:
        """Training-step batch: a random half of the fit labels feeds the
        input channels; the loss is taken on the hidden half, so no paper
        sees its own label."""
        if not self.config.use_label_inputs:
            return batch
        hidden = rng.random(len(batch.labeled_ids)) < self.config.label_mask_rate
        if hidden.all() or not hidden.any():
            hidden[rng.integers(len(hidden))] ^= True
        return batch.with_label_inputs(
            batch.labeled_ids[~hidden], batch.labels[~hidden],
            batch.labeled_ids[hidden], batch.labels[hidden],
        )

    def _normalize(self, labels: np.ndarray) -> np.ndarray:
        return (labels - self._label_mean) / self._label_std

    def _denormalize(self, preds: np.ndarray) -> np.ndarray:
        return preds * self._label_std + self._label_mean

    def _make_batch(self, graph: HeteroGraph,
                    dataset: CitationDataset) -> GraphBatch:
        labels = self._normalize(dataset.labels[self._fit_idx])
        # share_structure: term refinement rebuilds batches from the same
        # graph object; when a refinement round leaves the topology
        # untouched the structure cache carries over, and TE's
        # set_edges() rewrites invalidate it via the topology version.
        return GraphBatch.from_graph(graph, self._fit_idx, labels,
                                     share_structure=True)

    def _sampled_step_batch(self) -> GraphBatch:
        """One neighbor-sampled training batch (the ``sampler=`` path).

        Contracts run per minibatch under the ``fit(validate=)`` policy;
        the label-input channels are deterministic — known labels of the
        non-seed papers in the subgraph feed the input, the loss is
        taken on the seeds, and a seed never sees its own label (the
        sampled analogue of :meth:`_augment_step`'s random masking,
        without spending trainer RNG).
        """
        mb = self._sampler.next_minibatch()
        batch = mb.batch
        if self._batch_policy is not None:
            from ..contracts import validate_batch

            batch, report = validate_batch(batch, policy=self._batch_policy)
            if batch is not mb.batch:
                self.history.events.append({
                    "type": "quarantine",
                    "scope": "minibatch",
                    "policy": self._batch_policy,
                    "report": report.to_dict(),
                })
        if self.config.use_label_inputs:
            batch = batch.with_label_inputs(mb.input_local, mb.input_values,
                                            batch.labeled_ids, batch.labels)
        return batch

    def _sample_mini_batch(self, batch: GraphBatch, dataset: CitationDataset,
                           rng: np.random.Generator) -> GraphBatch:
        if not self.sample_batches:
            return batch
        seeds = rng.choice(self._fit_idx,
                           size=min(self.batch_size, len(self._fit_idx)),
                           replace=False)
        sub, selected, seed_local = sample_neighborhood(
            self._graph, seeds, hops=self.config.num_layers,
            fanout=self.fanout, rng=rng,
        )
        labels = self._normalize(dataset.labels[selected[PAPER][seed_local]])
        return GraphBatch.from_graph(sub, seed_local, labels)

    def _initialize_centers(self, batch: GraphBatch) -> None:
        """Term-seeded (TE) or data-seeded (random rows) center init."""
        cfg = self.config
        with no_grad():  # centers are set from raw arrays, never backprop
            state = self.model.forward_state(batch)
        rng = np.random.default_rng(cfg.seed + 1)
        term_offset = batch.slices[TERM][0] if TERM in batch.slices else 0
        term_names = None
        if cfg.use_te and self._term_sets is not None and self._graph is not None:
            term_names = {name: i for i, name
                          in enumerate(self._graph.node_names[TERM])}
        for l in range(cfg.num_layers + 1):
            h_all = concat_one_space(state.output.layers[l],
                                     batch.node_types).data
            # Centers live on the unit sphere, matching soft_assign's
            # normalized distances.
            h_all = h_all / np.maximum(
                np.linalg.norm(h_all, axis=1, keepdims=True), 1e-12
            )
            K = cfg.num_clusters
            centers = np.empty((K, cfg.dim))
            filled = 0
            if term_names is not None:
                for k, terms in enumerate(self._term_sets):
                    if k >= K:
                        break
                    rows = [term_offset + term_names[t] for t in terms
                            if t in term_names]
                    if rows:
                        centers[k] = h_all[rows].mean(axis=0)
                    else:
                        centers[k] = h_all[rng.integers(len(h_all))]
                    filled = k + 1
            for k in range(filled, K):
                centers[k] = h_all[rng.integers(len(h_all))]
            centers /= np.maximum(
                np.linalg.norm(centers, axis=1, keepdims=True), 1e-12
            )
            self.model.ca.set_centers(l, centers)

    def _refine_terms(self, dataset: CitationDataset) -> None:
        """Line 11: impact-based voting over the current term sets."""
        impacts_arr = self.model.node_impacts(self._batch, TERM)
        tokens = self._graph.node_names[TERM]
        impacts = {t: float(v) for t, v in zip(tokens, impacts_arr)}
        self._term_sets = self._enhancer.refine(self._term_sets, impacts)
        self._enhancer.rebuild_graph_terms(self._graph, self._term_sets)

    def _validation_rmse(self, dataset: CitationDataset) -> float:
        preds = self.predict()
        return rmse(dataset.labels[self._stop_idx], preds[self._stop_idx])

    # ------------------------------------------------------------------
    # Estimator API shared with the baselines.
    # ------------------------------------------------------------------
    def predict(self, dataset: Optional[CitationDataset] = None) -> np.ndarray:
        """Citation predictions for every paper of the fitted dataset."""
        if self.model is None or self._batch is None:
            raise RuntimeError("call fit() first")
        raw = self.model.predict_papers(self._batch)
        return np.maximum(self._denormalize(raw), 0.0)

    def save_checkpoint(self, path) -> str:
        """Persist the fitted model to a versioned checkpoint (+ graph).

        Writes ``<path>.npz`` (weights, config, architecture, label-scale
        statistics, text embeddings for cold-start scoring) and a
        ``<path>.graph.npz/.json`` sidecar holding the TE-rewritten graph,
        so :class:`repro.serve.InferenceEngine` restores bitwise-identical
        predictions without the training dataset.
        """
        from ..serve.checkpoint import save_catehgn  # lazy import

        return str(save_catehgn(self, path))

    # Extras for the case studies (Table III, Fig. 5).
    def cluster_assignments(self) -> Dict[str, np.ndarray]:
        return self.model.cluster_assignments(self._batch)

    def soft_memberships(self, layer: Optional[int] = None) -> Dict[str, np.ndarray]:
        return self.model.soft_memberships(self._batch, layer=layer)

    def node_impacts(self, node_type: str,
                     cluster: Optional[int] = None) -> np.ndarray:
        return self.model.node_impacts(self._batch, node_type, cluster)

    def domain_cluster(self, domain: int, layer: Optional[int] = None) -> int:
        """The learned cluster corresponding to a research domain.

        Clusters are seeded from the per-domain term sets but may drift or
        swap during training; the domain-name anchor term's strongest
        membership recovers the mapping at analysis time.
        """
        name = self._dataset.domain_names[domain]
        term_names = self._graph.node_names.get(TERM, []) if self._graph else []
        if name in term_names:
            idx = term_names.index(name)
            q = self.soft_memberships(layer=layer)[TERM]
            return int(q[idx].argmax())
        return domain

    @property
    def term_sets(self) -> Optional[List[List[str]]]:
        return self._term_sets

    @property
    def term_history(self) -> List[List[List[str]]]:
        return self.history.term_sets
