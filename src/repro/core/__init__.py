"""CATE-HGN core: the paper's primary contribution."""

from .cluster import CAConfig, ClusterModule, concat_one_space
from .composition import COMPOSITIONS, get_composition
from .dynamic import AgingProfile, DynamicCitationModel
from .hgn import GraphBatch, HGNConfig, HGNOutput, OneSpaceHGN
from .mi import MIEstimator
from .model import CATEHGNConfig, CATEHGNModel, ForwardState
from .text_enhance import TEConfig, TextEnhancer
from .trainer import CATEHGN, TrainHistory

__all__ = [
    "CATEHGN",
    "CATEHGNConfig",
    "CATEHGNModel",
    "ForwardState",
    "TrainHistory",
    "OneSpaceHGN",
    "HGNConfig",
    "HGNOutput",
    "GraphBatch",
    "MIEstimator",
    "ClusterModule",
    "CAConfig",
    "concat_one_space",
    "TextEnhancer",
    "TEConfig",
    "COMPOSITIONS",
    "get_composition",
    "DynamicCitationModel",
    "AgingProfile",
]
