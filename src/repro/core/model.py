"""The CATE-HGN model: HGN backbone + CA masking + MI alignment.

:class:`CATEHGNModel` is the trainable network; the Algorithm-1 training
loop and the TE graph-rewriting live in :mod:`repro.core.trainer`.  Every
novel component carries an ablation flag so the Fig.-4(a) variants are the
same code path with switches, not re-implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hetnet.schema import PAPER, EdgeTypeKey
from ..nn import Module
from ..tensor import Tensor, gather, no_grad
from .cluster import CAConfig, ClusterModule, concat_one_space
from .hgn import GraphBatch, HGNConfig, HGNOutput, OneSpaceHGN
from .mi import MIEstimator
from .text_enhance import TEConfig


@dataclass
class CATEHGNConfig:
    """All knobs of CATE-HGN, defaulting to the paper's setting at CPU scale.

    Ablation switches (Fig. 4(a)):
      composition in {"sub", "mult", "corr"}; use_mi; use_attention;
      use_self_training / use_consistency / use_disparity (CA);
      te_bert_init / te_tfidf / te_iterative (TE);
      use_ca=False gives plain HGN; use_te=False gives CA-HGN.
    """

    # HGN (Section III-C).
    dim: int = 32
    num_layers: int = 2
    composition: str = "corr"
    attention_heads: int = 4
    use_attention: bool = True
    # Fused message-passing kernels + batch-structure cache (DESIGN §10);
    # False selects the legacy composed-op path (equivalence testing).
    fused: bool = True
    use_mi: bool = True
    lambda_mi: float = 0.1
    mi_max_edges: int = 1500

    # CA (Section III-D).
    use_ca: bool = True
    num_clusters: int = 10
    lambda_st: float = 0.1
    lambda_con: float = 0.1
    lambda_dis: float = 0.1
    use_self_training: bool = True
    use_consistency: bool = True
    use_disparity: bool = True

    # TE (Section III-E).
    use_te: bool = True
    kappa: int = 50
    te_bert_init: bool = True
    te_tfidf: bool = True
    te_iterative: bool = True
    refine_every: int = 2  # outer iterations between term refinements

    # Known-label input channels (masked label propagation; see
    # GraphBatch.with_label_inputs).
    use_label_inputs: bool = True
    label_mask_rate: float = 0.5

    # Optimization (Algorithm 1).
    lr: float = 0.01
    weight_decay: float = 1e-3
    center_lr: float = 0.05
    outer_iters: int = 12
    mini_iters: int = 5  # I: HGN updates per outer iteration
    center_iters: int = 2
    grad_clip: float = 5.0
    patience: int = 4
    seed: int = 0

    # Opt-in tape sanitizer (repro.analysis.detect_anomaly): flags NaN/Inf
    # at the op that produced it during every optimization step.  Costs one
    # reduction per op — debugging only, leave off for benchmarks.
    debug_anomaly: bool = False

    # Divergence guard (DESIGN §12): on NaN/Inf loss/gradients or a loss
    # explosion beyond explode_factor × the last healthy loss, roll back
    # to the last good outer-iteration state, multiply learning rates by
    # lr_backoff, and retry — up to max_rollbacks times, after which
    # TrainingDivergedError is raised.  The guard is trajectory-neutral
    # while training is healthy (golden metrics pin this), so it
    # defaults on.
    divergence_guard: bool = True
    max_rollbacks: int = 3
    lr_backoff: float = 0.5
    explode_factor: float = 1e6

    def hgn_config(self) -> HGNConfig:
        return HGNConfig(dim=self.dim, num_layers=self.num_layers,
                         composition=self.composition,
                         attention_heads=self.attention_heads,
                         use_attention=self.use_attention, seed=self.seed,
                         fused=self.fused)

    def ca_config(self) -> CAConfig:
        return CAConfig(num_clusters=self.num_clusters,
                        lambda_st=self.lambda_st,
                        lambda_con=self.lambda_con,
                        lambda_dis=self.lambda_dis,
                        use_self_training=self.use_self_training,
                        use_consistency=self.use_consistency,
                        use_disparity=self.use_disparity, seed=self.seed)

    def te_config(self) -> TEConfig:
        return TEConfig(kappa=self.kappa, use_bert_init=self.te_bert_init,
                        use_tfidf=self.te_tfidf,
                        iterative=self.te_iterative, seed=self.seed)


@dataclass
class ForwardState:
    """One forward pass plus the CA-derived views of it."""

    output: HGNOutput
    # Per layer: soft assignments over the concatenated one space.
    qs: List[Tensor] = field(default_factory=list)
    # Per layer: node-type -> masked embeddings (== raw when CA is off).
    masked: List[Dict[str, Tensor]] = field(default_factory=list)


class CATEHGNModel(Module):
    """HGN + optional MI estimator + optional CA module."""

    def __init__(self, config: CATEHGNConfig, node_types: List[str],
                 feature_dims: Dict[str, int],
                 edge_type_keys: List[EdgeTypeKey]) -> None:
        super().__init__()
        self.config = config
        self.node_types = list(node_types)
        self.hgn = OneSpaceHGN(config.hgn_config(), node_types,
                               feature_dims, edge_type_keys)
        self.mi = MIEstimator(config.dim, seed=config.seed) if config.use_mi else None
        self.ca = (ClusterModule(config.ca_config(), config.dim,
                                 config.num_layers)
                   if config.use_ca else None)

    # ------------------------------------------------------------------
    def forward(self, batch: GraphBatch) -> ForwardState:
        """Canonical Module entry point — alias of :meth:`forward_state`."""
        return self.forward_state(batch)

    def forward_state(self, batch: GraphBatch) -> ForwardState:
        output = self.hgn(batch)
        state = ForwardState(output=output)
        for l, layer_h in enumerate(output.layers):
            if self.ca is None:
                state.qs.append(None)
                state.masked.append(layer_h)
                continue
            h_all = concat_one_space(layer_h, self.node_types)
            q = self.ca.soft_assign(h_all, l)
            state.qs.append(q)
            masked_all = self.ca.mask_embeddings(h_all, q, l)
            masked = {}
            for t in self.node_types:
                lo, n = batch.slices[t]
                masked[t] = masked_all[lo:lo + n]
            state.masked.append(masked)
        return state

    # ------------------------------------------------------------------
    def supervised_loss(self, state: ForwardState, batch: GraphBatch) -> Tensor:
        """Eq. 6 over all layers, on (masked) paper embeddings."""
        if len(batch.labeled_ids) == 0:
            return Tensor(0.0)
        target = Tensor(batch.labels)
        total = Tensor(0.0)
        L = self.config.num_layers
        for l in range(1, L + 1):
            h_paper = state.masked[l][PAPER]
            pred = self.hgn.regress(l, gather(h_paper, batch.labeled_ids))
            diff = pred - target
            total = total + (diff * diff).mean()
        return total * (1.0 / L)

    def unsupervised_loss(self, state: ForwardState, batch: GraphBatch,
                          rng: np.random.Generator) -> Tensor:
        """Eq. 12 on the masked embeddings (Algorithm 1, line 7)."""
        if self.mi is None:
            return Tensor(0.0)
        return self.mi.loss(state.masked, batch, rng,
                            max_edges_per_type=self.config.mi_max_edges)

    def hgn_loss(self, state: ForwardState, batch: GraphBatch,
                 rng: np.random.Generator) -> Tensor:
        """Eq. 2: L_sup + λ L_unsup."""
        loss = self.supervised_loss(state, batch)
        if self.mi is not None:
            loss = loss + self.unsupervised_loss(state, batch, rng) * self.config.lambda_mi
        return loss

    def ca_loss(self, state: ForwardState) -> Tensor:
        """Eq. 22 (drives the cluster-center updates, Algorithm 1 line 10)."""
        if self.ca is None:
            return Tensor(0.0)
        return self.ca.losses(state.qs)

    # ------------------------------------------------------------------
    def predict_papers(self, batch: GraphBatch) -> np.ndarray:
        """Citation predictions for every paper (last layer, Eq. 6 head).

        Predictions are on the trainer's (standardized) label scale; the
        estimator wrapper un-standardizes and floors at zero citations.

        Runs tape-free: the forward executes under
        :func:`~repro.tensor.no_grad`, so no backward closures or tape
        nodes are allocated (the numbers are bitwise-identical to a
        grad-mode forward — inference mode only skips bookkeeping).
        """
        with no_grad():
            state = self.forward_state(batch)
            L = self.config.num_layers
            pred = self.hgn.regress(L, state.masked[L][PAPER])
        return pred.data

    def node_impacts(self, batch: GraphBatch, node_type: str,
                     cluster: Optional[int] = None) -> np.ndarray:
        """Impact score of every node of ``node_type`` (Table III).

        With ``cluster`` given, embeddings are masked with that specific
        research domain's mask — the node's impact *within* that domain.
        """
        with no_grad():
            state = self.forward_state(batch)
            L = self.config.num_layers
            if cluster is not None and self.ca is not None:
                h = self.ca.mask_with_cluster(
                    state.output.layers[L][node_type], cluster, L
                )
            else:
                h = state.masked[L][node_type]
            return self.hgn.regress(L, h).data

    def cluster_assignments(self, batch: GraphBatch,
                            layer: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Hard domain assignment per node type (last layer by default)."""
        if self.ca is None:
            raise RuntimeError("cluster assignments require use_ca=True")
        with no_grad():
            state = self.forward_state(batch)
        l = self.config.num_layers if layer is None else layer
        q = state.qs[l].data
        out = {}
        for t in self.node_types:
            lo, n = batch.slices[t]
            out[t] = q[lo:lo + n].argmax(axis=1)
        return out

    def soft_memberships(self, batch: GraphBatch,
                         layer: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Soft q_vk per node type."""
        if self.ca is None:
            raise RuntimeError("memberships require use_ca=True")
        with no_grad():
            state = self.forward_state(batch)
        l = self.config.num_layers if layer is None else layer
        q = state.qs[l].data
        return {t: q[batch.slices[t][0]:batch.slices[t][0] + batch.slices[t][1]]
                for t in self.node_types}
