"""Cluster-aware (CA) module (Section III-D).

Jointly infers latent research domains and domain-specific impacts:

- soft Student-t assignments of *all* nodes (the one space makes papers,
  authors, venues and terms clusterable together) to K trainable centers
  per layer (Eq. 16);
- self-training against the sharpened auxiliary distribution P (Eq. 17-18);
- masked-embedding prediction: each cluster owns a learnable positive mask
  over embedding dimensions, and every node is scored through the
  q-weighted mixture of masks (Eq. 19) — impact is judged *within* the
  node's research domain;
- cross-layer assignment consistency (Eq. 20) and cross-center disparity
  (Eq. 21) regularizers, combined per Eq. 22.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn import Module, Parameter, init, kl_divergence
from ..tensor import Tensor, concatenate


@dataclass
class CAConfig:
    num_clusters: int = 10  # K: paper uses #domain names + 1
    lambda_st: float = 0.1
    lambda_con: float = 0.1
    lambda_dis: float = 0.1
    use_self_training: bool = True
    use_consistency: bool = True
    use_disparity: bool = True
    seed: int = 0


class ClusterModule(Module):
    """Per-layer cluster centers ξ and embedding masks π."""

    def __init__(self, config: CAConfig, dim: int, num_layers: int) -> None:
        super().__init__()
        self.config = config
        self.dim = dim
        self.num_layers = num_layers
        rng = np.random.default_rng(config.seed)
        K = config.num_clusters
        # Layers here index convolution outputs 0..L (0 = encoder output);
        # masking applies wherever embeddings feed a loss.
        for l in range(num_layers + 1):
            setattr(self, f"centers_{l}",
                    Parameter(init.normal(rng, (K, dim), std=0.5)))
            setattr(self, f"mask_logits_{l}",
                    Parameter(init.normal(rng, (K, dim), std=0.1)))

    # ------------------------------------------------------------------
    def centers(self, layer: int) -> Parameter:
        return getattr(self, f"centers_{layer}")

    def center_parameters(self) -> List[Parameter]:
        return [self.centers(l) for l in range(self.num_layers + 1)]

    def non_center_parameters(self) -> List[Parameter]:
        return [getattr(self, f"mask_logits_{l}")
                for l in range(self.num_layers + 1)]

    def set_centers(self, layer: int, values: np.ndarray) -> None:
        """Overwrite centers (used by TE's term-based initialization)."""
        param = self.centers(layer)
        if values.shape != param.data.shape:
            raise ValueError(f"center shape {values.shape} != {param.data.shape}")
        param.data = values.copy()

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_rows(h: Tensor) -> Tensor:
        sumsq = (h * h).sum(axis=1, keepdims=True)
        return h / (sumsq + 1e-12).sqrt()

    def forward(self, h: Tensor, layer: int) -> Tensor:
        """Canonical Module entry point — alias of :meth:`soft_assign`."""
        return self.soft_assign(h, layer)

    def soft_assign(self, h: Tensor, layer: int) -> Tensor:
        """Eq. 16: Student-t similarity to each center, row-normalized.

        Distances are taken between L2-normalized embeddings and the
        centers: the raw one-space embeddings have unbounded scale, where
        the Student-t kernel saturates to uniform assignments (all
        distances large and similar).  On the unit sphere the squared
        distance lives in [0, 4] and the kernel keeps its contrast — the
        compactness DEC's original auto-encoder space provides implicitly.
        """
        h_unit = self._normalize_rows(h)
        centers = self.centers(layer)
        N, d = h_unit.shape
        K = self.config.num_clusters
        diff = h_unit.reshape(N, 1, d) - centers.reshape(1, K, d)
        sq = (diff * diff).sum(axis=2)  # (N, K)
        q = 1.0 / (sq + 1.0)
        return q / q.sum(axis=1, keepdims=True)

    @staticmethod
    def target_distribution(q: np.ndarray) -> np.ndarray:
        """Eq. 17: sharpen Q into the self-training target P (constant)."""
        f = q.sum(axis=0)  # soft cluster frequencies
        p = (q**2) / np.maximum(f, 1e-12)
        return p / p.sum(axis=1, keepdims=True)

    def mask_embeddings(self, h: Tensor, q: Tensor, layer: int) -> Tensor:
        """Eq. 19: ĥ_v = Σ_k q_vk (h_v ⊗ σ(π_k)) = h_v ⊗ (q @ σ(π))."""
        masks = getattr(self, f"mask_logits_{layer}").sigmoid()  # (K, d)
        return h * (q @ masks)

    def mask_with_cluster(self, h: Tensor, cluster: int, layer: int) -> Tensor:
        """Force a specific domain's mask (case studies, Table III)."""
        masks = getattr(self, f"mask_logits_{layer}").sigmoid()
        return h * masks[cluster].reshape(1, -1)

    # ------------------------------------------------------------------
    def losses(self, qs: List[Tensor]) -> Tensor:
        """Eq. 22: λ_st L_st + λ_con L_con + λ_dis L_dis.

        ``qs`` holds the per-layer soft assignments (Tensors on the tape).
        All terms are normalized per node / per center pair so the λs mean
        the same thing across graph sizes.
        """
        cfg = self.config
        total = Tensor(0.0)
        if cfg.use_self_training and cfg.lambda_st > 0:
            st = Tensor(0.0)
            for q in qs:
                p = Tensor(self.target_distribution(q.data))
                st = st + kl_divergence(p, q) * (1.0 / q.shape[0])
            total = total + st * cfg.lambda_st
        if cfg.use_consistency and cfg.lambda_con > 0 and len(qs) > 1:
            con = Tensor(0.0)
            for q_lo, q_hi in zip(qs[:-1], qs[1:]):
                con = con + kl_divergence(q_lo, q_hi) * (1.0 / q_lo.shape[0])
            total = total + con * cfg.lambda_con
        if cfg.use_disparity and cfg.lambda_dis > 0:
            dis = Tensor(0.0)
            K = cfg.num_clusters
            for l in range(self.num_layers + 1):
                centers = self.centers(l)
                diff = (centers.reshape(K, 1, self.dim)
                        - centers.reshape(1, K, self.dim))
                dis = dis - (diff * diff).sum() * (1.0 / (K * K * self.dim))
            total = total + dis * cfg.lambda_dis
        return total

    # ------------------------------------------------------------------
    def hard_assignments(self, q: np.ndarray) -> np.ndarray:
        return q.argmax(axis=1)


def concat_one_space(layer_embeddings: Dict[str, Tensor],
                     node_types: List[str]) -> Tensor:
    """Stack all node types into the single clustering space."""
    return concatenate([layer_embeddings[t] for t in node_types], axis=0)
