"""Dynamic citation prediction (the paper's Section III-G future work).

The paper predicts a static quantity — average citations/year — and names
per-year trajectories as its immediate future work.  This module provides
that extension on top of any fitted static estimator:

1. an **aging profile** is estimated from the training-period citation
   links (the empirical distribution of citation age = citing year minus
   cited year, smoothed with Laplace pseudo-counts) — the classic
   rise-peak-decay shape of citation histories;
2. a paper's predicted per-year trajectory is its predicted average rate
   redistributed along the aging profile, so the trajectory's mean over
   the horizon equals the static prediction.

Ground truth for evaluation comes from the same place: the generator's
citation links carry the citing paper's year, so per-(paper, age) counts
are observable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dblp import TRAIN_BEFORE, CitationDataset
from ..hetnet import PAPER


def empirical_citation_ages(dataset: CitationDataset,
                            train_only: bool = True) -> np.ndarray:
    """Ages (citing year - cited year, >= 1) of all citation events."""
    graph = dataset.graph
    years = graph.get_attr(PAPER, "year")
    cites = graph.edges[(PAPER, "cites", PAPER)]
    # cites runs cited -> citing: src is the cited paper.
    cited_year = years[cites.src]
    citing_year = years[cites.dst]
    if train_only:
        keep = citing_year < TRAIN_BEFORE
        cited_year, citing_year = cited_year[keep], citing_year[keep]
    return np.maximum(citing_year - cited_year, 1)


class AgingProfile:
    """Normalized distribution of citation counts over paper age."""

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise ValueError("profile needs a 1-D non-empty weight vector")
        if np.any(weights < 0):
            raise ValueError("profile weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("profile weights must not all be zero")
        self.weights = weights / total

    @property
    def horizon(self) -> int:
        return len(self.weights)

    @classmethod
    def fit(cls, dataset: CitationDataset, horizon: int = 6,
            smoothing: float = 1.0) -> "AgingProfile":
        """Estimate from training-period citation links (Laplace-smoothed)."""
        ages = empirical_citation_ages(dataset, train_only=True)
        counts = np.full(horizon, smoothing, dtype=np.float64)
        for age in ages:
            if 1 <= age <= horizon:
                counts[age - 1] += 1
        return cls(counts)

    def spread(self, rates: np.ndarray) -> np.ndarray:
        """Per-year trajectories whose horizon mean equals each rate.

        rates: (N,) average citations/year -> (N, horizon) counts/year.
        """
        rates = np.asarray(rates, dtype=np.float64)
        return np.outer(rates, self.weights * self.horizon)


class DynamicCitationModel:
    """Per-year citation trajectories from a fitted static estimator.

    Parameters
    ----------
    base:
        Any fitted estimator with a ``predict()`` returning per-paper
        average citations/year (CATE-HGN or a baseline).
    horizon:
        Number of post-publication years to predict.
    """

    def __init__(self, base, horizon: int = 6) -> None:
        self.base = base
        self.horizon = horizon
        self.profile: Optional[AgingProfile] = None

    def fit(self, dataset: CitationDataset,
            fit_base: bool = False) -> "DynamicCitationModel":
        if fit_base:
            self.base.fit(dataset)
        self.profile = AgingProfile.fit(dataset, horizon=self.horizon)
        return self

    def predict_trajectories(self) -> np.ndarray:
        """(num_papers, horizon) predicted citations per post-pub year."""
        if self.profile is None:
            raise RuntimeError("call fit() first")
        return self.profile.spread(self.base.predict())

    @staticmethod
    def observed_trajectories(dataset: CitationDataset,
                              horizon: int = 6) -> np.ndarray:
        """Ground-truth per-year citation counts from the citation links."""
        graph = dataset.graph
        years = graph.get_attr(PAPER, "year")
        cites = graph.edges[(PAPER, "cites", PAPER)]
        out = np.zeros((dataset.num_papers, horizon))
        ages = years[cites.dst] - years[cites.src]
        for cited, age in zip(cites.src, ages):
            if 1 <= age <= horizon:
                out[cited, age - 1] += 1
        return out
