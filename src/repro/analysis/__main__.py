"""``python -m repro.analysis`` — the unified static-analysis gate.

Subcommands
-----------
``gate`` (default)
    Run repro-lint (R-rules) **and** the concurrency analyzer (A-rules)
    over the tree in one shot.  Exit codes are diagnosable at a glance:

    == =================================================
    0  clean
    1  lint violations only
    2  concurrency violations only
    3  both
    == =================================================

``lint`` / ``concurrency``
    Run one prong alone (same as ``python -m repro.analysis.lint`` /
    ``python -m repro.analysis.concurrency``).

A shared ``--select``/``--ignore`` accepts a mixed rule list; codes are
routed to the prong that owns them (``R...`` → lint, ``A...`` →
concurrency).  Selecting only one prong's rules skips the other prong
entirely.  ``--format json`` emits a combined machine-readable report::

    {"lint": {...}, "concurrency": {...}, "exit_code": N}

The tier-1 suite invokes ``gate`` so the tree stays at zero violations.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.concurrency.static import ARULES, analyze_paths
from repro.analysis.lint import RULES, lint_paths, resolve_rules

#: Directories the gate covers when no paths are given, relative to the
#: repo root (located from this file; missing ones are skipped so the
#: gate also works on installed copies that ship only ``src``).
DEFAULT_ROOTS = ("src", "benchmarks", "examples")


def _default_paths() -> List[str]:
    repo_root = Path(__file__).resolve().parents[3]
    found = [
        str(repo_root / name)
        for name in DEFAULT_ROOTS
        if (repo_root / name).is_dir()
    ]
    return found or [str(Path(__file__).resolve().parents[1])]


def run_gate(
    paths: Sequence[str],
    select: Optional[str] = None,
    ignore: Optional[str] = None,
    fmt: str = "text",
    out=None,
) -> int:
    """Run both prongs; returns the combined exit code (0/1/2/3)."""
    out = out if out is not None else sys.stdout
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        raise SystemExit(f"no such file or directory: {missing}")
    lint_rules, unknown_r = resolve_rules(select, ignore, RULES)
    conc_rules, unknown_a = resolve_rules(select, ignore, ARULES)
    # A token must belong to at least one catalogue.
    unknown = unknown_r & unknown_a
    if unknown:
        raise SystemExit(f"unknown rules: {sorted(unknown)}")

    run_lint = lint_rules is None or bool(lint_rules)
    run_conc = conc_rules is None or bool(conc_rules)
    lint_violations = (
        lint_paths(paths, rules=lint_rules) if run_lint else []
    )
    conc_violations = (
        analyze_paths(paths, rules=conc_rules) if run_conc else []
    )

    code = (1 if lint_violations else 0) | (2 if conc_violations else 0)
    if fmt == "json":
        print(
            json.dumps(
                {
                    "lint": {
                        "count": len(lint_violations),
                        "violations": [v.to_dict() for v in lint_violations],
                    },
                    "concurrency": {
                        "count": len(conc_violations),
                        "violations": [v.to_dict() for v in conc_violations],
                    },
                    "exit_code": code,
                },
                indent=2,
            ),
            file=out,
        )
        return code
    for violation in lint_violations + conc_violations:
        print(violation, file=out)
    total = len(lint_violations) + len(conc_violations)
    if total:
        print(
            f"\n{total} violation(s): {len(lint_violations)} lint, "
            f"{len(conc_violations)} concurrency",
            file=out,
        )
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Route the one-prong subcommands to their own CLIs untouched.
    if argv and argv[0] == "lint":
        from repro.analysis import lint as lint_mod

        return lint_mod.main(argv[1:])
    if argv and argv[0] == "concurrency":
        from repro.analysis.concurrency import static as conc_mod

        return conc_mod.main(argv[1:])
    if argv and argv[0] == "gate":
        argv = argv[1:]

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Unified analysis gate: lint (R-rules) + concurrency "
        "(A-rules).  Exit codes: 0 clean, 1 lint, 2 concurrency, 3 both.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: src/ benchmarks/ examples/)",
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated R/A rules to run"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated R/A rules to skip"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print both catalogues"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted({**RULES, **ARULES}.items()):
            print(f"{rule}: {desc}")
        return 0

    paths = args.paths or _default_paths()
    return run_gate(
        paths, select=args.select, ignore=args.ignore, fmt=args.fmt
    )


if __name__ == "__main__":
    sys.exit(main())
