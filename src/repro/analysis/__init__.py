"""Correctness toolchain for the autodiff engine and model stack.

Three pillars (see ``DESIGN.md`` — "Correctness toolchain"):

- :mod:`repro.analysis.gradcheck` — finite-difference verification of
  every backward closure (:func:`check_gradients`, :func:`check_module`);
- :mod:`repro.analysis.anomaly` — opt-in runtime tape sanitizer
  (:func:`detect_anomaly`) catching NaN/Inf at the producing op, reused
  tapes, and unused parameters;
- :mod:`repro.analysis.lint` — repo-specific AST lint (rules R001-R004),
  runnable as ``python -m repro.analysis.lint src/`` or ``repro-lint``.
"""

from .anomaly import (
    AnomalyError,
    AnomalyGuard,
    TapeReuseWarning,
    UnusedParameterWarning,
    detect_anomaly,
)
from .gradcheck import (
    ElementFailure,
    GradcheckError,
    GradcheckResult,
    check_gradients,
    check_module,
)
__all__ = [
    "check_gradients",
    "check_module",
    "GradcheckError",
    "GradcheckResult",
    "ElementFailure",
    "detect_anomaly",
    "AnomalyGuard",
    "AnomalyError",
    "TapeReuseWarning",
    "UnusedParameterWarning",
    "lint_paths",
    "Violation",
    "RULES",
]


def __getattr__(name):
    # `lint` is imported lazily so that `python -m repro.analysis.lint`
    # does not trigger the double-import RuntimeWarning (the module would
    # otherwise already be in sys.modules via this package import).
    if name in ("lint_paths", "Violation", "RULES", "lint"):
        from . import lint

        if name == "lint":
            return lint
        return getattr(lint, name)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
