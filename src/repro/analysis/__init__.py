"""Correctness toolchain for the autodiff engine and model stack.

Three pillars (see ``DESIGN.md`` — "Correctness toolchain"):

- :mod:`repro.analysis.gradcheck` — finite-difference verification of
  every backward closure (:func:`check_gradients`, :func:`check_module`);
- :mod:`repro.analysis.anomaly` — opt-in runtime tape sanitizer
  (:func:`detect_anomaly`) catching NaN/Inf at the producing op, reused
  tapes, and unused parameters;
- :mod:`repro.analysis.lint` — repo-specific AST lint (rules R001-R006),
  runnable as ``python -m repro.analysis.lint src/`` or ``repro-lint``;
- :mod:`repro.analysis.concurrency` — lock-discipline analysis: static
  rules A001-A005 plus the tsan-lite runtime detector
  (:func:`detect_races`, :class:`InstrumentedLock`).

``python -m repro.analysis gate`` runs lint + concurrency in one shot
(exit codes: 0 clean, 1 lint, 2 concurrency, 3 both).
"""

from .anomaly import (
    AnomalyError,
    AnomalyGuard,
    TapeReuseWarning,
    UnusedParameterWarning,
    detect_anomaly,
)
from .gradcheck import (
    ElementFailure,
    GradcheckError,
    GradcheckResult,
    check_gradients,
    check_module,
)
__all__ = [
    "check_gradients",
    "check_module",
    "GradcheckError",
    "GradcheckResult",
    "ElementFailure",
    "detect_anomaly",
    "AnomalyGuard",
    "AnomalyError",
    "TapeReuseWarning",
    "UnusedParameterWarning",
    "lint_paths",
    "Violation",
    "RULES",
    "analyze_paths",
    "ARULES",
    "detect_races",
    "InstrumentedLock",
    "RaceDetector",
]

_CONCURRENCY_NAMES = (
    "analyze_paths",
    "ARULES",
    "detect_races",
    "InstrumentedLock",
    "RaceDetector",
    "concurrency",
)


def __getattr__(name):
    # `lint` is imported lazily so that `python -m repro.analysis.lint`
    # does not trigger the double-import RuntimeWarning (the module would
    # otherwise already be in sys.modules via this package import).
    if name in ("lint_paths", "Violation", "RULES", "lint"):
        from . import lint

        if name == "lint":
            return lint
        return getattr(lint, name)
    # `concurrency` is lazy for the same reason (it imports lint) and to
    # keep plain `import repro.analysis` free of threading machinery.
    if name in _CONCURRENCY_NAMES:
        from . import concurrency

        if name == "concurrency":
            return concurrency
        return getattr(concurrency, name)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
