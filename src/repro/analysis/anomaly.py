"""Opt-in runtime anomaly detection for the autodiff tape.

``detect_anomaly()`` is a context manager that instruments
:class:`repro.tensor.Tensor` for the duration of a ``with`` block:

- every op output created through ``Tensor._make`` is checked for
  NaN/Inf *at the op that produced it* and the creation site (a trimmed
  stack trace) is recorded;
- every backward closure is wrapped so a NaN/Inf gradient flowing into an
  op is reported together with that op's recorded creation site — the
  forward line that built the offending node, not just the loss;
- calling ``backward()`` twice on the same output warns
  (:class:`TapeReuseWarning`): the tape is still attached, so gradients
  from the second pass silently *accumulate* on top of the first;
- on exit (or after each ``backward()``), parameters of any modules
  passed to ``detect_anomaly(modules=...)`` whose ``grad`` is still
  ``None`` are reported as unused (:class:`UnusedParameterWarning`) —
  the classic symptom of a layer constructed but never wired into
  ``forward``.

The instrumentation costs one ``np.isfinite`` reduction per op, so it is
strictly opt-in — production training loops never pay for it.

Usage::

    from repro import analysis

    with analysis.detect_anomaly(modules=[model]):
        loss = model.supervised_loss(state, batch)
        loss.backward()
"""

from __future__ import annotations

import traceback
import warnings
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = [
    "AnomalyError",
    "TapeReuseWarning",
    "UnusedParameterWarning",
    "AnomalyGuard",
    "detect_anomaly",
]


class AnomalyError(FloatingPointError):
    """A NaN/Inf was produced by an op while anomaly mode was active."""


class TapeReuseWarning(UserWarning):
    """``backward()`` was called again on an already-consumed tape."""


class UnusedParameterWarning(UserWarning):
    """A parameter received no gradient from ``backward()``."""


def _creation_site(skip: int = 2, depth: int = 6) -> str:
    """A trimmed, formatted stack for the op being recorded.

    ``skip`` drops the instrumentation frames themselves; ``depth`` keeps
    the trace short enough to read in a test failure.
    """
    frames = traceback.extract_stack()[: -skip][-depth:]
    return "".join(traceback.format_list(frames))


class AnomalyGuard:
    """State for one active ``detect_anomaly`` block.

    Attributes
    ----------
    nan_count:
        Number of non-finite op outputs seen (only grows when
        ``action='warn'``; the first one raises otherwise).
    """

    def __init__(
        self,
        modules: Sequence = (),
        check_backward: bool = True,
        action: str = "raise",
    ) -> None:
        if action not in ("raise", "warn"):
            raise ValueError(f"action must be 'raise' or 'warn', got {action!r}")
        self.modules = list(modules)
        self.check_backward = check_backward
        self.action = action
        self.nan_count = 0
        # id(tensor) -> (tensor, creation site).  Strong refs: debug-only
        # mode, bounded by the lifetime of the `with` block.
        self._sites: dict[int, Tuple[Tensor, str]] = {}
        self._consumed: dict[int, Tensor] = {}
        self._saved_make: Optional[staticmethod] = None
        self._saved_backward: Optional[Callable] = None

    # ------------------------------------------------------------------
    def creation_site(self, tensor: Tensor) -> Optional[str]:
        """The recorded creation site of ``tensor``, if it was seen."""
        entry = self._sites.get(id(tensor))
        return entry[1] if entry is not None else None

    def unused_parameters(self) -> List[str]:
        """Names of parameters (across watched modules) with ``grad is None``."""
        unused: List[str] = []
        for i, module in enumerate(self.modules):
            prefix = f"modules[{i}]:" if len(self.modules) > 1 else ""
            for name, param in module.named_parameters():
                if param.grad is None:
                    unused.append(f"{prefix}{name}")
        return unused

    # ------------------------------------------------------------------
    def _flag(self, message: str) -> None:
        self.nan_count += 1
        if self.action == "raise":
            raise AnomalyError(message)
        warnings.warn(message, UserWarning, stacklevel=4)

    def _check_array(self, data: np.ndarray, kind: str, site: str) -> None:
        if not np.all(np.isfinite(data)):
            bad = int(np.size(data) - np.count_nonzero(np.isfinite(data)))
            self._flag(
                f"detect_anomaly: {kind} contains {bad} non-finite value(s) "
                f"(shape={np.shape(data)}).\nOp created at:\n{site}"
            )

    # ------------------------------------------------------------------
    def __enter__(self) -> "AnomalyGuard":
        guard = self
        original_make = Tensor._make  # bound staticmethod
        original_backward = Tensor.backward
        self._saved_make = Tensor.__dict__["_make"]
        self._saved_backward = original_backward

        def instrumented_make(
            data: np.ndarray,
            parents: Iterable[Tensor],
            backward: Callable[[np.ndarray], None],
        ) -> Tensor:
            site = _creation_site()
            guard._check_array(data, "forward output", site)
            parent_tuple = tuple(p for p in parents if isinstance(p, Tensor))
            wrapped = backward
            if guard.check_backward and backward is not None:
                def wrapped(grad: np.ndarray, _bw=backward, _site=site,
                            _parents=parent_tuple):  # type: ignore[misc]
                    # Gradient flowing INTO this op (produced downstream).
                    guard._check_array(grad, "backward gradient", _site)
                    _bw(grad)
                    # Gradients this op's closure just produced for its
                    # parents — catches e.g. d/dx sqrt(x) = inf at x=0
                    # even when the parent is a leaf with no closure.
                    for p in _parents:
                        if p.grad is not None:
                            guard._check_array(
                                p.grad, "gradient produced for a parent", _site
                            )
            out = original_make(data, parent_tuple, wrapped)
            guard._sites[id(out)] = (out, site)
            return out

        def instrumented_backward(tensor: Tensor, grad=None) -> None:
            if id(tensor) in guard._consumed:
                warnings.warn(
                    "detect_anomaly: backward() called again on an "
                    "already-consumed tape (gradients will accumulate on "
                    "top of the previous pass)",
                    TapeReuseWarning,
                    stacklevel=2,
                )
            original_backward(tensor, grad)
            guard._consumed[id(tensor)] = tensor
            guard._warn_unused()

        Tensor._make = staticmethod(instrumented_make)
        Tensor.backward = instrumented_backward
        return self

    def _warn_unused(self) -> None:
        for name in self.unused_parameters():
            warnings.warn(
                f"detect_anomaly: parameter {name!r} received no gradient "
                "(grad is None after backward()) — it is not wired into "
                "the forward computation",
                UnusedParameterWarning,
                stacklevel=3,
            )

    def __exit__(self, exc_type, exc, tb) -> None:
        Tensor._make = self._saved_make
        Tensor.backward = self._saved_backward
        self._sites.clear()
        self._consumed.clear()


def detect_anomaly(
    modules: Sequence = (),
    check_backward: bool = True,
    action: str = "raise",
) -> AnomalyGuard:
    """Create an anomaly-detection context (see module docstring).

    Parameters
    ----------
    modules:
        Modules whose parameters are audited for ``grad is None`` after
        every ``backward()`` inside the block.
    check_backward:
        Also check gradients flowing through each backward closure (the
        default; disable to halve the overhead).
    action:
        ``'raise'`` (default) raises :class:`AnomalyError` at the first
        non-finite value; ``'warn'`` emits warnings and keeps counting in
        :attr:`AnomalyGuard.nan_count`.
    """
    return AnomalyGuard(modules=modules, check_backward=check_backward, action=action)
