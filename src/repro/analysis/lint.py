"""Repo-specific static analysis: ``python -m repro.analysis.lint src/``.

Generic linters cannot see the invariants this codebase lives by — the
autodiff tape, the float64-only contract, explicit RNG plumbing — so this
module implements a small AST lint with six rules:

``R001`` **tape-breaking data mutation** — assigning to ``<expr>.data``
    (or ``<expr>.data[...]``, or augmented assignment) rebinds/mutates a
    tensor's storage behind the tape's back: closures recorded earlier
    capture the *old* array and silently compute stale gradients.
    Whitelisted modules (optimizers, ``load_state_dict``, cluster-center
    re-initialization, the engine itself) mutate ``.data`` as their job;
    anywhere else it is almost always a bug.  Suppress a deliberate case
    with a trailing ``# repro-lint: disable=R001`` comment.

``R002`` **global numpy RNG** — ``np.random.rand()`` &co. draw from hidden
    process-global state, destroying run-to-run reproducibility of every
    table in the paper.  All stochastic code must thread an explicit
    ``np.random.Generator`` (``np.random.default_rng(seed)``).
    Constructing generators/seeds (``default_rng``, ``Generator``,
    ``SeedSequence``, ``PCG64``, …) is of course allowed.  The rule also
    covers the legacy seeding surface (``np.random.seed``,
    ``np.random.RandomState``) and the import forms that used to escape
    attribute matching: ``from numpy.random import seed``,
    ``from numpy import random``, and ``import numpy.random as npr``.

``R003`` **forward-less Module** — a :class:`repro.nn.Module` subclass
    that never overrides ``forward`` (directly or via a base class other
    than ``Module`` itself) explodes with ``NotImplementedError`` only at
    call time, usually deep inside a training loop.  Resolution is
    project-wide: base classes defined in *other* linted files count.

``R004`` **tape-detached tensor op** — every call to ``Tensor._make`` must
    register a real backward closure (a ``def``/``lambda`` from the
    enclosing scope, or an explicitly wrapped callable) — passing ``None``
    or omitting the argument silently cuts the output from the tape.  The
    dual is also flagged: a function that defines a ``backward`` closure
    but never hands it to ``_make`` ships a dead gradient.

``R005`` **swallowed exception** — an ``except`` handler whose entire body
    is ``pass``/``...`` silently discards the failure: a corrupted
    checkpoint, a half-written file, or a diverged optimizer vanishes
    without a trace (the failure mode the resilience layer exists to
    surface loudly).  The rare legitimate sites — best-effort cleanup
    where the fallback *is* "do nothing" — must be annotated with a
    trailing ``# noqa: R005`` explaining why.  Foreign ``noqa`` codes
    (``BLE001`` &co.) never suppress repro rules.

``R006`` **bare assert in library code** — ``assert`` statements are
    compiled away under ``python -O``, so input validation (and drill
    verdicts) written as asserts silently stop validating in optimized
    runs.  Library code under ``src/repro`` must raise an explicit
    exception (``ValueError``/``AssertionError``) instead.  Scoped to the
    library tree only: pytest-style asserts in ``tests/``, ``examples/``
    and ``benchmarks/`` are idiomatic and untouched.  A deliberate
    internal invariant may carry a trailing ``# noqa: R006``.

Exit status is non-zero iff violations are found, so
``tests/test_lint_clean.py`` (tier-1) keeps the tree clean going forward.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "lint_paths",
    "lint_sources",
    "main",
    "render_violations",
    "resolve_rules",
    "RULES",
]

RULES: Dict[str, str] = {
    "R001": "direct mutation of Tensor.data outside whitelisted modules",
    "R002": "use of global np.random.* instead of an explicit Generator",
    "R003": "Module subclass without a forward() override",
    "R004": "Tensor._make call without a backward closure",
    "R005": "except handler that silently swallows the exception",
    "R006": "bare assert in src/repro library code (vanishes under -O)",
}

#: Path fragments that mark a file as *library* code for R006.  The
#: lint gate also covers ``examples/`` and ``benchmarks/`` where
#: pytest-style asserts are idiomatic, so the rule fires only inside the
#: installable package tree.
R006_SCOPE: Tuple[str, ...] = ("src/repro/",)

#: Modules allowed to assign to ``.data`` (path suffixes, ``/``-separated).
#: These are the places whose *contract* is mutating parameter storage:
#: the engine itself, optimizers, state-dict loading, and cluster-center
#: (re)initialization.  Extend via ``--allow-data-mutation`` or a trailing
#: ``# repro-lint: disable=R001`` comment.
R001_WHITELIST: Tuple[str, ...] = (
    "repro/tensor/tensor.py",
    "repro/nn/optim.py",
    "repro/nn/module.py",
    "repro/core/cluster.py",
    "repro/analysis/gradcheck.py",
)

#: ``np.random`` attributes that are constructors / seeding machinery,
#: not draws from the global state.
R002_ALLOWED_ATTRS: Set[str] = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "PCG64",
    "Philox",
    "MT19937",
    "BitGenerator",
}

_DISABLE_MARK = "repro-lint: disable="

#: ``# noqa: R005``-style suppression.  Only *repro* rule codes are
#: honored here: a bare ``# noqa`` or a line carrying exclusively foreign
#: codes (``BLE001``, ``N802``, …) must not blanket-suppress repro rules.
_NOQA_RE = re.compile(r"#\s*noqa:\s*([^#]*)", re.IGNORECASE)

#: Shape of a repro rule code: R-rules (this module) and A-rules
#: (:mod:`repro.analysis.concurrency.static`) share one suppression and
#: reporting machinery.
_CODE_RE = re.compile(r"\b[A-Z]\d{3}\b")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record for ``--format json`` consumers."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# Per-line suppression (shared by the R-rules here and the A-rules in
# repro.analysis.concurrency — `catalogue` selects which codes a caller
# honors, so a `# noqa: A003` never blanket-suppresses lint rules and
# vice versa).
# ----------------------------------------------------------------------
def _suppressed_rules(
    source: str, catalogue: Optional[Dict[str, str]] = None
) -> Dict[int, Set[str]]:
    """Map line number -> rules disabled by a trailing lint comment."""
    cat = RULES if catalogue is None else catalogue
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        suppressed: Set[str] = set()
        if _DISABLE_MARK in line:
            spec = line.split(_DISABLE_MARK, 1)[1]
            rules = {tok.strip() for tok in spec.replace(";", ",").split(",")}
            suppressed |= {r for r in rules if r in cat} or set(cat)
        noqa = _NOQA_RE.search(line)
        if noqa is not None:
            # Exact repro codes only — never widen to all rules here.
            suppressed |= {
                code for code in _CODE_RE.findall(noqa.group(1))
                if code in cat
            }
        if suppressed:
            out[lineno] = suppressed
    return out


# ----------------------------------------------------------------------
# R001 — Tensor.data mutation
# ----------------------------------------------------------------------
def _is_data_attribute(node: ast.expr) -> bool:
    """True for ``<expr>.data`` or ``<expr>.data[...]`` targets.

    ``self.data`` inside the engine is whitelisted at the module level,
    so no attempt is made to distinguish receivers here — any ``.data``
    store outside the whitelist is suspect by construction.
    """
    if isinstance(node, ast.Attribute) and node.attr == "data":
        return True
    if isinstance(node, ast.Subscript):
        return _is_data_attribute(node.value)
    return False


def _check_r001(tree: ast.AST, path: str) -> List[Violation]:
    found: List[Violation] = []

    def flag(node: ast.AST, how: str) -> None:
        found.append(
            Violation(
                "R001",
                path,
                node.lineno,
                f"{how} of Tensor.data breaks the autodiff tape "
                "(whitelist the module or use Tensor ops)",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if _is_data_attribute(target):
                    flag(node, "assignment")
        elif isinstance(node, (ast.AugAssign,)):
            if _is_data_attribute(node.target):
                flag(node, "augmented assignment")
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None and _is_data_attribute(node.target):
                flag(node, "assignment")
    return found


# ----------------------------------------------------------------------
# R002 — global numpy RNG
# ----------------------------------------------------------------------
def _attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """``np.random.rand`` -> ["np", "random", "rand"] (or None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _numpy_random_aliases(tree: ast.AST, path: str,
                          found: List[Violation]) -> Set[str]:
    """Names bound to the ``numpy.random`` module in this file.

    Also flags ``from numpy.random import <draw/seed>`` at the import
    site — binding ``seed``/``RandomState``/``shuffle`` &co. to a bare
    name is itself the escape hatch that used to slip past attribute
    matching.
    """
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                # `import numpy.random` binds the top-level `numpy` name
                # (already covered by the chain check); only an explicit
                # alias creates a new root to track.
                if alias.name == "numpy.random" and alias.asname:
                    aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in R002_ALLOWED_ATTRS:
                        found.append(
                            Violation(
                                "R002",
                                path,
                                node.lineno,
                                f"from numpy.random import {alias.name} "
                                "binds the hidden global RNG surface; "
                                "thread an explicit np.random.Generator "
                                "(np.random.default_rng(seed)) instead",
                            )
                        )
    return aliases


def _check_r002(tree: ast.AST, path: str) -> List[Violation]:
    found: List[Violation] = []
    aliases = _numpy_random_aliases(tree, path, found)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        chain = _attribute_chain(node)
        if chain is None:
            continue
        leaf: Optional[str] = None
        root = ""
        # numpy is imported as `np` or `numpy` throughout the repo.
        if (len(chain) >= 3 and chain[0] in ("np", "numpy")
                and chain[1] == "random"):
            leaf, root = chain[2], f"{chain[0]}.random"
        elif len(chain) >= 2 and chain[0] in aliases:
            # `from numpy import random` / `import numpy.random as npr`
            leaf, root = chain[1], chain[0]
        if leaf is not None and leaf not in R002_ALLOWED_ATTRS:
            found.append(
                Violation(
                    "R002",
                    path,
                    node.lineno,
                    f"{root}.{leaf} uses hidden global RNG state; "
                    "thread an explicit np.random.Generator "
                    "(np.random.default_rng(seed)) instead",
                )
            )
    return found


# ----------------------------------------------------------------------
# R003 — Module subclass without forward (project-wide resolution)
# ----------------------------------------------------------------------
@dataclass
class _ClassInfo:
    name: str
    bases: List[str]
    has_forward: bool
    path: str
    line: int


def _collect_classes(tree: ast.AST, path: str) -> List[_ClassInfo]:
    infos: List[_ClassInfo] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        has_forward = any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "forward"
            for item in node.body
        )
        infos.append(_ClassInfo(node.name, bases, has_forward, path, node.lineno))
    return infos


def _check_r003(classes: Sequence[_ClassInfo]) -> List[Violation]:
    by_name: Dict[str, _ClassInfo] = {c.name: c for c in classes}

    def is_module(name: str, seen: Tuple[str, ...] = ()) -> bool:
        if name == "Module":
            return True
        info = by_name.get(name)
        if info is None or name in seen:
            return False
        return any(is_module(b, seen + (name,)) for b in info.bases)

    def inherits_forward(name: str, seen: Tuple[str, ...] = ()) -> bool:
        # `Module.forward` raising NotImplementedError does not count.
        if name == "Module":
            return False
        info = by_name.get(name)
        if info is None or name in seen:
            return False
        if info.has_forward:
            return True
        return any(inherits_forward(b, seen + (name,)) for b in info.bases)

    found: List[Violation] = []
    for info in classes:
        if info.name == "Module":
            continue
        if is_module(info.name) and not inherits_forward(info.name):
            found.append(
                Violation(
                    "R003",
                    info.path,
                    info.line,
                    f"Module subclass {info.name!r} does not override "
                    "forward() — calling it raises NotImplementedError at "
                    "train time",
                )
            )
    return found


# ----------------------------------------------------------------------
# R004 — Tensor._make without a backward closure
# ----------------------------------------------------------------------
def _backward_argument(call: ast.Call) -> Optional[ast.expr]:
    """The backward argument of a ``_make`` call, or None if absent."""
    if len(call.args) >= 3:
        return call.args[2]
    for kw in call.keywords:
        if kw.arg == "backward":
            return kw.value
    return None


def _is_make_call(call: ast.Call) -> bool:
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr == "_make":
        return True
    if isinstance(fn, ast.Name) and fn.id == "_make":
        return True
    return False


class _R004Scope(ast.NodeVisitor):
    """Walk one function scope: local defs, _make calls, name loads."""

    def __init__(self) -> None:
        self.local_funcs: Set[str] = set()
        self.make_calls: List[ast.Call] = []
        self.loaded_names: Set[str] = set()
        self.has_nested_make = False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.local_funcs.add(node.name)
        # Do not descend: nested scopes are analysed separately.

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # opaque; treated as a callable value where referenced

    def visit_Call(self, node: ast.Call) -> None:
        if _is_make_call(node):
            self.make_calls.append(node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded_names.add(node.id)


def _check_r004(tree: ast.AST, path: str) -> List[Violation]:
    found: List[Violation] = []

    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scope = _R004Scope()
        for stmt in fn.body:
            scope.visit(stmt)
        if not scope.make_calls and "backward" not in scope.local_funcs:
            continue

        for call in scope.make_calls:
            arg = _backward_argument(call)
            if arg is None or (
                isinstance(arg, ast.Constant) and arg.value is None
            ):
                found.append(
                    Violation(
                        "R004",
                        path,
                        call.lineno,
                        "Tensor._make called without a backward closure — "
                        "the output is silently cut from the tape",
                    )
                )
                continue
            # Names (closures / forwarded parameters), lambdas and
            # attribute references are all acceptable callables.

        # Dead gradient: a `backward` closure defined but never referenced
        # again — neither registered via `_make` nor returned/forwarded.
        if "backward" in scope.local_funcs and "backward" not in scope.loaded_names:
            found.append(
                Violation(
                    "R004",
                    path,
                    fn.lineno,
                    f"function {fn.name!r} defines a backward closure that "
                    "is never registered via Tensor._make (dead gradient)",
                )
            )
    return found


# ----------------------------------------------------------------------
# R005 — silently swallowed exceptions
# ----------------------------------------------------------------------
def _is_noop_stmt(stmt: ast.stmt) -> bool:
    """``pass`` or a bare ``...`` expression statement."""
    if isinstance(stmt, ast.Pass):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return stmt.value.value is Ellipsis
    return False


def _handler_label(handler: ast.ExceptHandler) -> str:
    """Human-readable exception spec of a handler (best effort)."""
    if handler.type is None:
        return "bare except"
    try:
        return f"except {ast.unparse(handler.type)}"
    except Exception:  # pragma: no cover — unparse is best-effort
        return "except <...>"


def _check_r005(tree: ast.AST, path: str) -> List[Violation]:
    found: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.body and all(_is_noop_stmt(s) for s in node.body):
            found.append(
                Violation(
                    "R005",
                    path,
                    node.lineno,
                    f"{_handler_label(node)} swallows the exception "
                    "(body is only pass/...); handle it, re-raise, or "
                    "annotate the deliberate no-op with '# noqa: R005'",
                )
            )
    return found


# ----------------------------------------------------------------------
# R006 — bare assert in library code
# ----------------------------------------------------------------------
def _in_r006_scope(norm_path: str) -> bool:
    return any(mark in norm_path for mark in R006_SCOPE)


def _check_r006(tree: ast.AST, path: str) -> List[Violation]:
    found: List[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            found.append(
                Violation(
                    "R006",
                    path,
                    node.lineno,
                    "bare assert in library code is compiled away under "
                    "'python -O'; raise an explicit exception instead, or "
                    "annotate a deliberate internal invariant with "
                    "'# noqa: R006'",
                )
            )
    return found


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def lint_sources(
    source: str,
    path: str,
    rules: Optional[Set[str]] = None,
    extra_data_whitelist: Sequence[str] = (),
) -> Tuple[List[Violation], List[_ClassInfo]]:
    """Lint one file's source; class infos are returned for global R003."""
    tree = ast.parse(source, filename=path)
    suppressed = _suppressed_rules(source)
    active = set(RULES) if rules is None else rules
    violations: List[Violation] = []

    norm = path.replace("\\", "/")
    whitelist = tuple(R001_WHITELIST) + tuple(extra_data_whitelist)
    if "R001" in active and not any(norm.endswith(w) for w in whitelist):
        violations += _check_r001(tree, path)
    if "R002" in active:
        violations += _check_r002(tree, path)
    if "R004" in active:
        violations += _check_r004(tree, path)
    if "R005" in active:
        violations += _check_r005(tree, path)
    if "R006" in active and _in_r006_scope(norm):
        violations += _check_r006(tree, path)

    violations = [
        v for v in violations if v.rule not in suppressed.get(v.line, set())
    ]
    classes = _collect_classes(tree, path) if "R003" in active else []
    # R003 suppression is applied per class-definition line by the caller.
    for info in classes:
        if "R003" in suppressed.get(info.line, set()):
            info.has_forward = True
    return violations, classes


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Set[str]] = None,
    extra_data_whitelist: Sequence[str] = (),
) -> List[Violation]:
    """Lint every ``*.py`` under ``paths``; R003 resolves project-wide."""
    all_violations: List[Violation] = []
    all_classes: List[_ClassInfo] = []
    for file in iter_python_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            all_violations.append(
                Violation("R000", str(file), 0, f"could not read file: {exc}")
            )
            continue
        try:
            violations, classes = lint_sources(
                source,
                str(file),
                rules=rules,
                extra_data_whitelist=extra_data_whitelist,
            )
        except SyntaxError as exc:
            all_violations.append(
                Violation(
                    "R000", str(file), exc.lineno or 0, f"syntax error: {exc.msg}"
                )
            )
            continue
        all_violations.extend(violations)
        all_classes.extend(classes)
    if rules is None or "R003" in rules:
        all_violations.extend(_check_r003(all_classes))
    all_violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return all_violations


def resolve_rules(
    select: Optional[str],
    ignore: Optional[str],
    catalogue: Dict[str, str],
) -> Tuple[Optional[Set[str]], Set[str]]:
    """Turn ``--select``/``--ignore`` strings into an active rule set.

    Returns ``(rules, unknown)`` where ``rules`` is ``None`` for "all of
    the catalogue" and ``unknown`` collects tokens that name no rule in
    ``catalogue`` (the caller decides whether that is an error — the
    unified gate splits one shared ``--select`` across two catalogues,
    so tokens unknown to *this* catalogue may be valid for the other).
    """

    def _split(raw: Optional[str]) -> Set[str]:
        if not raw:
            return set()
        return {tok.strip() for tok in raw.split(",") if tok.strip()}

    selected = _split(select)
    ignored = _split(ignore)
    unknown = (selected | ignored) - set(catalogue)
    active = (selected & set(catalogue)) if selected else set(catalogue)
    active -= ignored
    if not selected and not ignored:
        return None, unknown
    return active, unknown


def render_violations(
    violations: Sequence[Violation], fmt: str = "text"
) -> str:
    """Render a violation list as ``text`` (one per line) or ``json``."""
    if fmt == "json":
        return json.dumps(
            {
                "count": len(violations),
                "violations": [v.to_dict() for v in violations],
            },
            indent=2,
        )
    lines = [str(v) for v in violations]
    if violations:
        lines.append(f"\n{len(violations)} violation(s) found")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific AST lint for the repro codebase "
        "(rules R001-R006; see repro.analysis.lint docstring).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated subset of rules to run (e.g. R001,R004)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rules to skip (applied after --select)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--allow-data-mutation",
        action="append",
        default=[],
        metavar="PATH_SUFFIX",
        help="additional module path suffix whitelisted for R001",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}: {desc}")
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    rules, unknown = resolve_rules(args.select, args.ignore, RULES)
    if unknown:
        parser.error(f"unknown rules: {sorted(unknown)}")

    violations = lint_paths(
        args.paths, rules=rules, extra_data_whitelist=args.allow_data_mutation
    )
    rendered = render_violations(violations, args.fmt)
    if rendered:
        print(rendered)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
