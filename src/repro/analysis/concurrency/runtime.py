"""tsan-lite: opt-in runtime lock-order and race detection.

The static prong (:mod:`repro.analysis.concurrency.static`) proves lock
discipline for code it can see; this module catches what static
analysis cannot — locks created dynamically, call paths through
callbacks, and third-party code.  It is deliberately tiny: a drop-in
:class:`InstrumentedLock` plus a :func:`detect_races` context manager
that, for the duration of a test, records per-thread lock-acquisition
stacks, assembles the *observed* lock-order graph, and raises

* :class:`LockOrderError` when an acquisition would close a cycle in
  the observed order graph (the classic AB/BA inversion) — checked
  *before* blocking, so the test fails with a diagnosis instead of
  hanging;
* :class:`ReentrantAcquireError` when a thread re-acquires a
  non-reentrant lock it already holds (guaranteed deadlock);
* :class:`LockHeldIOError` when ``time.sleep`` (or any call routed
  through :meth:`RaceDetector.on_blocking`) runs while the thread holds
  a lock.

Protocol
--------
``detect_races(patch_factories=True)`` installs a process-global
detector, replaces the ``threading.Lock``/``threading.RLock`` factories
so locks *created inside the window* are instrumented, and wraps
``time.sleep``.  Locks created before the window stay raw — the
detector only sees what it instruments, which keeps the overhead and
the blast radius opt-in.  CPython's own synchronization internals
(``Condition`` waiter locks via ``_thread.allocate_lock``) bypass the
factory and stay raw, so instrumenting inside the stdlib is safe:
``Condition._is_owned`` probes with ``acquire(blocking=False)``, which
the reentrancy check deliberately ignores.

Usage::

    with detect_races():
        run_threaded_workload()     # raises on inversion/reentrancy

    # or collect instead of raising:
    with detect_races(raise_immediately=False) as det:
        run_threaded_workload()
    assert not det.violations
"""

from __future__ import annotations

import threading
import time
import traceback
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "InstrumentedLock",
    "LockHeldIOError",
    "LockOrderError",
    "RaceDetector",
    "RaceError",
    "ReentrantAcquireError",
    "detect_races",
]

# Captured at import so the detector's own internals use raw primitives
# even while the module-level factories are monkeypatched.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_SLEEP = time.sleep


class RaceError(RuntimeError):
    """Base class for everything the runtime detector reports."""


class LockOrderError(RaceError):
    """Acquisition would close a cycle in the observed lock-order graph."""


class ReentrantAcquireError(RaceError):
    """A thread re-acquired a non-reentrant lock it already holds."""


class LockHeldIOError(RaceError):
    """A blocking operation ran while the thread held a lock."""


def _caller_site(skip: int = 3) -> str:
    """``file:line`` of the frame that touched the lock API."""
    stack = traceback.extract_stack(limit=skip + 2)
    for frame in reversed(stack[:-skip]):
        if frame.filename != __file__:
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


class RaceDetector:
    """Observed lock-order graph plus per-thread held stacks.

    Thread-safe; one instance is shared by every
    :class:`InstrumentedLock` created inside a :func:`detect_races`
    window.  Violations either raise immediately (default) or collect
    into :attr:`violations` for inspection after the window closes.
    """

    def __init__(self, raise_immediately: bool = True):
        self.raise_immediately = raise_immediately
        self.violations: List[RaceError] = []
        self._mutex = _REAL_LOCK()
        self._held = threading.local()
        #: edges lock-id -> set of lock-ids acquired while it was held
        self._edges: Dict[int, Set[int]] = {}
        #: lock-id -> (name, first acquisition site) for diagnostics
        self._names: Dict[int, Tuple[str, str]] = {}

    # -- held-stack bookkeeping ---------------------------------------
    def _stack(self) -> List[Tuple[int, str, bool]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _report(self, error: RaceError) -> None:
        self.violations.append(error)
        if self.raise_immediately:
            raise error

    def _describe(self, lock_id: int) -> str:
        name, site = self._names.get(lock_id, ("<lock>", "<unknown>"))
        return f"{name} (first acquired at {site})"

    # -- protocol hooks (called by InstrumentedLock) ------------------
    def before_acquire(
        self, lock_id: int, name: str, reentrant: bool, blocking: bool
    ) -> None:
        """Validate an acquisition *before* it can block.

        Raising here (rather than after the acquire) turns a real
        deadlock into a diagnosed test failure.
        """
        stack = self._stack()
        held_ids = [lid for lid, _, _ in stack]
        if lock_id in held_ids:
            if not reentrant and blocking:
                self._report(
                    ReentrantAcquireError(
                        f"re-entrant acquire of non-reentrant lock "
                        f"{self._describe(lock_id)} at {_caller_site()}; "
                        "this thread already holds it (deadlock)"
                    )
                )
            # Non-blocking probe of a held lock is the stdlib
            # Condition._is_owned idiom; an RLock re-acquire is legal.
            return
        with self._mutex:
            self._names.setdefault(lock_id, (name, _caller_site()))
            for held in held_ids:
                if self._reaches(lock_id, held):
                    self._report(
                        LockOrderError(
                            "lock-order inversion: acquiring "
                            f"{self._describe(lock_id)} while holding "
                            f"{self._describe(held)} at {_caller_site()}, "
                            "but the opposite order was already observed "
                            "(potential deadlock)"
                        )
                    )

    def after_acquire(self, lock_id: int, name: str, reentrant: bool) -> None:
        stack = self._stack()
        with self._mutex:
            for held, _, _ in stack:
                if held != lock_id:
                    self._edges.setdefault(held, set()).add(lock_id)
        stack.append((lock_id, name, reentrant))

    def on_release(self, lock_id: int) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == lock_id:
                del stack[i]
                return
        # Released by a thread that never acquired it (cross-thread
        # hand-off, legal for raw Locks): nothing to unwind.

    def on_blocking(self, description: str) -> None:
        """Report a blocking call if the current thread holds any lock."""
        stack = self._stack()
        if stack:
            lock_id = stack[-1][0]
            self._report(
                LockHeldIOError(
                    f"{description} while holding "
                    f"{self._describe(lock_id)} at {_caller_site()}; "
                    "blocking with a lock held stalls every contending "
                    "thread"
                )
            )

    # -- graph queries ------------------------------------------------
    def _reaches(self, src: int, dst: int) -> bool:
        """BFS over recorded edges (caller holds ``_mutex``)."""
        if src == dst:
            return True
        seen = {src}
        frontier = [src]
        while frontier:
            node = frontier.pop()
            for succ in self._edges.get(node, ()):
                if succ == dst:
                    return True
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def order_graph(self) -> Dict[str, Set[str]]:
        """Observed lock-order edges by lock name (for diagnostics)."""
        with self._mutex:
            return {
                self._names.get(src, ("<lock>", ""))[0]: {
                    self._names.get(dst, ("<lock>", ""))[0] for dst in dsts
                }
                for src, dsts in self._edges.items()
            }


class InstrumentedLock:
    """Drop-in for ``threading.Lock``/``RLock`` that reports to a detector.

    Duck-types the lock protocol (``acquire``/``release``/context
    manager/``locked``), so it can replace the stdlib factories inside a
    :func:`detect_races` window or be constructed directly in tests.
    """

    def __init__(
        self,
        name: Optional[str] = None,
        reentrant: bool = False,
        detector: Optional[RaceDetector] = None,
    ):
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._reentrant = reentrant
        self._name = name or f"lock@{id(self):#x}"
        self._detector = detector

    @property
    def name(self) -> str:
        return self._name

    def _det(self) -> Optional[RaceDetector]:
        return self._detector if self._detector is not None else _ACTIVE

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        det = self._det()
        if det is not None:
            det.before_acquire(id(self), self._name, self._reentrant, blocking)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and det is not None:
            det.after_acquire(id(self), self._name, self._reentrant)
        return acquired

    def release(self) -> None:
        det = self._det()
        if det is not None:
            det.on_release(id(self))
        self._inner.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return bool(probe())
        # RLock has no locked(); approximate with a non-blocking probe.
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True

    def _at_fork_reinit(self) -> None:
        # Modules first imported inside a window may register their
        # (instrumented) locks with os.register_at_fork — e.g.
        # concurrent.futures.thread does at import time.
        self._inner._at_fork_reinit()

    # -- Condition protocol -------------------------------------------
    # threading.Condition adopts the lock's _is_owned/_release_save/
    # _acquire_restore when present.  Without these, Condition falls
    # back to a non-blocking acquire probe, which is WRONG for an
    # RLock: the owning thread's probe re-acquires and reports "not
    # owned", so Condition.notify raises on a lock it holds.  That
    # breaks every concurrent.futures.Future created inside a
    # detect_races window (Future.__init__ calls Condition()) — e.g.
    # an asyncio run_in_executor result would silently never resolve.
    def _is_owned(self) -> bool:
        probe = getattr(self._inner, "_is_owned", None)
        if probe is not None:
            return bool(probe())
        # Plain Lock: stdlib Condition's own fallback semantics.
        if self._inner.acquire(blocking=False):
            self._inner.release()
            return False
        return True

    def _release_save(self):
        det = self._det()
        if det is not None:
            det.on_release(id(self))
        saver = getattr(self._inner, "_release_save", None)
        if saver is not None:
            return saver()
        self._inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        restorer = getattr(self._inner, "_acquire_restore", None)
        if restorer is not None:
            restorer(state)
        else:
            self._inner.acquire()
        det = self._det()
        if det is not None:
            det.after_acquire(id(self), self._name, self._reentrant)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self._reentrant else "Lock"
        return f"<InstrumentedLock {kind} {self._name!r}>"


#: Process-global active detector; ``None`` outside detect_races().
_ACTIVE: Optional[RaceDetector] = None


def _guarded_sleep(seconds: float) -> None:
    det = _ACTIVE
    if det is not None:
        det.on_blocking(f"time.sleep({seconds!r})")
    _REAL_SLEEP(seconds)


@contextmanager
def detect_races(
    patch_factories: bool = True, raise_immediately: bool = True
) -> Iterator[RaceDetector]:
    """Run a block under tsan-lite race detection.

    Parameters
    ----------
    patch_factories:
        Replace ``threading.Lock``/``threading.RLock`` so locks created
        inside the window are instrumented, and wrap ``time.sleep`` to
        flag lock-held sleeps.  Set ``False`` when the test constructs
        :class:`InstrumentedLock` objects explicitly.
    raise_immediately:
        Raise on the violating thread the moment a violation is seen
        (default).  With ``False``, violations collect into
        ``detector.violations`` and the first one is raised when the
        window exits — useful when worker threads swallow exceptions.

    Nesting windows is not supported (one process-global detector).
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("detect_races() windows do not nest")
    detector = RaceDetector(raise_immediately=raise_immediately)
    _ACTIVE = detector
    saved: Dict[str, object] = {}
    if patch_factories:
        saved["Lock"] = threading.Lock
        saved["RLock"] = threading.RLock
        saved["sleep"] = time.sleep
        threading.Lock = lambda: InstrumentedLock()  # type: ignore[misc]
        threading.RLock = lambda: InstrumentedLock(  # type: ignore[misc]
            reentrant=True
        )
        time.sleep = _guarded_sleep
    try:
        yield detector
    finally:
        _ACTIVE = None
        if patch_factories:
            threading.Lock = saved["Lock"]  # type: ignore[misc]
            threading.RLock = saved["RLock"]  # type: ignore[misc]
            time.sleep = saved["sleep"]  # type: ignore[assignment]
    if not raise_immediately and detector.violations:
        raise detector.violations[0]
