"""Concurrency-correctness toolchain: static lock analysis + tsan-lite.

Two complementary prongs:

* :mod:`repro.analysis.concurrency.static` — whole-program AST analysis
  of lock discipline (rules A001-A005: guarded-attribute access,
  deadlock cycles, lock-held blocking calls, re-entrant Lock).
* :mod:`repro.analysis.concurrency.runtime` — opt-in runtime detector
  (:class:`InstrumentedLock`, :func:`detect_races`) that validates the
  *observed* lock order under real threaded load.

CLI: ``python -m repro.analysis.concurrency src/`` for the static prong
alone, or ``python -m repro.analysis gate`` for lint + concurrency.
"""

from repro.analysis.concurrency.runtime import (
    InstrumentedLock,
    LockHeldIOError,
    LockOrderError,
    RaceDetector,
    RaceError,
    ReentrantAcquireError,
    detect_races,
)
from repro.analysis.concurrency.static import (
    ARULES,
    analyze_paths,
    analyze_sources,
)

__all__ = [
    "ARULES",
    "InstrumentedLock",
    "LockHeldIOError",
    "LockOrderError",
    "RaceDetector",
    "RaceError",
    "ReentrantAcquireError",
    "analyze_paths",
    "analyze_sources",
    "detect_races",
]
