"""``python -m repro.analysis.concurrency`` — static lock analysis CLI."""

import sys

from repro.analysis.concurrency.static import main

if __name__ == "__main__":
    sys.exit(main())
