"""Static lock-discipline analyzer for the repro codebase (rules A001-A007).

The serving layer (``repro.serve``) runs every request on its own thread
and protects shared state with hand-rolled ``threading.Lock``s.  The
8-thread stress tests catch *some* races, but nothing statically proves
that lock discipline holds — that every mutable attribute of a
lock-owning class is touched under its lock, that no two code paths
acquire locks in opposite orders, and that nobody sleeps or does I/O
while holding a lock.  This module closes that gap with a whole-program
AST analysis in the style of :mod:`repro.analysis.lint`.

Rules
-----
A001
    Guarded attribute accessed outside its lock.  For every class that
    owns a lock the analyzer classifies mutable instance attributes
    (anything *written* after ``__init__``, plus anything explicitly
    annotated) as guarded or not.  Accesses to a guarded attribute from
    a method body that does not hold the guarding lock are flagged.
A002
    Potential deadlock: the cross-class static lock-acquisition graph
    (edges ``held-lock -> acquired-lock`` from nested ``with`` scopes
    and resolved method calls) contains a cycle, i.e. two code paths
    acquire the same pair of locks in opposite orders.
A003
    Blocking operation while holding a lock: ``time.sleep``, subprocess
    spawns, ``socket``/``urllib`` connects, ``open()``, and
    ``Thread.join`` executed inside a ``with self._lock`` scope.
A004
    Re-entrant acquisition of a non-reentrant ``threading.Lock``
    reachable through self-calls (guaranteed deadlock on first
    execution).
A005
    Blocking call inside an ``async def`` body: ``time.sleep``,
    subprocess spawns, sync ``socket``/``urllib`` connects, and
    ``open()`` written directly into a coroutine stall the event loop
    for every connection it serves (the asyncio serving runtime of
    DESIGN §16 is single-threaded).  Calls inside *nested* sync defs
    are exempt — they run wherever they are later invoked, typically an
    executor thread.
A006
    Unbounded wait on a process or pipe primitive: ``.join()`` /
    ``.wait()`` with neither a positional timeout nor ``timeout=``, a
    bare ``.recv()`` on a pipe, or ``.communicate()`` without
    ``timeout=``.  The fleet layer (DESIGN §17) supervises child
    processes that can die at any moment; a wait with no deadline on a
    dead peer hangs the caller forever.  Every such call must carry a
    deadline (``join(timeout=...)``, ``wait(timeout=...)``,
    ``poll(timeout)`` before ``recv()``) and handle expiry.  Awaited
    calls (``await event.wait()``) and calls wrapped in
    ``asyncio.wait_for(...)`` are exempt — asyncio waits are
    cancellable, not stuck.
A007
    Network call hygiene, two shapes.  (a) A ``socket.socket()`` bound
    to a name with no ``settimeout(...)`` call on that name anywhere in
    the same scope: a timeout-less socket turns every ``recv``/
    ``accept``/``connect`` on it into an unbounded wait — the
    socket-level twin of A006.  (b) A retry loop whose backoff grows
    without a cap: ``delay *= 2`` inside a loop, with ``delay`` fed
    straight into a ``sleep``/``wait`` and never clamped by ``min()``
    — one flaky peer and the retry interval runs away to minutes.
    The blessed shapes are ``sock.settimeout(...)`` right after
    creation and :func:`repro.fleet.transport.backoff_delays` (capped,
    seeded jitter) for every retry schedule.

Annotation grammar
------------------
Intent is declared with trailing comments on ``self.X = ...`` lines::

    self._data = {}          # guarded-by: _lock
    self._engine = engine    # not-guarded: swapped atomically, reads tearless

``guarded-by: <attr>`` pins the guarding lock (it must name a lock the
class owns, otherwise A001 fires on the annotation itself).
``not-guarded: <reason>`` opts an attribute out of A001 with a recorded
justification.  Un-annotated attributes are inferred: if every access
outside ``__init__`` happens under the same lock, that lock guards the
attribute; mixed locked/unlocked access flags the unlocked sites.

Conventions honoured
--------------------
* ``with self._lock:`` is the acquisition primitive.  Manual
  ``.acquire()``/``.release()`` calls are not tracked (none exist in the
  tree; prefer ``with``).
* Methods whose name ends in ``_locked`` are analyzed as if all class
  locks were already held — the repo-wide convention for
  caller-holds-the-lock helpers (e.g.
  ``CircuitBreaker._effective_state_locked``).
* ``# noqa: Annn`` and ``# repro-lint: disable=Annn`` suppress findings
  on that line, sharing the machinery of the R-rules.

Run ``python -m repro.analysis.concurrency src/`` or the unified
``python -m repro.analysis gate``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import (
    Violation,
    _attribute_chain,
    _suppressed_rules,
    iter_python_files,
    render_violations,
    resolve_rules,
)

__all__ = [
    "ARULES",
    "ClassModel",
    "analyze_paths",
    "analyze_sources",
    "main",
]

ARULES: Dict[str, str] = {
    "A001": "lock-guarded attribute accessed outside its lock",
    "A002": "lock-acquisition cycle (potential deadlock)",
    "A003": "blocking operation while holding a lock",
    "A004": "re-entrant acquisition of a non-reentrant Lock",
    "A005": "blocking call inside an async def (stalls the event loop)",
    "A006": "unbounded process/pipe wait (join/wait/recv without deadline)",
    "A007": "socket without settimeout, or retry backoff without a cap",
}

#: Constructor leaf names that create a *non-reentrant* mutex.
_PLAIN_LOCK_FACTORIES = {"Lock", "InstrumentedLock", "allocate_lock", "_REAL_LOCK"}
#: Constructor leaf names that create a *reentrant* mutex.
_RLOCK_FACTORIES = {"RLock", "_REAL_RLOCK"}

#: Dotted-call chains (joined with ".") that block the calling thread.
#: Matched against the *trailing* segments of the resolved chain so both
#: ``time.sleep`` and an aliased ``sleep`` import hit.
_BLOCKING_CHAINS = {
    "time.sleep": "time.sleep",
    "subprocess.run": "subprocess.run",
    "subprocess.call": "subprocess.call",
    "subprocess.check_call": "subprocess.check_call",
    "subprocess.check_output": "subprocess.check_output",
    "subprocess.Popen": "subprocess.Popen",
    "os.system": "os.system",
    "socket.create_connection": "socket.create_connection",
    "urllib.request.urlopen": "urllib.request.urlopen",
}

_ANNOTATION_MARKS = ("guarded-by:", "not-guarded:")


# ----------------------------------------------------------------------
# Per-class model
# ----------------------------------------------------------------------
@dataclass
class _Access:
    """One load/store of ``self.<attr>`` inside a method body."""

    attr: str
    line: int
    is_write: bool
    held: Tuple[str, ...]  # lock attrs held at this point, in order


@dataclass
class _CallSite:
    """A call made inside a method, with the locks held around it."""

    kind: str  # "self" | "attr" | "ext"
    target: str  # method name, "attrname.method", or dotted chain
    line: int
    held: Tuple[str, ...]


@dataclass
class _Acquire:
    """A ``with self.<lockattr>:`` entry."""

    lock: str
    line: int
    held: Tuple[str, ...]  # locks already held when this one is taken


@dataclass
class _MethodModel:
    name: str
    line: int
    accesses: List[_Access] = field(default_factory=list)
    calls: List[_CallSite] = field(default_factory=list)
    acquires: List[_Acquire] = field(default_factory=list)
    blocking: List[Tuple[str, int, Tuple[str, ...]]] = field(default_factory=list)


@dataclass
class ClassModel:
    """Everything the analyzer knows about one class definition."""

    name: str
    path: str
    line: int
    locks: Dict[str, bool] = field(default_factory=dict)  # attr -> reentrant?
    #: attr -> lock name it is pinned to (from ``# guarded-by:`` comments)
    guarded_by: Dict[str, str] = field(default_factory=dict)
    #: attr -> reason (from ``# not-guarded:`` comments)
    not_guarded: Dict[str, str] = field(default_factory=dict)
    #: line numbers of guarded-by annotations naming unknown locks
    bad_annotations: List[Tuple[str, str, int]] = field(default_factory=list)
    #: attr -> line of its guarded-by/not-guarded annotation
    annotation_lines: Dict[str, int] = field(default_factory=dict)
    #: attr -> inferred type (class name) from ``self.x = ClassName(...)``
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, _MethodModel] = field(default_factory=dict)
    #: attrs assigned anywhere (used to scope "mutable" candidates)
    init_attrs: Set[str] = field(default_factory=set)


def _leaf_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _lock_kind(value: ast.AST) -> Optional[bool]:
    """Is ``value`` a lock constructor call?  Returns reentrancy or None."""
    if not isinstance(value, ast.Call):
        return None
    leaf = _leaf_name(value.func)
    if leaf in _PLAIN_LOCK_FACTORIES:
        return False
    if leaf in _RLOCK_FACTORIES:
        return True
    return None


def _constructed_class(value: ast.AST) -> Optional[str]:
    """Class name if ``value`` constructs one, descending BoolOp/IfExp.

    Handles the ``breaker or CircuitBreaker()`` and
    ``X(...) if flag else Y(...)`` idioms by taking the first
    recognizable constructor.
    """
    if isinstance(value, ast.Call):
        leaf = _leaf_name(value.func)
        if leaf and leaf[0].isupper():
            return leaf
        return None
    if isinstance(value, ast.BoolOp):
        for operand in value.values:
            name = _constructed_class(operand)
            if name:
                return name
    if isinstance(value, ast.IfExp):
        return _constructed_class(value.body) or _constructed_class(value.orelse)
    return None


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """``self.X`` (plain or subscripted) as a store target -> ``X``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


# ----------------------------------------------------------------------
# Method body walker
# ----------------------------------------------------------------------
class _ExprScanner(ast.NodeVisitor):
    """Collect self-attribute accesses and calls from one expression."""

    def __init__(self, model: _MethodModel, held: Tuple[str, ...]):
        self.model = model
        self.held = held

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            is_write = isinstance(node.ctx, (ast.Store, ast.Del))
            self.model.accesses.append(
                _Access(node.attr, node.lineno, is_write, self.held)
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # ``self.X[k] = v`` / ``del self.X[k]`` mutate the container.
        attr = _self_attr_target(node)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self.model.accesses.append(
                _Access(attr, node.lineno, True, self.held)
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        if chain:
            dotted = ".".join(chain)
            if chain[0] == "self":
                if len(chain) == 2:
                    self.model.calls.append(
                        _CallSite("self", chain[1], node.lineno, self.held)
                    )
                elif len(chain) >= 3:
                    # self.attr.method(...) — resolved via attr_types.
                    self.model.calls.append(
                        _CallSite(
                            "attr",
                            f"{chain[1]}.{chain[-1]}",
                            node.lineno,
                            self.held,
                        )
                    )
            else:
                self.model.calls.append(
                    _CallSite("ext", dotted, node.lineno, self.held)
                )
                blocked = _match_blocking(dotted)
                if blocked is None and dotted == "open":
                    blocked = "open"
                if blocked:
                    self.model.blocking.append(
                        (blocked, node.lineno, self.held)
                    )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs run later, under unknown lock state

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _match_blocking(dotted: str) -> Optional[str]:
    for suffix, canon in _BLOCKING_CHAINS.items():
        if dotted == suffix or dotted.endswith("." + suffix):
            return canon
    return None


class _MethodWalker:
    """Statement-level walk of one method, tracking held locks."""

    def __init__(self, cls: ClassModel, func: ast.FunctionDef):
        self.cls = cls
        self.model = _MethodModel(func.name, func.lineno)
        held: Tuple[str, ...] = ()
        if func.name.endswith("_locked"):
            # Caller-holds-the-lock convention: analyze the body as if
            # every class lock were already held.
            held = tuple(sorted(cls.locks))
        self._walk_body(func.body, held)

    def _scan_expr(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        _ExprScanner(self.model, held).visit(node)

    def _walk_body(self, body: Sequence[ast.stmt], held: Tuple[str, ...]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested def: body runs later, not under these locks
        if isinstance(stmt, ast.With):
            new_held = held
            for item in stmt.items:
                self._scan_expr(item.context_expr, new_held)
                lock = self._with_lock(item.context_expr)
                if lock is not None:
                    self.model.acquires.append(
                        _Acquire(lock, stmt.lineno, new_held)
                    )
                    if lock not in new_held:
                        new_held = new_held + (lock,)
            self._walk_body(stmt.body, new_held)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test, held)
            self._walk_body(stmt.body, held)
            self._walk_body(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.target, held)
            self._scan_expr(stmt.iter, held)
            self._walk_body(stmt.body, held)
            self._walk_body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_body(handler.body, held)
            self._walk_body(stmt.orelse, held)
            self._walk_body(stmt.finalbody, held)
            return
        # Leaf statement: scan all contained expressions at this depth.
        self._scan_expr(stmt, held)

    def _with_lock(self, expr: ast.AST) -> Optional[str]:
        """``with self.<attr>:`` where ``<attr>`` is a class lock."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.cls.locks
        ):
            return expr.attr
        return None


# ----------------------------------------------------------------------
# Class collection
# ----------------------------------------------------------------------
def _collect_class(
    node: ast.ClassDef, path: str, source_lines: Sequence[str]
) -> ClassModel:
    cls = ClassModel(node.name, path, node.lineno)
    funcs = [n for n in node.body if isinstance(n, ast.FunctionDef)]

    # Pass 1: find locks, attr types, and annotations anywhere a
    # ``self.X = ...`` assignment appears (locks are normally created in
    # __init__ but the grammar does not require it).
    for func in funcs:
        in_init = func.name == "__init__"
        for sub in ast.walk(func):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not func:
                continue
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            if value is None:
                continue
            for target in targets:
                attr = _self_attr_target(target)
                if attr is None or isinstance(target, ast.Subscript):
                    continue
                kind = _lock_kind(value)
                if kind is not None:
                    cls.locks[attr] = kind
                else:
                    constructed = _constructed_class(value)
                    if constructed:
                        cls.attr_types.setdefault(attr, constructed)
                if in_init:
                    cls.init_attrs.add(attr)
                _parse_annotation(cls, attr, sub.lineno, source_lines)
    # Validate guarded-by targets only once every lock is known — the
    # annotation may precede the lock's own assignment line.
    for attr, lock in cls.guarded_by.items():
        if lock not in cls.locks:
            cls.bad_annotations.append((attr, lock, cls.annotation_lines[attr]))
    return cls


def _parse_annotation(
    cls: ClassModel, attr: str, lineno: int, source_lines: Sequence[str]
) -> None:
    if lineno - 1 >= len(source_lines):
        return
    line = source_lines[lineno - 1]
    if "#" not in line:
        return
    comment = line.split("#", 1)[1].strip()
    if comment.startswith("guarded-by:"):
        lock = comment[len("guarded-by:"):].strip().split()[0]
        cls.guarded_by[attr] = lock
        cls.annotation_lines[attr] = lineno
    elif comment.startswith("not-guarded:"):
        reason = comment[len("not-guarded:"):].strip()
        cls.not_guarded[attr] = reason or "unspecified"
        cls.annotation_lines[attr] = lineno


def _collect_models(tree: ast.AST, path: str, source: str) -> List[ClassModel]:
    source_lines = source.splitlines()
    models: List[ClassModel] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls = _collect_class(node, path, source_lines)
        for func in node.body:
            if isinstance(func, ast.FunctionDef):
                walker = _MethodWalker(cls, func)
                cls.methods[func.name] = walker.model
        models.append(cls)
    return models


# ----------------------------------------------------------------------
# A001: guarded attribute accessed outside its lock
# ----------------------------------------------------------------------
def _check_a001(cls: ClassModel) -> List[Violation]:
    if not cls.locks:
        return []
    found: List[Violation] = []
    for attr, lock, lineno in cls.bad_annotations:
        found.append(
            Violation(
                "A001",
                cls.path,
                lineno,
                f"{cls.name}.{attr} annotated guarded-by: {lock}, but "
                f"{cls.name} owns no lock named {lock!r}",
            )
        )

    # Mutable candidates: attributes written outside __init__, plus
    # explicitly pinned ones.  Lock attrs themselves are exempt.
    accesses: Dict[str, List[Tuple[str, _Access]]] = {}
    for method in cls.methods.values():
        if method.name == "__init__":
            continue
        for acc in method.accesses:
            if acc.attr in cls.locks:
                continue
            accesses.setdefault(acc.attr, []).append((method.name, acc))

    candidates: Set[str] = set(cls.guarded_by)
    for attr, pairs in accesses.items():
        if any(acc.is_write for _, acc in pairs):
            candidates.add(attr)
    candidates -= set(cls.not_guarded)

    for attr in sorted(candidates):
        pairs = accesses.get(attr, [])
        if not pairs:
            continue
        pinned = cls.guarded_by.get(attr)
        if pinned is None:
            locked = [acc for _, acc in pairs if acc.held]
            if not locked:
                # Never accessed under a lock: in a lock-owning class a
                # post-init write with no lock anywhere is suspicious —
                # flag the writes, not the reads.
                for _, acc in pairs:
                    if acc.is_write:
                        found.append(
                            Violation(
                                "A001",
                                cls.path,
                                acc.line,
                                f"{cls.name}.{attr} written outside any "
                                f"lock in a lock-owning class; wrap in "
                                f"'with self.{_first_lock(cls)}:' or "
                                "annotate '# not-guarded: <reason>'",
                            )
                        )
                continue
            pinned = _majority_lock(locked)
        for _, acc in pairs:
            if pinned not in acc.held:
                verb = "written" if acc.is_write else "read"
                found.append(
                    Violation(
                        "A001",
                        cls.path,
                        acc.line,
                        f"{cls.name}.{attr} is guarded by "
                        f"self.{pinned} but {verb} here without it",
                    )
                )
    return found


def _first_lock(cls: ClassModel) -> str:
    return sorted(cls.locks)[0]


def _majority_lock(locked: Sequence[_Access]) -> str:
    counts: Dict[str, int] = {}
    for acc in locked:
        for lock in acc.held:
            counts[lock] = counts.get(lock, 0) + 1
    # Highest count wins; ties break lexicographically for determinism.
    return min(counts, key=lambda k: (-counts[k], k))


# ----------------------------------------------------------------------
# Acquisition closure (shared by A002/A004)
# ----------------------------------------------------------------------
class _Program:
    """Cross-file view: class name -> model, plus memoized closures."""

    def __init__(self, models: Sequence[ClassModel]):
        self.by_name: Dict[str, ClassModel] = {}
        for model in models:
            # First definition wins on name collisions (mirrors R003's
            # project-wide class resolution being name-keyed).
            self.by_name.setdefault(model.name, model)
        self._closure_cache: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}

    def closure(self, cls_name: str, method: str) -> Set[Tuple[str, str]]:
        """All (class, lock) nodes acquirable by running this method."""
        key = (cls_name, method)
        if key in self._closure_cache:
            return self._closure_cache[key]
        self._closure_cache[key] = set()  # cycle guard
        cls = self.by_name.get(cls_name)
        if cls is None or method not in cls.methods:
            return set()
        model = cls.methods[method]
        result: Set[Tuple[str, str]] = set()
        for acq in model.acquires:
            result.add((cls_name, acq.lock))
        for call in model.calls:
            for target_cls, target_method in self._resolve(cls, call):
                result |= self.closure(target_cls, target_method)
        self._closure_cache[key] = result
        return result

    def _resolve(
        self, cls: ClassModel, call: _CallSite
    ) -> List[Tuple[str, str]]:
        if call.kind == "self":
            return [(cls.name, call.target)]
        if call.kind == "attr":
            attr, method = call.target.split(".", 1)
            target_cls = cls.attr_types.get(attr)
            if target_cls and target_cls in self.by_name:
                return [(target_cls, method)]
        return []


def _lock_node(cls_name: str, lock: str) -> str:
    return f"{cls_name}.{lock}"


def _build_lock_graph(
    program: _Program,
) -> Tuple[Dict[str, Set[str]], Dict[Tuple[str, str], Tuple[str, int]]]:
    """Edges held->acquired, plus one witness (path, line) per edge."""
    edges: Dict[str, Set[str]] = {}
    witness: Dict[Tuple[str, str], Tuple[str, int]] = {}

    def add_edge(src: str, dst: str, path: str, line: int) -> None:
        if src == dst:
            return  # self-loops are A004's territory, not a cycle here
        edges.setdefault(src, set()).add(dst)
        key = (src, dst)
        if key not in witness or (path, line) < witness[key]:
            witness[key] = (path, line)

    for cls in program.by_name.values():
        for method in cls.methods.values():
            for acq in method.acquires:
                dst = _lock_node(cls.name, acq.lock)
                for held in acq.held:
                    add_edge(
                        _lock_node(cls.name, held), dst, cls.path, acq.line
                    )
            for call in method.calls:
                if not call.held:
                    continue
                for tgt_cls, tgt_method in program._resolve(cls, call):
                    for node in program.closure(tgt_cls, tgt_method):
                        dst = _lock_node(*node)
                        for held in call.held:
                            add_edge(
                                _lock_node(cls.name, held),
                                dst,
                                cls.path,
                                call.line,
                            )
    return edges, witness


def _tarjan_sccs(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components (iterative Tarjan)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]
    nodes = set(edges)
    for targets in edges.values():
        nodes |= targets

    for root in sorted(nodes):
        if root in index:
            continue
        work: List[Tuple[str, Iterable[str]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def _check_a002(program: _Program) -> List[Violation]:
    edges, witness = _build_lock_graph(program)
    found: List[Violation] = []
    for scc in _tarjan_sccs(edges):
        if len(scc) < 2:
            continue
        members = set(scc)
        intra = [
            (src, dst)
            for (src, dst) in witness
            if src in members and dst in members
        ]
        if not intra:
            continue
        anchor = min(intra, key=lambda e: witness[e])
        path, line = witness[anchor]
        cycle = " -> ".join(sorted(members))
        found.append(
            Violation(
                "A002",
                path,
                line,
                f"lock-acquisition cycle: {cycle}; two code paths take "
                "these locks in opposite orders (potential deadlock)",
            )
        )
    return found


# ----------------------------------------------------------------------
# A003: blocking operation while holding a lock
# ----------------------------------------------------------------------
def _check_a003(cls: ClassModel) -> List[Violation]:
    found: List[Violation] = []
    thread_attrs = {
        attr for attr, typ in cls.attr_types.items() if typ == "Thread"
    }
    for method in cls.methods.values():
        for desc, line, held in method.blocking:
            if held:
                found.append(
                    Violation(
                        "A003",
                        cls.path,
                        line,
                        f"{desc}() while holding self.{held[-1]} blocks "
                        "every thread contending for the lock; move the "
                        "blocking call outside the critical section",
                    )
                )
        for call in method.calls:
            if not call.held:
                continue
            # ``self.<thread_attr>.join()`` or ``<local_thread>.join()``.
            if call.kind == "attr":
                attr, meth = call.target.split(".", 1)
                if meth == "join" and attr in thread_attrs:
                    found.append(
                        Violation(
                            "A003",
                            cls.path,
                            call.line,
                            f"Thread.join() while holding "
                            f"self.{call.held[-1]}; the joined thread may "
                            "need the same lock to finish (deadlock)",
                        )
                    )
    return found


# ----------------------------------------------------------------------
# A004: re-entrant acquisition of a non-reentrant Lock
# ----------------------------------------------------------------------
def _check_a004(program: _Program) -> List[Violation]:
    found: List[Violation] = []
    for cls in program.by_name.values():
        nonreentrant = {a for a, r in cls.locks.items() if not r}
        if not nonreentrant:
            continue
        for method in cls.methods.values():
            for acq in method.acquires:
                if acq.lock in nonreentrant and acq.lock in acq.held:
                    found.append(
                        Violation(
                            "A004",
                            cls.path,
                            acq.line,
                            f"self.{acq.lock} is a non-reentrant Lock "
                            "already held here; re-acquiring deadlocks "
                            "(use RLock or hoist the critical section)",
                        )
                    )
            for call in method.calls:
                held_plain = [h for h in call.held if h in nonreentrant]
                if not held_plain:
                    continue
                for tgt_cls, tgt_method in program._resolve(cls, call):
                    closure = program.closure(tgt_cls, tgt_method)
                    for lock in held_plain:
                        if (cls.name, lock) in closure:
                            found.append(
                                Violation(
                                    "A004",
                                    cls.path,
                                    call.line,
                                    f"call to {tgt_cls}.{tgt_method}() "
                                    f"re-acquires non-reentrant "
                                    f"self.{lock} already held here "
                                    "(guaranteed deadlock); use a "
                                    "*_locked helper instead",
                                )
                            )
    return found


# ----------------------------------------------------------------------
# A005: blocking call inside an async def
# ----------------------------------------------------------------------
def _iter_async_body(func: ast.AsyncFunctionDef):
    """Yield the nodes that execute *on the event loop* inside ``func``.

    Nested function bodies are skipped: a nested sync ``def`` runs
    wherever it is later called (possibly an executor thread, where
    blocking is fine), and a nested ``async def`` is found separately
    by the outer ``ast.walk`` so descending here would double-report.
    """
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_a005(tree: ast.AST, path: str) -> List[Violation]:
    """Flag event-loop stalls: sync sleeps / sockets / subprocess / file
    I/O written directly into a coroutine body.

    One blocking call in one handler freezes *every* connection the
    loop is serving — the asyncio analogue of A003's
    blocking-under-a-lock.  The fix is the same shape in every case:
    ``await`` the asyncio equivalent, or push the call into an executor
    (``loop.run_in_executor``).
    """
    found: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        for sub in _iter_async_body(node):
            if not isinstance(sub, ast.Call):
                continue
            chain = _attribute_chain(sub.func)
            if not chain:
                continue
            dotted = ".".join(chain)
            blocked = _match_blocking(dotted)
            if blocked is None and dotted == "open":
                blocked = "open"
            if blocked:
                found.append(
                    Violation(
                        "A005",
                        path,
                        sub.lineno,
                        f"blocking {blocked}() inside async def "
                        f"{node.name}() stalls the event loop; await the "
                        "asyncio equivalent or dispatch it via "
                        "loop.run_in_executor",
                    )
                )
    return found


# ----------------------------------------------------------------------
# A006: unbounded waits on process / pipe primitives
# ----------------------------------------------------------------------
#: Method leaves that block on a peer process, with the fix hint shown
#: in the violation message.
_A006_METHODS = {
    "join": "join(timeout=...)",
    "wait": "wait(timeout=...)",
    "recv": "poll(timeout) before recv()",
    "communicate": "communicate(timeout=...)",
}


def _check_a006(tree: ast.AST, path: str) -> List[Violation]:
    """Flag waits that can hang forever on a dead peer process.

    The supervision loops of DESIGN §17 only work if every wait has a
    deadline: a ``join()``/``wait()``/``recv()`` with no timeout on a
    process that was SIGKILLed never returns, and the supervisor that
    should have restarted it is the thing that is stuck.  Heuristics
    keep the rule precise:

    * a positional argument bounds ``join``/``wait`` (their first
      parameter is the timeout) and disqualifies ``recv`` (a
      ``socket.recv(n)`` reads bytes, it is not a pipe ``recv()``) —
      so ``str.join(parts)`` / ``os.path.join(a, b)`` never match;
    * ``await``-ed calls are exempt, as are calls passed to
      ``asyncio.wait_for(...)``: asyncio waits are cancellable and
      ``wait_for`` *is* the deadline.
    """
    bounded: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
            bounded.add(id(node.value))
        elif isinstance(node, ast.Call):
            chain = _attribute_chain(node.func)
            if chain and chain[-1] == "wait_for":
                bounded.update(
                    id(arg) for arg in node.args if isinstance(arg, ast.Call)
                )
    found: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or id(node) in bounded:
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        leaf = node.func.attr
        if leaf not in _A006_METHODS:
            continue
        if any(kw.arg == "timeout" for kw in node.keywords):
            continue
        if leaf != "communicate" and node.args:
            continue
        found.append(
            Violation(
                "A006",
                path,
                node.lineno,
                f"unbounded .{leaf}() hangs forever if the peer process "
                f"dies; give it a deadline ({_A006_METHODS[leaf]}) and "
                "handle expiry",
            )
        )
    return found


# ----------------------------------------------------------------------
# A007: timeout-less sockets and uncapped retry backoff
# ----------------------------------------------------------------------
def _a007_scopes(tree: ast.AST) -> Iterable[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every def.

    A socket created in one function and configured in another cannot be
    matched statically, so creation and ``settimeout`` are required to
    share a scope — which is also the only shape the tree uses.
    """
    yield tree, list(getattr(tree, "body", []))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, list(node.body)


def _scope_walk(body: Sequence[ast.stmt]) -> Iterable[ast.AST]:
    """Walk ``body`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_socket_ctor(call: ast.Call) -> bool:
    chain = _attribute_chain(call.func)
    if not chain:
        return False
    dotted = ".".join(chain)
    return (dotted == "socket"          # from socket import socket
            or dotted == "socket.socket"
            or dotted.endswith(".socket.socket"))


def _target_repr(node: ast.AST) -> Optional[str]:
    """Dotted name a socket is bound to (``sock``, ``self._sock``)."""
    chain = _attribute_chain(node)
    return ".".join(chain) if chain else None


def _a007_sockets(body: Sequence[ast.stmt], path: str) -> List[Violation]:
    created: List[Tuple[str, int]] = []
    bounded: Set[str] = set()
    for node in _scope_walk(body):
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Call) and _is_socket_ctor(node.value):
                for target in node.targets:
                    name = _target_repr(target)
                    if name:
                        created.append((name, node.lineno))
        elif isinstance(node, ast.withitem):
            if (isinstance(node.context_expr, ast.Call)
                    and _is_socket_ctor(node.context_expr)
                    and node.optional_vars is not None):
                name = _target_repr(node.optional_vars)
                if name:
                    created.append((name, node.context_expr.lineno))
        elif isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "settimeout"):
                name = _target_repr(node.func.value)
                if name:
                    bounded.add(name)
    return [
        Violation(
            "A007",
            path,
            lineno,
            f"socket {name!r} never gets a settimeout(); every recv/"
            "accept/connect on it can hang forever — call "
            f"{name}.settimeout(...) right after creation",
        )
        for name, lineno in created
        if name not in bounded
    ]


#: Call leaves whose argument is a delay the caller sleeps/waits for.
_A007_SLEEPERS = {"sleep", "wait"}


def _a007_backoff(loop: ast.AST, path: str) -> List[Violation]:
    body = list(getattr(loop, "body", [])) + list(getattr(loop, "orelse", []))
    nodes = list(_scope_walk(body))
    growers: Dict[str, int] = {}
    for node in nodes:
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Mult)
                and isinstance(node.target, ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, (int, float))
                and node.value.value > 1):
            growers.setdefault(node.target.id, node.lineno)
    if not growers:
        return []
    capped: Set[str] = set()
    slept: Set[str] = set()
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if not chain:
            continue
        if chain[-1] == "min":
            # min(cap, delay) anywhere in the loop caps the grower,
            # whether inline in the sleep or via delay = min(cap, delay).
            for arg in ast.walk(node):
                if isinstance(arg, ast.Name) and arg.id in growers:
                    capped.add(arg.id)
        elif chain[-1] in _A007_SLEEPERS:
            args = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg == "timeout"
            ]
            for arg in args:
                if isinstance(arg, ast.Name) and arg.id in growers:
                    slept.add(arg.id)
    return [
        Violation(
            "A007",
            path,
            growers[name],
            f"retry backoff {name!r} doubles forever with no cap; one "
            "flaky peer and the retry interval runs away — clamp it "
            f"(e.g. {name} = min(cap, {name} * 2)) or draw delays from "
            "repro.fleet.transport.backoff_delays()",
        )
        for name in sorted(slept)
        if name not in capped
    ]


def _check_a007(tree: ast.AST, path: str) -> List[Violation]:
    """Flag timeout-less sockets and uncapped retry backoff.

    Both shapes are the quiet precursors of the hangs A006 catches at
    the call site: a socket created without ``settimeout`` makes every
    later ``recv``/``accept`` unbounded, and an uncapped ``delay *= 2``
    retry loop converts one flaky peer into minutes of dead air.  The
    transport layer's :func:`~repro.fleet.transport.backoff_delays`
    (capped, seeded jitter) is the sanctioned retry schedule.
    """
    found: List[Violation] = []
    for _scope, body in _a007_scopes(tree):
        found += _a007_sockets(body, path)
    for node in ast.walk(tree):
        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            found += _a007_backoff(node, path)
    return found


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def analyze_sources(
    sources: Sequence[Tuple[str, str]],
    rules: Optional[Set[str]] = None,
) -> List[Violation]:
    """Analyze ``(source, path)`` pairs as one program.

    A002/A004 resolve method calls across files, so the whole file set
    must be passed in one call (like R003 in the linter).
    """
    active = set(ARULES) if rules is None else rules
    models: List[ClassModel] = []
    suppressed_by_path: Dict[str, Dict[int, Set[str]]] = {}
    violations: List[Violation] = []
    for source, path in sources:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    "A000", path, exc.lineno or 0, f"syntax error: {exc.msg}"
                )
            )
            continue
        suppressed_by_path[path] = _suppressed_rules(source, ARULES)
        models.extend(_collect_models(tree, path, source))
        if "A005" in active:
            violations += _check_a005(tree, path)
        if "A006" in active:
            violations += _check_a006(tree, path)
        if "A007" in active:
            violations += _check_a007(tree, path)

    program = _Program(models)
    if "A001" in active:
        for cls in models:
            violations += _check_a001(cls)
    if "A002" in active:
        violations += _check_a002(program)
    if "A003" in active:
        for cls in models:
            violations += _check_a003(cls)
    if "A004" in active:
        violations += _check_a004(program)

    violations = [
        v
        for v in violations
        if v.rule not in suppressed_by_path.get(v.path, {}).get(v.line, set())
    ]
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def analyze_paths(
    paths: Sequence[str], rules: Optional[Set[str]] = None
) -> List[Violation]:
    """Analyze every ``*.py`` under ``paths`` as one program."""
    sources: List[Tuple[str, str]] = []
    violations: List[Violation] = []
    for file in iter_python_files(paths):
        try:
            sources.append((file.read_text(encoding="utf-8"), str(file)))
        except (OSError, UnicodeDecodeError) as exc:
            violations.append(
                Violation("A000", str(file), 0, f"could not read file: {exc}")
            )
    violations.extend(analyze_sources(sources, rules=rules))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.concurrency",
        description="Static lock-discipline analysis (rules A001-A007; "
        "see repro.analysis.concurrency.static docstring).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--select", default=None, help="comma-separated subset of A-rules"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated A-rules to skip"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(ARULES.items()):
            print(f"{rule}: {desc}")
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    rules, unknown = resolve_rules(args.select, args.ignore, ARULES)
    if unknown:
        parser.error(f"unknown rules: {sorted(unknown)}")

    violations = analyze_paths(args.paths, rules=rules)
    rendered = render_violations(violations, args.fmt)
    if rendered:
        print(rendered)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
