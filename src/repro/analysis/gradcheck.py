"""Finite-difference gradient verification for the autodiff engine.

Every trainable component in this repository — CATE-HGN and all twelve
baselines — rides on the hand-rolled reverse-mode tape in
:mod:`repro.tensor`.  A single wrong backward closure silently corrupts
every reported number, so this module provides the central correctness
harness:

- :func:`check_gradients` verifies the analytic gradient of an arbitrary
  ``fn(*tensors) -> Tensor`` against two-sided (central) finite
  differences, with per-element relative-error reporting.
- :func:`check_module` sweeps every :class:`~repro.nn.Parameter` of an
  :class:`~repro.nn.Module`, re-running a deterministic forward closure
  under elementwise perturbation.

Both helpers raise :class:`GradcheckError` on mismatch (opt-out via
``raise_on_failure=False``) and return a :class:`GradcheckResult` whose
``max_rel_error`` is the quantity the test-suite asserts against
(``< 1e-5`` for all ops and layers; see ``tests/test_gradcheck_ops.py``).

Non-scalar outputs are contracted against a fixed, seeded projection
vector so the check exercises the full Jacobian action rather than just
the gradient of ``sum()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = [
    "GradcheckError",
    "ElementFailure",
    "GradcheckResult",
    "check_gradients",
    "check_module",
]

#: Seed for the deterministic output-projection vector.  Fixed so failures
#: reproduce bit-for-bit across runs and machines.
_PROJECTION_SEED = 0x5EED


class GradcheckError(AssertionError):
    """Raised when an analytic gradient disagrees with finite differences."""


@dataclass(frozen=True)
class ElementFailure:
    """A single element whose analytic/numeric gradients disagree."""

    input_name: str
    index: Tuple[int, ...]
    analytic: float
    numeric: float
    rel_error: float

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (
            f"{self.input_name}{list(self.index)}: analytic={self.analytic:.6e} "
            f"numeric={self.numeric:.6e} rel={self.rel_error:.3e}"
        )


@dataclass
class GradcheckResult:
    """Outcome of a gradient check.

    ``max_rel_error`` is 0.0 when every compared element matched exactly
    (within ``atol`` both ways), and ``passed`` reflects whether all
    elements satisfied ``|a - n| <= atol + rtol * max(|a|, |n|)``.
    """

    passed: bool
    max_rel_error: float
    num_elements: int
    failures: List[ElementFailure] = field(default_factory=list)
    analytic: Dict[str, np.ndarray] = field(default_factory=dict)
    numeric: Dict[str, np.ndarray] = field(default_factory=dict)

    def summary(self, max_lines: int = 10) -> str:
        head = (
            f"gradcheck {'PASSED' if self.passed else 'FAILED'}: "
            f"{self.num_elements} elements, max_rel_error={self.max_rel_error:.3e}"
        )
        if not self.failures:
            return head
        lines = [head, f"{len(self.failures)} mismatched elements:"]
        lines += [f"  {f}" for f in self.failures[:max_lines]]
        if len(self.failures) > max_lines:
            lines.append(f"  ... and {len(self.failures) - max_lines} more")
        return "\n".join(lines)


def _projection(shape: Tuple[int, ...]) -> np.ndarray:
    """Deterministic unit-scale projection array for non-scalar outputs."""
    rng = np.random.default_rng(_PROJECTION_SEED)
    return rng.uniform(0.5, 1.5, size=shape)


def _scalarize(out: Tensor, projection: Optional[np.ndarray]) -> Tensor:
    """Contract ``out`` to a scalar with a fixed projection vector."""
    if out.data.size == 1 and out.data.ndim == 0:
        return out
    if projection is None:
        projection = _projection(out.shape)
    return (out * Tensor(projection)).sum()


def _rel_error(analytic: np.ndarray, numeric: np.ndarray) -> np.ndarray:
    scale = np.maximum(np.maximum(np.abs(analytic), np.abs(numeric)), 1e-12)
    return np.abs(analytic - numeric) / scale


def _numeric_gradient(
    scalar_fn: Callable[[], float], array: np.ndarray, eps: float
) -> np.ndarray:
    """Two-sided finite differences of ``scalar_fn`` w.r.t. ``array``.

    ``array`` is perturbed in place element-by-element and restored; the
    caller re-runs the full forward closure at every probe.
    """
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = scalar_fn()
        flat[i] = orig - eps
        f_minus = scalar_fn()
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def _compare(
    named_arrays: Sequence[Tuple[str, np.ndarray, np.ndarray]],
    rtol: float,
    atol: float,
) -> GradcheckResult:
    failures: List[ElementFailure] = []
    max_rel = 0.0
    total = 0
    analytic_map: Dict[str, np.ndarray] = {}
    numeric_map: Dict[str, np.ndarray] = {}
    for name, analytic, numeric in named_arrays:
        analytic_map[name] = analytic
        numeric_map[name] = numeric
        total += analytic.size
        err = np.abs(analytic - numeric)
        tol = atol + rtol * np.maximum(np.abs(analytic), np.abs(numeric))
        bad = err > tol
        rel = _rel_error(analytic, numeric)
        # Only count elements that are not pure float-noise around zero.
        meaningful = err > atol
        if np.any(meaningful):
            max_rel = max(max_rel, float(rel[meaningful].max()))
        for idx in np.argwhere(bad):
            tidx = tuple(int(i) for i in idx)
            failures.append(
                ElementFailure(
                    input_name=name,
                    index=tidx,
                    analytic=float(analytic[tidx]),
                    numeric=float(numeric[tidx]),
                    rel_error=float(rel[tidx]),
                )
            )
    return GradcheckResult(
        passed=not failures,
        max_rel_error=max_rel,
        num_elements=total,
        failures=failures,
        analytic=analytic_map,
        numeric=numeric_map,
    )


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-5,
    atol: float = 1e-8,
    raise_on_failure: bool = True,
    names: Optional[Sequence[str]] = None,
) -> GradcheckResult:
    """Verify analytic gradients of ``fn`` w.r.t. every tensor in ``inputs``.

    Parameters
    ----------
    fn:
        Differentiable function of the input tensors.  May return a tensor
        of any shape; non-scalar outputs are contracted with a fixed
        random projection so the whole Jacobian is exercised.
    inputs:
        Tensors to differentiate with respect to.  ``requires_grad`` is
        forced on for the duration of the check and restored afterwards.
    eps:
        Central-difference step.  ``1e-6`` balances truncation against
        round-off for float64.
    rtol, atol:
        Element ``(a, n)`` passes when ``|a - n| <= atol + rtol * max(|a|, |n|)``.
    raise_on_failure:
        Raise :class:`GradcheckError` (with a per-element report) instead
        of returning a failing result.
    names:
        Optional labels for the inputs (defaults to ``input0``, ...).

    Notes
    -----
    ``fn`` must be *deterministic*: it is re-evaluated ``2 * n + 1`` times
    for ``n`` total input elements.  Stochastic ops (dropout) must be
    disabled or driven by a freshly-seeded generator inside ``fn``.
    """
    tensors = list(inputs)
    if not tensors:
        raise ValueError("check_gradients needs at least one input tensor")
    if names is None:
        names = [f"input{i}" for i in range(len(tensors))]
    if len(names) != len(tensors):
        raise ValueError("names and inputs length mismatch")

    saved_flags = [t.requires_grad for t in tensors]
    saved_grads = [t.grad for t in tensors]
    projection: Dict[str, Optional[np.ndarray]] = {"value": None}

    def scalar_forward() -> Tensor:
        out = fn(*tensors)
        if not isinstance(out, Tensor):
            raise TypeError(
                f"fn must return a Tensor, got {type(out).__name__}"
            )
        if projection["value"] is None and out.data.size > 1:
            projection["value"] = _projection(out.shape)
        return _scalarize(out, projection["value"])

    try:
        for t in tensors:
            t.requires_grad = True
            t.grad = None
        loss = scalar_forward()
        loss.backward()
        analytic = []
        for name, t in zip(names, tensors):
            if t.grad is None:
                analytic.append((name, np.zeros_like(t.data)))
            else:
                analytic.append((name, np.array(t.grad, dtype=np.float64)))

        def probe() -> float:
            return float(scalar_forward().data)

        rows = []
        for (name, a_grad), t in zip(analytic, tensors):
            numeric = _numeric_gradient(probe, t.data, eps)
            rows.append((name, a_grad, numeric))
    finally:
        for t, flag, grad in zip(tensors, saved_flags, saved_grads):
            t.requires_grad = flag
            t.grad = grad

    result = _compare(rows, rtol=rtol, atol=atol)
    if raise_on_failure and not result.passed:
        raise GradcheckError(result.summary())
    return result


def check_module(
    module,
    input_factory: Callable[[], Sequence],
    eps: float = 1e-6,
    rtol: float = 1e-5,
    atol: float = 1e-8,
    raise_on_failure: bool = True,
    forward: Optional[Callable[..., Tensor]] = None,
) -> GradcheckResult:
    """Verify gradients of every :class:`Parameter` of ``module``.

    Parameters
    ----------
    module:
        Any :class:`repro.nn.Module`.  It is switched to ``eval()`` for
        the duration of the check (dropout must be identity for finite
        differences to be meaningful) and restored afterwards.
    input_factory:
        Zero-argument callable returning the positional arguments for the
        forward pass.  Called once; the returned inputs are reused for
        every finite-difference probe, so they must not be consumed.
    forward:
        Optional override of the forward callable (defaults to
        ``module(*args)``); use for modules whose differentiable entry
        point is a named method, e.g. ``lambda *a: mod.score(*a)``.
    """
    params = list(module.named_parameters())
    if not params:
        raise ValueError(
            f"{type(module).__name__} has no parameters to gradcheck"
        )
    args = tuple(input_factory())
    call = forward if forward is not None else module
    was_training = getattr(module, "training", False)
    module.eval()
    projection: Dict[str, Optional[np.ndarray]] = {"value": None}

    def scalar_forward() -> Tensor:
        out = call(*args)
        if not isinstance(out, Tensor):
            raise TypeError(
                f"module forward must return a Tensor, got {type(out).__name__}"
            )
        if projection["value"] is None and out.data.size > 1:
            projection["value"] = _projection(out.shape)
        return _scalarize(out, projection["value"])

    try:
        module.zero_grad()
        loss = scalar_forward()
        loss.backward()

        def probe() -> float:
            return float(scalar_forward().data)

        rows = []
        for name, param in params:
            analytic = (
                np.zeros_like(param.data)
                if param.grad is None
                else np.array(param.grad, dtype=np.float64)
            )
            numeric = _numeric_gradient(probe, param.data, eps)
            rows.append((name, analytic, numeric))
    finally:
        module.zero_grad()
        module.train(was_training)

    result = _compare(rows, rtol=rtol, atol=atol)
    if raise_on_failure and not result.passed:
        raise GradcheckError(
            f"{type(module).__name__}: {result.summary()}"
        )
    return result
