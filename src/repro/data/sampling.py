"""Seeded minibatch + k-hop typed neighbor sampling (DESIGN §15).

The graphbolt-style pipeline behind ``CATEHGN.fit(sampler=...)``:

- :class:`ItemSampler` — deterministic, resumable seed-batch iterator.
  The epoch permutation is a pure function of ``(seed, epoch)`` (drawn
  from a fresh ``default_rng([seed, epoch])``), so its complete state is
  two integers: resuming from ``(epoch, cursor)`` replays the exact
  remaining batch sequence without storing the permutation.
- :class:`NeighborSampler` — k-hop typed neighborhood expansion over
  any CSC source (an on-disk :class:`~repro.data.store.GraphStore`, read
  through its memmaps, or a live :class:`~repro.hetnet.HeteroGraph`
  through its destination-grouped ``csr()`` index).  Per-edge-type
  fanouts, with- and without-replacement modes, vectorized picks; owns
  a seeded RNG whose bit-generator state is part of the resume state.
- :class:`MinibatchSampler` — composes the two into mini
  :class:`~repro.core.hgn.GraphBatch` objects: sampled-edge subgraph
  (not induced — only edges the sampler drew), per-type sorted original
  ids, features gathered row-wise from the source (a few pages of a
  memmapped store, never the full matrix), the batch's own
  ``BatchStructure`` cache per sampled topology, and deterministic
  label-input channels (known labels of *non-seed* papers in the
  subgraph are visible; a seed never sees its own label).

Every sampled edge exists in the source, fanout caps hold per edge type,
every batch contains its seeds, and a fixed seed yields a bitwise
identical sample sequence — all pinned by
``tests/test_sampling_properties.py``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..hetnet import HeteroGraph
from ..hetnet.schema import PAPER, EdgeTypeKey
from .store import GraphStore

__all__ = [
    "ItemSampler",
    "MiniBatch",
    "MinibatchSampler",
    "NeighborSampler",
    "SampledSubgraph",
    "shard_items",
]

FanoutSpec = Union[int, Mapping[EdgeTypeKey, int]]


# ----------------------------------------------------------------------
# Source adapter: one CSC-shaped view over GraphStore / HeteroGraph
# ----------------------------------------------------------------------
class _Source:
    """Uniform sampling view over a store or a live graph.

    Reads go through the base object on every call, so a live graph's
    topology rewrites (TE term refinement calls ``set_edges``, which
    drops the affected ``csr`` cache entry) are picked up immediately.
    """

    def __init__(self, base: Union[GraphStore, HeteroGraph]) -> None:
        if isinstance(base, GraphStore):
            self._store: Optional[GraphStore] = base
            self._graph: Optional[HeteroGraph] = None
        elif isinstance(base, HeteroGraph):
            self._store = None
            self._graph = base
        else:
            raise TypeError(
                f"expected GraphStore or HeteroGraph, got {type(base)!r}"
            )
        self.base = base

    @property
    def node_types(self) -> List[str]:
        if self._store is not None:
            return list(self._store.num_nodes)
        return list(self._graph.schema.node_types)

    @property
    def num_nodes(self) -> Dict[str, int]:
        return dict(self.base.num_nodes)

    @property
    def edge_keys(self) -> List[EdgeTypeKey]:
        if self._store is not None:
            return list(self._store.edge_keys)
        return list(self._graph.edges)

    def csc(self, key: EdgeTypeKey
            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(indptr, src indices, weights) grouped by destination."""
        if self._store is not None:
            csc = self._store.csc(key)
            return csc.indptr, csc.indices, csc.weights
        csr = self._graph.csr(key)  # dst-grouped == CSC
        return csr.indptr, csr.src, csr.weight

    def features(self, node_type: str) -> np.ndarray:
        if self._store is not None:
            return self._store.features(node_type)
        return self._graph.node_features[node_type]


def _as_source(base) -> _Source:
    return base if isinstance(base, _Source) else _Source(base)


def _normalize_fanouts(fanouts: FanoutSpec,
                       edge_keys: List[EdgeTypeKey]
                       ) -> Dict[EdgeTypeKey, int]:
    """Expand a fanout spec to one int per edge type.

    An ``int`` applies to every edge type; a mapping applies per type
    (types it omits get fanout 0 — not expanded).  ``-1`` means take
    *all* neighbors of that type.
    """
    if isinstance(fanouts, int):
        return {key: int(fanouts) for key in edge_keys}
    out = {key: 0 for key in edge_keys}
    for key, value in fanouts.items():
        key = tuple(key)
        if key not in out:
            raise ValueError(f"fanout given for unknown edge type {key}")
        out[key] = int(value)
    return out


# ----------------------------------------------------------------------
# ItemSampler
# ----------------------------------------------------------------------
def shard_items(items: np.ndarray, num_shards: int, shard: int) -> np.ndarray:
    """Deterministic hash partition of an item array (DESIGN §17).

    Each item goes to ``splitmix64(item) % num_shards`` — a pure function
    of the item id, so every process computes the same partition without
    coordination, the shards are disjoint and cover the input, and the
    assignment is independent of item order.  Elastic training gives
    each worker one shard of the labeled seed set; neighbor expansion
    still reads the *full* CSC, so the halo (out-of-shard neighbors of
    in-shard seeds) comes for free rather than via ghost-node exchange.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard must be in [0, {num_shards}), got {shard}")
    items = np.asarray(items, dtype=np.intp)
    if num_shards == 1:
        return items.copy()
    with np.errstate(over="ignore"):
        z = items.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return items[z % np.uint64(num_shards) == np.uint64(shard)]


class ItemSampler:
    """Shuffled, resumable batches over a fixed item array.

    The permutation of epoch ``e`` is ``default_rng([seed, e])``'s, so
    ``state_dict()`` is just ``{"epoch", "cursor"}`` and a resumed
    sampler replays the identical remaining sequence.

    ``num_shards``/``shard`` restrict the sampler to one
    :func:`shard_items` partition of ``items`` — K shard-disjoint
    samplers over the same item array cover it exactly once, each with
    its own independent permutation stream (the shard index is folded
    into the epoch-permutation seed so shards never correlate).
    """

    def __init__(self, items: np.ndarray, batch_size: int, *,
                 shuffle: bool = True, seed: int = 0,
                 num_shards: int = 1, shard: int = 0) -> None:
        self.num_shards = int(num_shards)
        self.shard = int(shard)
        self.items = shard_items(items, self.num_shards, self.shard)
        if len(self.items) == 0:
            raise ValueError(
                "ItemSampler needs at least one item"
                + (f" (shard {shard}/{num_shards} of {len(items)} items "
                   f"is empty — use fewer shards)" if num_shards > 1 else "")
            )
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)
        self.epoch = 0
        self.cursor = 0
        self._perm: Optional[np.ndarray] = None
        self._perm_epoch = -1

    @property
    def batches_per_epoch(self) -> int:
        return -(-len(self.items) // self.batch_size)

    def _permutation(self) -> np.ndarray:
        if not self.shuffle:
            return np.arange(len(self.items))
        if self._perm is None or self._perm_epoch != self.epoch:
            rng = np.random.default_rng(
                [self.seed, self.epoch] if self.num_shards == 1
                else [self.seed, self.epoch, self.num_shards, self.shard])
            self._perm = rng.permutation(len(self.items))
            self._perm_epoch = self.epoch
        return self._perm

    def next_batch(self) -> np.ndarray:
        """The next batch of items, cycling epochs forever."""
        perm = self._permutation()
        take = perm[self.cursor:self.cursor + self.batch_size]
        self.cursor += len(take)
        if self.cursor >= len(self.items):
            self.epoch += 1
            self.cursor = 0
        return self.items[take]

    def state_dict(self) -> Dict[str, int]:
        return {"epoch": int(self.epoch), "cursor": int(self.cursor)}

    def load_state_dict(self, state: Mapping[str, int]) -> None:
        self.epoch = int(state["epoch"])
        self.cursor = int(state["cursor"])

    def fingerprint(self) -> Dict[str, Any]:
        return {"num_items": len(self.items),
                "batch_size": self.batch_size,
                "shuffle": self.shuffle, "seed": self.seed,
                "num_shards": self.num_shards, "shard": self.shard}


# ----------------------------------------------------------------------
# NeighborSampler
# ----------------------------------------------------------------------
@dataclass
class SampledSubgraph:
    """One sampled k-hop neighborhood, relabeled to local ids.

    ``nodes[t]`` holds the *sorted original* ids kept per node type;
    edge endpoints are positions into those arrays.  Only edges the
    sampler actually drew are present (sampled-edge subgraph, not the
    induced subgraph — no O(N) lookup tables are ever built).
    """

    nodes: Dict[str, np.ndarray]
    # key -> (src_local, dst_local, weight)
    edges: Dict[EdgeTypeKey, Tuple[np.ndarray, np.ndarray, np.ndarray]]
    seed_type: str
    seeds: np.ndarray  # original ids, in the order they were given
    seed_local: np.ndarray  # positions of the seeds in nodes[seed_type]

    @property
    def num_nodes(self) -> Dict[str, int]:
        return {t: len(ids) for t, ids in self.nodes.items()}

    @property
    def total_edges(self) -> int:
        return sum(len(e[0]) for e in self.edges.values())


class NeighborSampler:
    """K-hop typed neighbor sampling over a CSC source.

    Each hop expands every frontier node's incoming edge types (message
    passing flows src → dst, so the relevant neighbors of a node are the
    *sources* of edges into it) with at most ``fanouts[edge_type]``
    sampled neighbors.  ``replace=True`` draws exactly ``fanout``
    neighbors with replacement from every non-isolated node (one
    vectorized draw per edge type per hop); ``replace=False`` takes all
    neighbors of nodes at or under the fanout and samples without
    replacement from the rest.  A node is expanded at most once per
    ``sample()`` call, so without-replacement subgraphs contain no
    duplicate edges.
    """

    def __init__(self, source, fanouts: FanoutSpec, *, hops: int = 2,
                 replace: bool = False, seed=0,
                 seed_type: str = PAPER) -> None:
        self.source = _as_source(source)
        self.fanouts = _normalize_fanouts(fanouts, self.source.edge_keys)
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        self.hops = int(hops)
        self.replace = bool(replace)
        self.seed_type = seed_type
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def sample(self, seed_ids: np.ndarray) -> SampledSubgraph:
        seeds = np.asarray(seed_ids, dtype=np.int64)
        node_types = self.source.node_types
        empty = np.empty(0, dtype=np.int64)
        # Nodes already expanded (or queued for expansion), sorted unique.
        seen: Dict[str, np.ndarray] = {t: empty for t in node_types}
        seen[self.seed_type] = np.unique(seeds)
        frontier: Dict[str, np.ndarray] = {
            self.seed_type: seen[self.seed_type]
        }
        raw_edges: Dict[EdgeTypeKey, List[Tuple[np.ndarray, ...]]] = {}

        for _ in range(self.hops):
            if not frontier:
                break
            gathered: Dict[str, List[np.ndarray]] = {}
            for key in self.source.edge_keys:
                src_t, _, dst_t = key
                fanout = self.fanouts[key]
                front = frontier.get(dst_t)
                if fanout == 0 or front is None or len(front) == 0:
                    continue
                e_src, e_dst, e_w = self._pick(key, front, fanout)
                if len(e_src) == 0:
                    continue
                raw_edges.setdefault(key, []).append((e_src, e_dst, e_w))
                gathered.setdefault(src_t, []).append(e_src)
            frontier = {}
            for t, chunks in gathered.items():
                candidates = np.unique(np.concatenate(chunks))
                fresh = candidates[~np.isin(candidates, seen[t],
                                            assume_unique=True)]
                seen[t] = np.union1d(seen[t], candidates)
                if len(fresh):
                    frontier[t] = fresh

        nodes = {t: seen[t] for t in node_types}
        edges: Dict[EdgeTypeKey, Tuple[np.ndarray, ...]] = {}
        for key in self.source.edge_keys:
            src_t, _, dst_t = key
            chunks = raw_edges.get(key)
            if not chunks:
                edges[key] = (np.empty(0, dtype=np.intp),
                              np.empty(0, dtype=np.intp),
                              np.empty(0, dtype=np.float64))
                continue
            src = np.concatenate([c[0] for c in chunks])
            dst = np.concatenate([c[1] for c in chunks])
            weight = np.concatenate([c[2] for c in chunks])
            edges[key] = (
                np.searchsorted(nodes[src_t], src).astype(np.intp),
                np.searchsorted(nodes[dst_t], dst).astype(np.intp),
                np.asarray(weight, dtype=np.float64),
            )
        seed_local = np.searchsorted(nodes[self.seed_type],
                                     seeds).astype(np.intp)
        return SampledSubgraph(nodes=nodes, edges=edges,
                               seed_type=self.seed_type, seeds=seeds,
                               seed_local=seed_local)

    def _pick(self, key: EdgeTypeKey, front: np.ndarray, fanout: int
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sampled (src, dst, weight) global triples for one frontier."""
        indptr, indices, weights = self.source.csc(key)
        starts = np.asarray(indptr[front])
        degrees = np.asarray(indptr[front + 1]) - starts
        if self.replace and fanout > 0:
            alive = degrees > 0
            a_starts = starts[alive]
            a_deg = degrees[alive]
            offsets = self._rng.integers(0, np.repeat(a_deg, fanout))
            picks = np.repeat(a_starts, fanout) + offsets
            dst = np.repeat(front[alive], fanout)
            return (np.asarray(indices[picks]), dst,
                    np.asarray(weights[picks]))
        # Without replacement: take everything at/under the fanout in one
        # vectorized gather, then draw per high-degree node.
        full = degrees <= fanout if fanout > 0 else np.ones_like(degrees,
                                                                 dtype=bool)
        f_starts = starts[full]
        f_deg = degrees[full]
        shifts = np.cumsum(f_deg) - f_deg
        within = np.arange(int(f_deg.sum())) - np.repeat(shifts, f_deg)
        pick_chunks = [np.repeat(f_starts, f_deg) + within]
        dst_chunks = [np.repeat(front[full], f_deg)]
        for i in np.nonzero(~full)[0]:
            choice = self._rng.choice(int(degrees[i]), size=fanout,
                                      replace=False)
            pick_chunks.append(starts[i] + choice)
            dst_chunks.append(np.full(fanout, front[i], dtype=np.int64))
        picks = np.concatenate(pick_chunks)
        dst = np.concatenate(dst_chunks)
        return (np.asarray(indices[picks]), dst, np.asarray(weights[picks]))

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {"rng_state": copy.deepcopy(self._rng.bit_generator.state)}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "fanouts": {"|".join(k): v for k, v in self.fanouts.items()},
            "hops": self.hops,
            "replace": self.replace,
            "seed_type": self.seed_type,
        }


# ----------------------------------------------------------------------
# MinibatchSampler
# ----------------------------------------------------------------------
@dataclass
class MiniBatch:
    """One training-ready sampled batch.

    ``batch.labeled_ids`` are the seeds' local positions;
    ``input_local``/``input_values`` are the *non-seed* known-label
    papers in the subgraph — the deterministic label-input channel (a
    seed never sees its own label, known neighbor labels are always
    visible, no RNG involved).
    """

    batch: Any  # GraphBatch (lazily imported; no data → core cycle)
    seeds: np.ndarray  # global seed paper ids, batch order
    nodes: Dict[str, np.ndarray]  # per-type sorted original ids
    input_local: np.ndarray
    input_values: np.ndarray


class MinibatchSampler:
    """Seeds → k-hop subgraph → :class:`GraphBatch` pipeline.

    Construct with the sampling spec, then :meth:`bind` to a source
    (``GraphStore`` or ``HeteroGraph``) and a labeled seed set —
    ``CATEHGN.fit(sampler=...)`` binds automatically to its training
    graph and fit split.  Resumable: :meth:`state_dict` captures the
    item cursor and the neighbor RNG stream; :meth:`fingerprint` guards
    resumes against a changed sampling configuration.
    """

    def __init__(self, batch_size: int = 256, fanouts: FanoutSpec = 10, *,
                 hops: Optional[int] = None, replace: bool = False,
                 shuffle: bool = True, seed: int = 0,
                 record_seeds: bool = False,
                 num_shards: int = 1, shard: int = 0) -> None:
        self.batch_size = int(batch_size)
        self.fanouts = fanouts
        self.hops = hops
        self.replace = bool(replace)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)
        self.num_shards = int(num_shards)
        self.shard = int(shard)
        self.record_seeds = bool(record_seeds)
        #: Seed arrays of every emitted batch (when ``record_seeds``).
        self.seed_log: List[np.ndarray] = []
        self._source: Optional[_Source] = None
        self._items: Optional[ItemSampler] = None
        self._neighbors: Optional[NeighborSampler] = None
        self._known: Optional[np.ndarray] = None
        self._label_of: Optional[np.ndarray] = None
        self._seed_type = PAPER

    @property
    def bound(self) -> bool:
        return self._items is not None

    def bind(self, source, seed_ids: np.ndarray,
             seed_labels: np.ndarray, *, hops: Optional[int] = None,
             seed_type: str = PAPER) -> "MinibatchSampler":
        """Attach the spec to a graph source and a labeled seed set."""
        seed_ids = np.asarray(seed_ids, dtype=np.intp)
        seed_labels = np.asarray(seed_labels, dtype=np.float64)
        if len(seed_ids) != len(seed_labels):
            raise ValueError("seed_ids and seed_labels length mismatch")
        self._source = _as_source(source)
        self._seed_type = seed_type
        hops = self.hops if self.hops is not None else hops
        if hops is None:
            raise ValueError("hops not set: pass hops= to bind() or the "
                             "constructor")
        self._items = ItemSampler(seed_ids, self.batch_size,
                                  shuffle=self.shuffle, seed=self.seed,
                                  num_shards=self.num_shards,
                                  shard=self.shard)
        self._neighbors = NeighborSampler(
            self._source, self.fanouts, hops=hops, replace=self.replace,
            seed=([self.seed, 1] if self.num_shards == 1
                  else [self.seed, 1, self.num_shards, self.shard]),
            seed_type=seed_type,
        )
        total = self._source.num_nodes[seed_type]
        self._known = np.zeros(total, dtype=bool)
        self._known[seed_ids] = True
        self._label_of = np.zeros(total, dtype=np.float64)
        self._label_of[seed_ids] = seed_labels
        self.seed_log = []
        return self

    # ------------------------------------------------------------------
    def next_minibatch(self) -> MiniBatch:
        """Sample the next seed batch and build its ``GraphBatch``."""
        self._require_bound()
        from ..core.hgn import GraphBatch  # lazy: no data → core cycle

        seeds = self._items.next_batch()
        if self.record_seeds:
            self.seed_log.append(seeds.copy())
        sub = self._neighbors.sample(seeds)
        features = {
            t: np.asarray(self._source.features(t)[ids], dtype=np.float64)
            for t, ids in sub.nodes.items()
        }
        edges = {}
        for key, (src, dst, weight) in sub.edges.items():
            max_w = weight.max() if len(weight) else 1.0
            # Alias instead of copying when already normalized (the
            # common all-ones case) — identical values either way.
            norm = weight if max_w == 1.0 else weight / max(max_w, 1e-12)
            edges[key] = (src, dst, weight, norm)
        batch = GraphBatch(
            node_types=self._source.node_types,
            features=features,
            edges=edges,
            num_nodes=sub.num_nodes,
            labeled_ids=sub.seed_local,
            labels=self._label_of[seeds],
        )
        papers = sub.nodes[self._seed_type]
        is_seed = np.zeros(len(papers), dtype=bool)
        is_seed[sub.seed_local] = True
        input_local = np.nonzero(self._known[papers] & ~is_seed)[0]
        return MiniBatch(batch=batch, seeds=seeds, nodes=sub.nodes,
                         input_local=input_local.astype(np.intp),
                         input_values=self._label_of[papers[input_local]])

    @property
    def batches_per_epoch(self) -> int:
        self._require_bound()
        return self._items.batches_per_epoch

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        self._require_bound()
        return {"items": self._items.state_dict(),
                "neighbors": self._neighbors.state_dict()}

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        self._require_bound()
        self._items.load_state_dict(state["items"])
        self._neighbors.load_state_dict(state["neighbors"])

    def fingerprint(self) -> Dict[str, Any]:
        """Config identity for resume checks (JSON-safe)."""
        out = {
            "batch_size": self.batch_size,
            "replace": self.replace,
            "shuffle": self.shuffle,
            "seed": self.seed,
            "num_shards": self.num_shards,
            "shard": self.shard,
        }
        if self.bound:
            out["items"] = self._items.fingerprint()
            out["neighbors"] = self._neighbors.fingerprint()
        return out

    def _require_bound(self) -> None:
        if self._items is None:
            raise RuntimeError("sampler is not bound; call bind() first")
