"""Construction of the three benchmark networks (Table I analogues).

- ``make_dblp_full``   — the full world; term nodes come from the papers'
  (noisy) keyword attributes, exactly as the paper extracts them.
- ``make_dblp_single`` — only papers published in "data"-domain venues and
  their direct neighbours (the paper filters venues with "data" in the
  name; all our data-domain venues carry the word "data" in their names).
- ``make_dblp_random`` — the full network with the paper-term links rewired
  to uniformly random terms, keeping per-paper term counts (the paper's
  stress test for quality-term mining).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..hetnet import (
    AUTHOR,
    PAPER,
    TERM,
    VENUE,
    HeteroGraph,
    publication_schema,
)
from ..text import Corpus, DistributionalMLM, Vocabulary, WordEmbeddings, tokenize
from .generator import PublicationWorld, WorldConfig, generate_world

TRAIN_BEFORE = 2014  # papers published before this year are training data
VAL_YEAR = 2014
TEST_FROM = 2015


@dataclass
class TextArtifacts:
    """Corpus-level text models shared by the three networks of one world."""

    corpus: Corpus
    embeddings: WordEmbeddings
    mlm: DistributionalMLM

    @classmethod
    def fit(cls, world: PublicationWorld, dim: int = 32,
            seed: int = 0) -> "TextArtifacts":
        documents = [p.title for p in world.papers]
        vocabulary = Vocabulary.from_documents(documents)
        corpus = Corpus(documents=documents, vocabulary=vocabulary,
                        keywords=[p.keywords for p in world.papers])
        encoded = corpus.encoded()
        embeddings = WordEmbeddings.fit(encoded, vocabulary, dim=dim, seed=seed)
        mlm = DistributionalMLM.fit(encoded, vocabulary)
        return cls(corpus=corpus, embeddings=embeddings, mlm=mlm)


@dataclass
class CitationDataset:
    """A benchmark network plus everything models need to train on it."""

    name: str
    graph: HeteroGraph
    text: TextArtifacts
    world: PublicationWorld
    labels: np.ndarray  # average citations/year, all papers
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray
    term_tokens: List[str]  # term-node id -> token

    @property
    def domain_names(self) -> Tuple[str, ...]:
        return self.world.domain_names

    @property
    def num_papers(self) -> int:
        return self.graph.num_nodes[PAPER]

    def early_stopping_split(self, holdout_years: int = 2,
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """Internal split for model selection of the iteratively trained
        models: fit on train papers older than the last ``holdout_years``
        training years; early-stop on (those held-out years ∪ the
        validation year).  The paper's protocol only reserves the single
        year 2014 for validation, which at this repository's reduced scale
        is too few papers for stable model selection; the test years are
        untouched either way.
        """
        years = self.graph.get_attr(PAPER, "year")
        cut = TRAIN_BEFORE - holdout_years
        fit = self.train_idx[years[self.train_idx] < cut]
        held = self.train_idx[years[self.train_idx] >= cut]
        stop = np.concatenate([held, self.val_idx]).astype(np.intp)
        if len(fit) == 0 or len(stop) == 0:
            return self.train_idx, (self.val_idx if len(self.val_idx)
                                    else self.train_idx)
        return fit, stop

    def split_labels(self) -> Dict[str, np.ndarray]:
        return {
            "train": self.labels[self.train_idx],
            "val": self.labels[self.val_idx],
            "test": self.labels[self.test_idx],
        }

    def statistics(self) -> Dict[str, int]:
        return self.graph.statistics()


def temporal_split(years: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Paper's split: train <2014, validate on 2014, test 2015-2020."""
    train = np.nonzero(years < TRAIN_BEFORE)[0]
    val = np.nonzero(years == VAL_YEAR)[0]
    test = np.nonzero(years >= TEST_FROM)[0]
    return train, val, test


def _build_graph(world: PublicationWorld, text: TextArtifacts,
                 term_tokens: Sequence[str],
                 paper_term_links: Tuple[np.ndarray, np.ndarray, np.ndarray],
                 ) -> HeteroGraph:
    schema = publication_schema(include_terms=True)
    graph = HeteroGraph(schema)

    papers = world.papers
    graph.add_nodes(PAPER, len(papers),
                    names=[" ".join(p.title[:5]) for p in papers])
    graph.add_nodes(AUTHOR, len(world.authors),
                    names=[a.name for a in world.authors])
    graph.add_nodes(VENUE, len(world.venues),
                    names=[v.name for v in world.venues])
    graph.add_nodes(TERM, len(term_tokens), names=list(term_tokens))

    # Citation links: src = cited (reference), dst = citing paper, so a
    # paper aggregates only from its own references — the single-direction
    # rule that avoids label leakage (Sec. III-A).
    cite_src = [r for p in papers for r in p.references]
    cite_dst = [i for i, p in enumerate(papers) for _ in p.references]
    graph.set_edges((PAPER, "cites", PAPER),
                    np.array(cite_src, dtype=np.intp),
                    np.array(cite_dst, dtype=np.intp))

    pa_src = [i for i, p in enumerate(papers) for _ in p.author_ids]
    pa_dst = [a for p in papers for a in p.author_ids]
    graph.set_edges((PAPER, "written_by", AUTHOR),
                    np.array(pa_src, dtype=np.intp),
                    np.array(pa_dst, dtype=np.intp))
    graph.set_edges((AUTHOR, "writes", PAPER),
                    np.array(pa_dst, dtype=np.intp),
                    np.array(pa_src, dtype=np.intp))

    pv_src = np.arange(len(papers), dtype=np.intp)
    pv_dst = np.array([p.venue_id for p in papers], dtype=np.intp)
    graph.set_edges((PAPER, "published_in", VENUE), pv_src, pv_dst)
    graph.set_edges((VENUE, "publishes", PAPER), pv_dst, pv_src)

    pt_paper, pt_term, pt_weight = paper_term_links
    graph.set_edges((PAPER, "mentions", TERM), pt_paper, pt_term, pt_weight)
    graph.set_edges((TERM, "mentioned_by", PAPER), pt_term, pt_paper, pt_weight)

    _attach_features(graph, world, text, term_tokens)

    graph.set_attr(PAPER, "year", world.years())
    graph.set_attr(PAPER, "label", world.labels())
    graph.set_attr(PAPER, "domain", np.array([p.domain for p in papers]))
    graph.set_attr(AUTHOR, "primary_domain",
                   np.array([a.primary_domain for a in world.authors]))
    graph.set_attr(VENUE, "domain",
                   np.array([v.domain for v in world.venues]))
    graph.validate()
    # Ingestion-side fault site (DESIGN §13), fired *after* the build-time
    # range checks so an armed drill can poison the finished graph with
    # exactly the malformed shapes (dangling endpoints, NaN features)
    # that real dumps contain and the contract layer must catch.
    from ..resilience import faults

    faults.fire("ingest.graph", graph=graph)
    return graph


def _attach_features(graph: HeteroGraph, world: PublicationWorld,
                     text: TextArtifacts, term_tokens: Sequence[str]) -> None:
    """Section IV-A3 features: aggregated, normalized word embeddings.

    Papers use their title words, venues their name words, authors the
    titles of all their published papers, terms the word itself.
    """
    emb = text.embeddings
    paper_feat = emb.embed_documents([p.title for p in world.papers])
    graph.set_features(PAPER, paper_feat)

    author_docs: List[List[str]] = [[] for _ in world.authors]
    for paper in world.papers:
        for a in paper.author_ids:
            author_docs[a].extend(paper.title)
    graph.set_features(AUTHOR, emb.embed_documents(author_docs))

    venue_docs = [tokenize(v.name) for v in world.venues]
    graph.set_features(VENUE, emb.embed_documents(venue_docs))

    term_feat = emb.embed_documents([[t] for t in term_tokens])
    graph.set_features(TERM, term_feat)


def _keyword_term_links(world: PublicationWorld,
                        ) -> Tuple[List[str], Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Term nodes and links from the papers' keyword attributes."""
    term_tokens = sorted({t for p in world.papers for t in p.keywords})
    term_id = {t: i for i, t in enumerate(term_tokens)}
    src, dst, weight = [], [], []
    for i, paper in enumerate(world.papers):
        counts: Dict[str, int] = {}
        for t in paper.keywords:
            counts[t] = counts.get(t, 0) + 1
        for t, c in counts.items():
            src.append(i)
            dst.append(term_id[t])
            weight.append(float(c))
    return term_tokens, (np.array(src, dtype=np.intp),
                         np.array(dst, dtype=np.intp),
                         np.array(weight, dtype=np.float64))


def _maybe_validate(graph: HeteroGraph,
                    policy: Optional[str]) -> HeteroGraph:
    """Run the contract layer over a freshly built graph when requested."""
    if policy is None:
        return graph
    from ..contracts import validate_graph

    graph, _ = validate_graph(graph, policy=policy, subject="dataset graph")
    return graph


def make_dblp_full(config: Optional[WorldConfig] = None,
                   world: Optional[PublicationWorld] = None,
                   text: Optional[TextArtifacts] = None,
                   feature_dim: int = 32,
                   validate: Optional[str] = None) -> CitationDataset:
    """The DBLP-full analogue.

    ``validate`` optionally runs the dataset graph through the contract
    layer (:mod:`repro.contracts`) under the named policy before the
    dataset is returned; ``None`` skips the pass (the builder's own
    range checks still apply).
    """
    world = world or generate_world(config)
    text = text or TextArtifacts.fit(world, dim=feature_dim)
    term_tokens, links = _keyword_term_links(world)
    graph = _build_graph(world, text, term_tokens, links)
    graph = _maybe_validate(graph, validate)
    years = world.years()
    train, val, test = temporal_split(years)
    return CitationDataset(name="DBLP-full", graph=graph, text=text,
                           world=world, labels=world.labels(),
                           train_idx=train, val_idx=val, test_idx=test,
                           term_tokens=term_tokens)


def make_dblp_random(config: Optional[WorldConfig] = None,
                     world: Optional[PublicationWorld] = None,
                     text: Optional[TextArtifacts] = None,
                     feature_dim: int = 32,
                     rewire_seed: int = 13,
                     validate: Optional[str] = None) -> CitationDataset:
    """DBLP-random: keep per-paper term counts, randomize the term targets."""
    world = world or generate_world(config)
    text = text or TextArtifacts.fit(world, dim=feature_dim)
    term_tokens, (src, dst, weight) = _keyword_term_links(world)
    rng = np.random.default_rng(rewire_seed)
    random_dst = rng.integers(0, len(term_tokens), size=len(dst)).astype(np.intp)
    graph = _build_graph(world, text, term_tokens, (src, random_dst, weight))
    graph = _maybe_validate(graph, validate)
    years = world.years()
    train, val, test = temporal_split(years)
    return CitationDataset(name="DBLP-random", graph=graph, text=text,
                           world=world, labels=world.labels(),
                           train_idx=train, val_idx=val, test_idx=test,
                           term_tokens=term_tokens)


def make_dblp_single(config: Optional[WorldConfig] = None,
                     world: Optional[PublicationWorld] = None,
                     text: Optional[TextArtifacts] = None,
                     feature_dim: int = 32,
                     domain: int = 0,
                     validate: Optional[str] = None) -> CitationDataset:
    """DBLP-single: papers published in venues of one domain ("data")."""
    world = world or generate_world(config)
    keep = [i for i, p in enumerate(world.papers)
            if world.venues[p.venue_id].domain == domain]
    keep_set = set(keep)
    remap = {old: new for new, old in enumerate(keep)}

    sub_world = PublicationWorld(
        config=world.config,
        authors=world.authors,
        venues=world.venues,
        papers=[_restrict_paper(world.papers[i], remap, keep_set) for i in keep],
        term_truth=world.term_truth,
    )
    text = text or TextArtifacts.fit(sub_world, dim=feature_dim)
    term_tokens, links = _keyword_term_links(sub_world)
    graph = _build_graph(sub_world, text, term_tokens, links)
    graph = _maybe_validate(graph, validate)
    years = sub_world.years()
    train, val, test = temporal_split(years)
    return CitationDataset(name="DBLP-single", graph=graph, text=text,
                           world=sub_world, labels=sub_world.labels(),
                           train_idx=train, val_idx=val, test_idx=test,
                           term_tokens=term_tokens)


def _restrict_paper(paper, remap: Dict[int, int], keep_set: set):
    from dataclasses import replace

    return replace(paper, references=[remap[r] for r in paper.references
                                      if r in keep_set])


def make_all_datasets(config: Optional[WorldConfig] = None,
                      feature_dim: int = 32) -> Dict[str, CitationDataset]:
    """Build the three networks from one shared world (Table I)."""
    world = generate_world(config)
    text = TextArtifacts.fit(world, dim=feature_dim)
    return {
        "full": make_dblp_full(world=world, text=text),
        "single": make_dblp_single(world=world),
        "random": make_dblp_random(world=world, text=text),
    }
