"""Graph serialization (npz + json sidecar)."""

from __future__ import annotations

import io
import json
import zipfile
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from ..hetnet import HeteroGraph, publication_schema
from ..resilience import (
    CheckpointCorruptError,
    atomic_write_bytes,
    atomic_write_text,
    file_sha256,
)

#: On-disk graph format version.  Bump whenever the npz/json layout changes
#: incompatibly; :func:`load_graph` rejects versions it does not understand
#: instead of mis-parsing them.  Files written before versioning existed
#: carry no field and are read as version 1 (the layout never changed).
GRAPH_FORMAT_VERSION = 1


def save_graph(graph: HeteroGraph, path: Union[str, Path]) -> None:
    """Persist a publication-network graph to ``<path>.npz`` + ``<path>.json``.

    Arrays go into the npz; node names and schema metadata into the json
    sidecar.  Only graphs over the standard publication schema round-trip.
    """
    path = Path(path)
    arrays = {}
    meta = {"format_version": GRAPH_FORMAT_VERSION,
            "num_nodes": graph.num_nodes, "edge_types": [], "attrs": {}}
    # Edge-dict *insertion order* is part of the format: message passing
    # iterates edge types in dict order, so preserving it keeps reloaded
    # graphs bitwise-identical under floating-point summation order.
    for i, (key, edge) in enumerate(graph.edges.items()):
        meta["edge_types"].append(list(key))
        arrays[f"edge{i}_src"] = edge.src
        arrays[f"edge{i}_dst"] = edge.dst
        arrays[f"edge{i}_weight"] = edge.weight
    for node_type, features in graph.node_features.items():
        arrays[f"feat_{node_type}"] = features
    for node_type, attrs in graph.node_attrs.items():
        for name, values in attrs.items():
            arrays[f"attr_{node_type}_{name}"] = values
            meta["attrs"].setdefault(node_type, []).append(name)
    meta["names"] = {t: names for t, names in graph.node_names.items()}
    # Crash-safe write order: npz first (atomically), then record its
    # digest in the json sidecar (also atomic).  A kill between the two
    # leaves a stale sidecar whose checksum no longer matches — which
    # load_graph reports loudly instead of mixing generations.
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    npz_path = atomic_write_bytes(path.with_suffix(".npz"), buffer.getvalue())
    meta["npz_sha256"] = file_sha256(npz_path)
    atomic_write_text(path.with_suffix(".json"), json.dumps(meta))


def load_graph(path: Union[str, Path]) -> HeteroGraph:
    """Load a graph previously written by :func:`save_graph`.

    Truncated/bit-flipped npz payloads and digest mismatches against the
    json sidecar raise :class:`~repro.resilience.CheckpointCorruptError`;
    files written before checksumming existed carry no digest and are
    accepted as-is.
    """
    path = Path(path)
    npz_path = path.with_suffix(".npz")
    try:
        meta = json.loads(path.with_suffix(".json").read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(
            f"graph sidecar {path.with_suffix('.json')} is not valid JSON "
            f"({exc}); the export is corrupt"
        ) from exc
    version = meta.get("format_version", 1)  # pre-versioning files == v1
    if version != GRAPH_FORMAT_VERSION:
        raise ValueError(
            f"unsupported graph format_version {version!r} in {path}: this "
            f"build reads version {GRAPH_FORMAT_VERSION}. Re-export the graph "
            f"with a matching repro.data.save_graph."
        )
    expected = meta.get("npz_sha256")  # absent in pre-checksum exports
    if expected is not None and file_sha256(npz_path) != expected:
        raise CheckpointCorruptError(
            f"graph payload {npz_path} does not match the digest recorded "
            f"in its json sidecar; the npz was truncated, altered, or the "
            f"writer died between the two files — re-export the graph"
        )
    try:
        arrays = np.load(npz_path)
        graph = HeteroGraph(publication_schema(include_terms=True))
        for node_type, count in meta["num_nodes"].items():
            names = meta["names"].get(node_type)
            graph.add_nodes(node_type, count, names)
        for i, key in enumerate(meta["edge_types"]):
            graph.set_edges(tuple(key), arrays[f"edge{i}_src"],
                            arrays[f"edge{i}_dst"], arrays[f"edge{i}_weight"])
        for node_type in meta["num_nodes"]:
            feat_key = f"feat_{node_type}"
            if feat_key in arrays:
                graph.set_features(node_type, arrays[feat_key])
            for attr in meta["attrs"].get(node_type, []):
                graph.set_attr(node_type, attr,
                               arrays[f"attr_{node_type}_{attr}"])
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError,
            KeyError) as exc:
        raise CheckpointCorruptError(
            f"graph payload {npz_path} is unreadable ({exc}); the file is "
            f"truncated or corrupted — re-export the graph"
        ) from exc
    graph.validate()
    return graph
