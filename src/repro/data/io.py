"""Graph serialization (npz + json sidecar) and npz memory-mapping."""

from __future__ import annotations

import io
import json
import os
import shutil
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..hetnet import HeteroGraph, publication_schema
from ..hetnet.graph import EdgeArray
from ..resilience import (
    CheckpointCorruptError,
    atomic_write_bytes,
    atomic_write_text,
    file_sha256,
)

#: On-disk graph format version.  Bump whenever the npz/json layout changes
#: incompatibly; :func:`load_graph` rejects versions it does not understand
#: instead of mis-parsing them.  Files written before versioning existed
#: carry no field and are read as version 1 (the layout never changed).
GRAPH_FORMAT_VERSION = 1


def save_graph(graph: HeteroGraph, path: Union[str, Path]) -> None:
    """Persist a publication-network graph to ``<path>.npz`` + ``<path>.json``.

    Arrays go into the npz; node names and schema metadata into the json
    sidecar.  Only graphs over the standard publication schema round-trip.
    """
    path = Path(path)
    arrays = {}
    meta = {"format_version": GRAPH_FORMAT_VERSION,
            "num_nodes": graph.num_nodes, "edge_types": [], "attrs": {}}
    # Edge-dict *insertion order* is part of the format: message passing
    # iterates edge types in dict order, so preserving it keeps reloaded
    # graphs bitwise-identical under floating-point summation order.
    for i, (key, edge) in enumerate(graph.edges.items()):
        meta["edge_types"].append(list(key))
        arrays[f"edge{i}_src"] = edge.src
        arrays[f"edge{i}_dst"] = edge.dst
        arrays[f"edge{i}_weight"] = edge.weight
    for node_type, features in graph.node_features.items():
        arrays[f"feat_{node_type}"] = features
    for node_type, attrs in graph.node_attrs.items():
        for name, values in attrs.items():
            arrays[f"attr_{node_type}_{name}"] = values
            meta["attrs"].setdefault(node_type, []).append(name)
    meta["names"] = {t: names for t, names in graph.node_names.items()}
    # Crash-safe write order: npz first (atomically), then record its
    # digest in the json sidecar (also atomic).  A kill between the two
    # leaves a stale sidecar whose checksum no longer matches — which
    # load_graph reports loudly instead of mixing generations.
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    npz_path = atomic_write_bytes(path.with_suffix(".npz"), buffer.getvalue())
    meta["npz_sha256"] = file_sha256(npz_path)
    atomic_write_text(path.with_suffix(".json"), json.dumps(meta))


# ----------------------------------------------------------------------
# npz memory-mapping (serving-fleet checkpoint sharing, DESIGN §17)
# ----------------------------------------------------------------------
#: Directory suffix for the extracted-member cache next to an ``.npz``.
MMAP_CACHE_SUFFIX = ".mmap"
_MMAP_MANIFEST = "MANIFEST.json"


def _mmap_manifest_valid(cache_dir: Path, digest: str) -> bool:
    """Does ``cache_dir`` hold a complete extraction of this exact npz?"""
    try:
        manifest = json.loads((cache_dir / _MMAP_MANIFEST).read_text())
    except (OSError, json.JSONDecodeError):
        return False
    if manifest.get("npz_sha256") != digest:
        return False
    members = manifest.get("members")
    if not isinstance(members, dict):
        return False
    return all((cache_dir / rel).is_file() for rel in members.values())


def _extract_npz_members(npz_path: Path, tmp_dir: Path,
                         digest: str) -> Dict[str, str]:
    """Stream every ``<name>.npy`` member of the zip into ``tmp_dir``.

    ``zipfile`` verifies each member's CRC-32 as it decompresses, so a
    truncated or bit-flipped npz fails here instead of producing a
    corrupt cache.  Returns the name -> relative-path member map.
    """
    members: Dict[str, str] = {}
    with zipfile.ZipFile(npz_path) as zf:
        for info in zf.infolist():
            if not info.filename.endswith(".npy"):
                continue
            name = info.filename[: -len(".npy")]
            target = tmp_dir / info.filename
            # Member names come from our own save_* writers, but never
            # let a hostile zip escape the cache directory.
            if not target.resolve().is_relative_to(tmp_dir.resolve()):
                raise zipfile.BadZipFile(
                    f"npz member {info.filename!r} escapes the cache dir"
                )
            target.parent.mkdir(parents=True, exist_ok=True)
            with zf.open(info) as src, open(target, "wb") as dst:
                shutil.copyfileobj(src, dst)
            members[name] = info.filename
    (tmp_dir / _MMAP_MANIFEST).write_text(
        json.dumps({"npz_sha256": digest, "members": members})
    )
    return members


def mmap_npz(npz_path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load an ``.npz``'s arrays as read-only memory maps.

    ``np.load(..., mmap_mode=...)`` silently ignores mmap for zip
    containers, so this extracts the (deflated) members **once** into a
    sibling ``<file>.npz.mmap/`` cache of raw ``.npy`` files and then
    ``np.load``\\ s each with ``mmap_mode="r"``.  Every process mapping
    the same cache shares the OS page cache — N serving replicas pay one
    checkpoint materialization between them, not N.

    Integrity: extraction streams through zipfile's CRC-32 verification,
    and the cache's manifest records the source npz's SHA-256; a cache
    whose manifest does not match the current npz bytes is rebuilt from
    scratch.  The cache is a *derived local artifact* — delete the
    directory to force re-extraction.  Concurrent extractors (a fleet of
    replicas cold-starting together) race benignly: each extracts into
    its own temp dir and the first rename wins.

    Members whose dtype cannot be memory-mapped fall back to a regular
    in-memory load.
    """
    npz_path = Path(npz_path)
    digest = file_sha256(npz_path)
    cache_dir = npz_path.with_name(npz_path.name + MMAP_CACHE_SUFFIX)
    if not _mmap_manifest_valid(cache_dir, digest):
        tmp_dir = npz_path.with_name(
            f".{npz_path.name}{MMAP_CACHE_SUFFIX}.tmp.{os.getpid()}"
        )
        shutil.rmtree(tmp_dir, ignore_errors=True)
        tmp_dir.mkdir(parents=True)
        try:
            try:
                _extract_npz_members(npz_path, tmp_dir, digest)
            except zipfile.BadZipFile as exc:
                raise ValueError(
                    f"{npz_path} is corrupt (zip CRC mismatch or damaged "
                    f"container): {exc}") from exc
            try:
                os.rename(tmp_dir, cache_dir)
            except OSError:
                # Lost the race to a concurrent extractor, or a stale
                # cache occupies the name.  A valid cache is someone
                # else's identical extraction — use it; a stale one is
                # replaced.
                if not _mmap_manifest_valid(cache_dir, digest):
                    shutil.rmtree(cache_dir, ignore_errors=True)
                    os.rename(tmp_dir, cache_dir)
        finally:
            shutil.rmtree(tmp_dir, ignore_errors=True)
    manifest = json.loads((cache_dir / _MMAP_MANIFEST).read_text())
    arrays: Dict[str, np.ndarray] = {}
    for name, rel in manifest["members"].items():
        member = cache_dir / rel
        try:
            arrays[name] = np.load(member, mmap_mode="r",
                                   allow_pickle=False)
        except ValueError:
            arrays[name] = np.load(member, allow_pickle=False)
    return arrays


def _install_graph(meta: dict, arrays) -> HeteroGraph:
    """Materialize a graph from parsed save_graph artifacts, permissively.

    Installs node counts, edges, features, names, and attrs **without**
    the range/shape checks of the mutating API (``set_edges`` raises on
    dangling endpoints, which would make malformed dumps unloadable and
    therefore unrepairable).  Contract enforcement happens afterwards —
    either the legacy ``graph.validate()`` or the ``repro.contracts``
    policy layer, depending on how :func:`load_graph` was called.
    """
    graph = HeteroGraph(publication_schema(include_terms=True))
    for node_type, count in meta["num_nodes"].items():
        graph.num_nodes[node_type] = int(count)
        names = meta["names"].get(node_type)
        if names is not None:
            graph.node_names[node_type] = list(names)
    for i, key in enumerate(meta["edge_types"]):
        graph.edges[tuple(key)] = EdgeArray(
            arrays[f"edge{i}_src"], arrays[f"edge{i}_dst"],
            arrays[f"edge{i}_weight"],
        )
    for node_type in meta["num_nodes"]:
        feat_key = f"feat_{node_type}"
        if feat_key in arrays:
            graph.node_features[node_type] = np.asarray(
                arrays[feat_key], dtype=np.float64
            )
        for attr in meta["attrs"].get(node_type, []):
            graph.node_attrs.setdefault(node_type, {})[attr] = (
                arrays[f"attr_{node_type}_{attr}"]
            )
    graph._topology_version += 1
    return graph


def load_graph(path: Union[str, Path], *,
               policy: Optional[str] = None,
               mmap_mode: Optional[str] = None) -> HeteroGraph:
    """Load a graph previously written by :func:`save_graph`.

    Truncated/bit-flipped npz payloads and digest mismatches against the
    json sidecar raise :class:`~repro.resilience.CheckpointCorruptError`;
    files written before checksumming existed carry no digest and are
    accepted as-is.

    ``policy`` selects the contract-enforcement mode for the *content*
    of the graph (see :mod:`repro.contracts`): ``None`` keeps the legacy
    ``graph.validate()`` behaviour (ValueError on dangling endpoints or
    non-finite weights), ``"strict"`` raises
    :class:`~repro.contracts.ContractViolation` with a full report,
    ``"repair"`` returns a deterministically repaired graph, ``"warn"``
    returns the graph as-is after warning.

    ``mmap_mode="r"`` loads the feature/edge arrays as read-only memory
    maps through the :func:`mmap_npz` extraction cache, so a fleet of
    replica processes mapping the same graph shares one copy in the OS
    page cache instead of materializing it per process.
    """
    path = Path(path)
    if mmap_mode not in (None, "r"):
        raise ValueError(f"mmap_mode must be None or 'r', got {mmap_mode!r}")
    npz_path = path.with_suffix(".npz")
    try:
        meta = json.loads(path.with_suffix(".json").read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointCorruptError(
            f"graph sidecar {path.with_suffix('.json')} is not valid JSON "
            f"({exc}); the export is corrupt"
        ) from exc
    version = meta.get("format_version", 1)  # pre-versioning files == v1
    if version != GRAPH_FORMAT_VERSION:
        raise ValueError(
            f"unsupported graph format_version {version!r} in {path}: this "
            f"build reads version {GRAPH_FORMAT_VERSION}. Re-export the graph "
            f"with a matching repro.data.save_graph."
        )
    expected = meta.get("npz_sha256")  # absent in pre-checksum exports
    if expected is not None and file_sha256(npz_path) != expected:
        raise CheckpointCorruptError(
            f"graph payload {npz_path} does not match the digest recorded "
            f"in its json sidecar; the npz was truncated, altered, or the "
            f"writer died between the two files — re-export the graph"
        )
    try:
        arrays = (mmap_npz(npz_path) if mmap_mode is not None
                  else np.load(npz_path))
        graph = _install_graph(meta, arrays)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError,
            KeyError) as exc:
        raise CheckpointCorruptError(
            f"graph payload {npz_path} is unreadable ({exc}); the file is "
            f"truncated or corrupted — re-export the graph"
        ) from exc
    if policy is None:
        graph.validate()
        return graph
    from ..contracts import validate_graph

    graph, _ = validate_graph(graph, policy=policy,
                              subject=str(path.with_suffix(".npz")))
    return graph
