"""Graph serialization (npz + json sidecar)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..hetnet import HeteroGraph, publication_schema

#: On-disk graph format version.  Bump whenever the npz/json layout changes
#: incompatibly; :func:`load_graph` rejects versions it does not understand
#: instead of mis-parsing them.  Files written before versioning existed
#: carry no field and are read as version 1 (the layout never changed).
GRAPH_FORMAT_VERSION = 1


def save_graph(graph: HeteroGraph, path: Union[str, Path]) -> None:
    """Persist a publication-network graph to ``<path>.npz`` + ``<path>.json``.

    Arrays go into the npz; node names and schema metadata into the json
    sidecar.  Only graphs over the standard publication schema round-trip.
    """
    path = Path(path)
    arrays = {}
    meta = {"format_version": GRAPH_FORMAT_VERSION,
            "num_nodes": graph.num_nodes, "edge_types": [], "attrs": {}}
    # Edge-dict *insertion order* is part of the format: message passing
    # iterates edge types in dict order, so preserving it keeps reloaded
    # graphs bitwise-identical under floating-point summation order.
    for i, (key, edge) in enumerate(graph.edges.items()):
        meta["edge_types"].append(list(key))
        arrays[f"edge{i}_src"] = edge.src
        arrays[f"edge{i}_dst"] = edge.dst
        arrays[f"edge{i}_weight"] = edge.weight
    for node_type, features in graph.node_features.items():
        arrays[f"feat_{node_type}"] = features
    for node_type, attrs in graph.node_attrs.items():
        for name, values in attrs.items():
            arrays[f"attr_{node_type}_{name}"] = values
            meta["attrs"].setdefault(node_type, []).append(name)
    meta["names"] = {t: names for t, names in graph.node_names.items()}
    np.savez_compressed(path.with_suffix(".npz"), **arrays)
    path.with_suffix(".json").write_text(json.dumps(meta))


def load_graph(path: Union[str, Path]) -> HeteroGraph:
    """Load a graph previously written by :func:`save_graph`."""
    path = Path(path)
    meta = json.loads(path.with_suffix(".json").read_text())
    version = meta.get("format_version", 1)  # pre-versioning files == v1
    if version != GRAPH_FORMAT_VERSION:
        raise ValueError(
            f"unsupported graph format_version {version!r} in {path}: this "
            f"build reads version {GRAPH_FORMAT_VERSION}. Re-export the graph "
            f"with a matching repro.data.save_graph."
        )
    arrays = np.load(path.with_suffix(".npz"))
    graph = HeteroGraph(publication_schema(include_terms=True))
    for node_type, count in meta["num_nodes"].items():
        names = meta["names"].get(node_type)
        graph.add_nodes(node_type, count, names)
    for i, key in enumerate(meta["edge_types"]):
        graph.set_edges(tuple(key), arrays[f"edge{i}_src"],
                        arrays[f"edge{i}_dst"], arrays[f"edge{i}_weight"])
    for node_type in meta["num_nodes"]:
        feat_key = f"feat_{node_type}"
        if feat_key in arrays:
            graph.set_features(node_type, arrays[feat_key])
        for attr in meta["attrs"].get(node_type, []):
            graph.set_attr(node_type, attr, arrays[f"attr_{node_type}_{attr}"])
    graph.validate()
    return graph
