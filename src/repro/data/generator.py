"""Synthetic publication-world generator.

This is the stand-in for the paper's DBLP-2019 ⋈ AMiner-Citation-V11 data
(no network access; see DESIGN.md §2).  The generator plants as ground truth
exactly the citation-driving factors the paper's model is built to recover:

1. latent research domains (footnote-4 names);
2. per-domain author prestige — an author is impactful *within* a domain
   (Figure 3(a)'s motivating example);
3. venue authority, discounted when a paper appears outside the venue's
   home domain;
4. term significance — quality terms indicate impact, generic filler terms
   do not (Figure 3(b));
5. noisy keyword lists — a lossy, polluted view of the title's quality
   terms, motivating the TE module.

The per-paper citation label (average citations/year) is a noisy monotone
function of those factors; citation links follow domain-aware preferential
attachment on the same impact scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .lexicon import (
    AUTHOR_FAMILY,
    AUTHOR_GIVEN,
    DOMAIN_NAMES,
    DOMAIN_TERMS,
    GENERIC_TERMS,
    VENUE_NAME_PATTERNS,
)


@dataclass
class WorldConfig:
    """Knobs of the synthetic world.  Defaults fit CPU-scale experiments."""

    num_papers: int = 1500
    num_authors: int = 300
    venues_per_domain: int = 5
    seed: int = 7

    # Temporal extent; the paper trains on <2014, validates on 2014,
    # tests on 2015-2020.
    year_min: int = 2004
    year_max: int = 2020

    # Authorship.
    min_authors: int = 1
    max_authors: int = 4
    same_domain_author_prob: float = 0.70
    same_domain_venue_prob: float = 0.85

    # Titles.
    min_title_len: int = 7
    max_title_len: int = 12
    p_domain_term: float = 0.55
    p_domain_name: float = 0.08
    p_generic_term: float = 0.25
    # Remaining mass: a quality term from a random other domain.

    # Keywords: noisy view of the title's quality terms.
    keyword_keep_prob: float = 0.65
    keyword_noise_min: int = 1
    keyword_noise_max: int = 2

    # Impact mixture weights (sum to 1): author prestige, venue authority,
    # term significance.
    w_author: float = 0.35
    w_venue: float = 0.25
    w_term: float = 0.40
    label_scale: float = 3.0
    label_noise_sigma: float = 0.15

    # Prestige/authority/significance distributions (log-normal).
    prestige_sigma: float = 0.85
    off_domain_prestige_mu: float = -1.0
    off_domain_prestige_sigma: float = 0.4
    authority_sigma: float = 0.8
    off_domain_venue_discount: float = 0.35
    significance_sigma: float = 0.8

    # Citation links.
    mean_references: float = 4.0
    same_domain_citation_boost: float = 3.0

    domain_names: Tuple[str, ...] = DOMAIN_NAMES


@dataclass
class Author:
    name: str
    primary_domain: int
    # prestige[d] — the author's impact within domain d.
    prestige: np.ndarray


@dataclass
class Venue:
    name: str
    domain: int
    authority: float


@dataclass
class Paper:
    year: int
    domain: int
    author_ids: List[int]
    venue_id: int
    title: List[str]
    keywords: List[str]
    impact: float  # noiseless impact core
    label: float  # average citations per year (regression target)
    references: List[int] = field(default_factory=list)


@dataclass
class PublicationWorld:
    """The full generated ground truth."""

    config: WorldConfig
    authors: List[Author]
    venues: List[Venue]
    papers: List[Paper]
    # token -> (domain index or -1 for generic, significance)
    term_truth: Dict[str, Tuple[int, float]]

    @property
    def domain_names(self) -> Tuple[str, ...]:
        return self.config.domain_names

    def quality_terms(self, domain: int) -> List[str]:
        """Ground-truth quality terms of a domain (for Fig.-5 evaluation)."""
        return [t for t, (d, _) in self.term_truth.items() if d == domain]

    def labels(self) -> np.ndarray:
        return np.array([p.label for p in self.papers])

    def years(self) -> np.ndarray:
        return np.array([p.year for p in self.papers])


def _make_terms(config: WorldConfig,
                rng: np.random.Generator) -> Dict[str, Tuple[int, float]]:
    term_truth: Dict[str, Tuple[int, float]] = {}
    for d, name in enumerate(config.domain_names):
        for token in DOMAIN_TERMS[name]:
            significance = float(rng.lognormal(0.0, config.significance_sigma))
            term_truth[token] = (d, significance)
        # The domain name itself is a (moderately significant) quality term
        # of its own domain — it anchors the MLM bootstrap.
        term_truth[name] = (d, 1.0)
    for token in GENERIC_TERMS:
        term_truth[token] = (-1, 0.0)
    return term_truth


def _make_authors(config: WorldConfig,
                  rng: np.random.Generator) -> List[Author]:
    num_domains = len(config.domain_names)
    authors = []
    for i in range(config.num_authors):
        primary = int(rng.integers(num_domains))
        prestige = rng.lognormal(config.off_domain_prestige_mu,
                                 config.off_domain_prestige_sigma,
                                 size=num_domains)
        prestige[primary] = rng.lognormal(0.0, config.prestige_sigma)
        given = AUTHOR_GIVEN[int(rng.integers(len(AUTHOR_GIVEN)))]
        family = AUTHOR_FAMILY[int(rng.integers(len(AUTHOR_FAMILY)))]
        authors.append(Author(name=f"{given} {family} {i}",
                              primary_domain=primary,
                              prestige=prestige))
    return authors


def _make_venues(config: WorldConfig,
                 rng: np.random.Generator) -> List[Venue]:
    venues = []
    for d, domain_name in enumerate(config.domain_names):
        terms = DOMAIN_TERMS[domain_name]
        for _ in range(config.venues_per_domain):
            pattern = VENUE_NAME_PATTERNS[int(rng.integers(len(VENUE_NAME_PATTERNS)))]
            a, b = rng.choice(len(terms), size=2, replace=False)
            name = pattern.format(a=domain_name, b=terms[int(a)])
            name = f"{name} {terms[int(b)]}"
            venues.append(Venue(name=name, domain=d,
                                authority=float(rng.lognormal(0.0, config.authority_sigma))))
    return venues


def _sample_title(config: WorldConfig, domain: int,
                  domain_term_lists: List[List[str]],
                  significance_weights: List[np.ndarray],
                  rng: np.random.Generator) -> List[str]:
    length = int(rng.integers(config.min_title_len, config.max_title_len + 1))
    num_domains = len(config.domain_names)
    title = []
    for _ in range(length):
        u = rng.random()
        if u < config.p_domain_term:
            terms = domain_term_lists[domain]
            weights = significance_weights[domain]
            title.append(terms[int(rng.choice(len(terms), p=weights))])
        elif u < config.p_domain_term + config.p_domain_name:
            title.append(config.domain_names[domain])
        elif u < config.p_domain_term + config.p_domain_name + config.p_generic_term:
            title.append(GENERIC_TERMS[int(rng.integers(len(GENERIC_TERMS)))])
        else:
            other = int(rng.integers(num_domains))
            terms = domain_term_lists[other]
            title.append(terms[int(rng.integers(len(terms)))])
    return title


def generate_world(config: Optional[WorldConfig] = None) -> PublicationWorld:
    """Generate a full synthetic publication world."""
    config = config or WorldConfig()
    rng = np.random.default_rng(config.seed)
    num_domains = len(config.domain_names)

    term_truth = _make_terms(config, rng)
    authors = _make_authors(config, rng)
    venues = _make_venues(config, rng)

    # Per-domain author pools for efficient sampling.
    domain_authors: List[np.ndarray] = [
        np.array([i for i, a in enumerate(authors) if a.primary_domain == d])
        for d in range(num_domains)
    ]
    domain_venues: List[np.ndarray] = [
        np.array([i for i, v in enumerate(venues) if v.domain == d])
        for d in range(num_domains)
    ]
    domain_term_lists: List[List[str]] = [
        DOMAIN_TERMS[name] for name in config.domain_names
    ]
    # Mild significance bias in sampling: significant terms are used a bit
    # more often (they name the hot problems), but not deterministically.
    significance_weights: List[np.ndarray] = []
    for d, terms in enumerate(domain_term_lists):
        sig = np.array([term_truth[t][1] for t in terms])
        weights = np.sqrt(sig + 0.1)
        significance_weights.append(weights / weights.sum())

    papers: List[Paper] = []
    years = rng.integers(config.year_min, config.year_max + 1,
                         size=config.num_papers)
    years.sort()  # papers indexed in temporal order simplifies citations
    for i in range(config.num_papers):
        domain = int(rng.integers(num_domains))
        num_auth = int(rng.integers(config.min_authors, config.max_authors + 1))
        author_ids: List[int] = []
        for _ in range(num_auth):
            if (rng.random() < config.same_domain_author_prob
                    and len(domain_authors[domain])):
                candidate = int(rng.choice(domain_authors[domain]))
            else:
                candidate = int(rng.integers(config.num_authors))
            if candidate not in author_ids:
                author_ids.append(candidate)
        if rng.random() < config.same_domain_venue_prob and len(domain_venues[domain]):
            venue_id = int(rng.choice(domain_venues[domain]))
        else:
            venue_id = int(rng.integers(len(venues)))

        title = _sample_title(config, domain, domain_term_lists,
                              significance_weights, rng)

        # Noisy keywords: a lossy subset of the title's quality terms plus
        # random vocabulary noise (Sec. III-E motivation).
        all_terms = list(term_truth)
        keywords = [t for t in title
                    if term_truth.get(t, (-1, 0.0))[0] >= 0
                    and rng.random() < config.keyword_keep_prob]
        num_noise = int(rng.integers(config.keyword_noise_min,
                                     config.keyword_noise_max + 1))
        keywords += [all_terms[int(rng.integers(len(all_terms)))]
                     for _ in range(num_noise)]

        # Ground-truth impact components.
        prestige = float(np.mean([authors[a].prestige[domain]
                                  for a in author_ids]))
        venue = venues[venue_id]
        authority = venue.authority
        if venue.domain != domain:
            authority *= config.off_domain_venue_discount
        # Hot-topic effect: the most significant quality term in the title
        # drives the term component (a single hot keyword attracts readers),
        # so term significance is recoverable from paper-term links but is
        # mostly washed out of mean-pooled title embeddings.
        in_domain = [term_truth[t][1] for t in title
                     if term_truth.get(t, (-1, 0.0))[0] == domain]
        significance = float(np.max(in_domain)) if in_domain else 0.0

        impact = (config.w_author * prestige
                  + config.w_venue * authority
                  + config.w_term * significance)
        label = float(config.label_scale * impact
                      * rng.lognormal(0.0, config.label_noise_sigma))

        papers.append(Paper(year=int(years[i]), domain=domain,
                            author_ids=author_ids, venue_id=venue_id,
                            title=title, keywords=keywords,
                            impact=impact, label=label))

    _draw_citations(config, papers, rng)
    # Ingestion-side fault site (DESIGN §13): a drill can corrupt
    # individual records — future-citing or duplicated references — the
    # way a malformed bibliographic dump would, before the graph is
    # built.  No-op unless an injector is armed.
    from ..resilience import faults

    if faults.active() is not None:
        for i, paper in enumerate(papers):
            faults.fire("ingest.record", index=i, paper=paper, papers=papers)
    return PublicationWorld(config=config, authors=authors, venues=venues,
                            papers=papers, term_truth=term_truth)


def _draw_citations(config: WorldConfig, papers: List[Paper],
                    rng: np.random.Generator) -> None:
    """Domain-aware preferential attachment on impact.

    Paper i cites earlier papers with probability proportional to the
    target's impact, boosted for same-domain targets.  Papers are already
    sorted by year, so "earlier" means a strictly smaller index with a
    strictly smaller year (ties in year are not citable — a paper cannot
    cite a contemporary it could not have read).
    """
    impacts = np.array([p.impact for p in papers])
    domains = np.array([p.domain for p in papers])
    years = np.array([p.year for p in papers])
    for i, paper in enumerate(papers):
        # Papers are sorted by year, so the eligible set is exactly the
        # prefix [0, cut) — same ids in the same order the previous
        # O(N) boolean scan produced (RNG-identical), without rescanning
        # the whole history per paper.
        cut = int(np.searchsorted(years, paper.year, side="left"))
        eligible = np.arange(cut)
        if cut == 0:
            continue
        count = min(int(rng.poisson(config.mean_references)), len(eligible))
        if count == 0:
            continue
        weights = impacts[eligible].copy()
        weights[domains[eligible] == paper.domain] *= config.same_domain_citation_boost
        weights = np.maximum(weights, 1e-9)
        weights /= weights.sum()
        refs = rng.choice(eligible, size=count, replace=False, p=weights)
        paper.references = sorted(int(r) for r in refs)
