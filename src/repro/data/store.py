"""On-disk CSC heterogeneous graph store (ROADMAP item 1, DESIGN §15).

A :class:`GraphStore` is a *directory* of plain ``.npy`` arrays plus a
``store.json`` manifest — one CSC (destination-grouped) index per edge
type, one feature matrix and attribute array per node type, and named
split index arrays.  Every array is opened with ``np.load(...,
mmap_mode="r")``, so a reader touches only the pages a sampler actually
gathers: a million-paper graph is served from a few MB of resident
memory.  (Individual ``.npy`` files rather than one ``.npz`` because
numpy cannot memory-map members of a compressed archive.)

Writing scales the same way: :class:`StoreWriter` accepts edge chunks in
any order (COO triples spilled to raw append-only files) and
:meth:`StoreWriter.finalize` converts each spill to CSC with a
*chunked, stable counting sort* — two passes over the spill, O(chunk +
num_dst) resident memory, never the whole edge list.  The CSC order is
deterministic: edges of one destination appear in exactly the order
they were appended, matching what a stable in-memory
``argsort(dst)`` would produce.

:func:`synthesize_store` is the scalable companion of
:mod:`repro.data.generator`: a fully vectorized, chunk-streamed
publication-world synthesizer that emits 10⁶+ papers (all seven
publication-schema edge types, features, labels, temporal splits)
straight to a store without ever materializing the graph in RAM.  It
plants the same citation-driving factors (per-domain author prestige,
venue authority discounted off-domain, term significance) so sampled
training on a synthesized store optimizes a comparable objective, but
it is *not* RNG-compatible with the object-based generator — use
:func:`write_store_from_graph` when bitwise parity with an existing
:class:`~repro.hetnet.HeteroGraph` matters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..hetnet import HeteroGraph, publication_schema
from ..hetnet.graph import EdgeArray
from ..hetnet.schema import EdgeTypeKey
from ..resilience import atomic_write_text

__all__ = [
    "STORE_FORMAT_VERSION",
    "CSCEdges",
    "GraphStore",
    "StoreWriter",
    "synthesize_store",
    "write_store_from_graph",
    "write_store_from_dataset",
]

#: On-disk store manifest version; unknown versions are rejected.
STORE_FORMAT_VERSION = 1

_MANIFEST = "store.json"


@dataclass
class CSCEdges:
    """One edge type grouped by destination (compressed sparse column).

    ``indptr`` has ``num_dst + 1`` entries; destination ``v``'s incoming
    edges occupy ``indices[indptr[v]:indptr[v+1]]`` (source ids) and the
    matching ``weights`` slice.  Arrays may be read-only memmaps.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    @property
    def num_dst(self) -> int:
        return len(self.indptr) - 1

    def degrees(self) -> np.ndarray:
        """In-degree per destination node."""
        return np.diff(self.indptr)


def _edge_stem(index: int) -> str:
    return f"edge{index}"


def _attr_file(node_type: str, name: str) -> str:
    return f"attr_{node_type}_{name}.npy"


class GraphStore:
    """Read side of the on-disk format: lazy, memory-mapped arrays.

    All accessors return memmaps (or small materialized slices of them);
    nothing loads the full graph.  ``GraphStore`` instances are cheap —
    opening one reads only the JSON manifest.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        manifest_path = self.path / _MANIFEST
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported store format_version {version!r} in "
                f"{manifest_path}: this build reads version "
                f"{STORE_FORMAT_VERSION}"
            )
        self.num_nodes: Dict[str, int] = {
            t: int(n) for t, n in manifest["num_nodes"].items()
        }
        #: Edge types in manifest order — the summation order downstream
        #: message passing will see (same contract as ``save_graph``).
        self.edge_keys: List[EdgeTypeKey] = [
            tuple(key) for key in manifest["edge_types"]
        ]
        self._edge_index = {key: i for i, key in enumerate(self.edge_keys)}
        self._num_edges = [int(n) for n in manifest["num_edges"]]
        self.feature_types: List[str] = list(manifest.get("features", []))
        self.attr_names: Dict[str, List[str]] = {
            t: list(names) for t, names in manifest.get("attrs", {}).items()
        }
        self.split_names: List[str] = list(manifest.get("splits", []))
        self.names: Dict[str, List[str]] = manifest.get("names", {})
        self._csc: Dict[EdgeTypeKey, CSCEdges] = {}
        self._mmaps: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _load(self, filename: str) -> np.ndarray:
        if filename not in self._mmaps:
            self._mmaps[filename] = np.load(self.path / filename,
                                            mmap_mode="r")
        return self._mmaps[filename]

    def csc(self, key: EdgeTypeKey) -> CSCEdges:
        """Destination-grouped edges of ``key`` (memory-mapped, cached)."""
        if key not in self._csc:
            stem = _edge_stem(self._edge_index[key])
            self._csc[key] = CSCEdges(
                indptr=self._load(f"{stem}.indptr.npy"),
                indices=self._load(f"{stem}.indices.npy"),
                weights=self._load(f"{stem}.weights.npy"),
            )
        return self._csc[key]

    def features(self, node_type: str) -> np.ndarray:
        return self._load(f"feat_{node_type}.npy")

    def attr(self, node_type: str, name: str) -> np.ndarray:
        return self._load(_attr_file(node_type, name))

    def split(self, name: str) -> np.ndarray:
        return self._load(f"split_{name}.npy")

    def num_edges(self, key: EdgeTypeKey) -> int:
        return self._num_edges[self._edge_index[key]]

    @property
    def total_edges(self) -> int:
        return sum(self._num_edges)

    def nbytes(self) -> int:
        """Total on-disk payload size (all ``.npy`` files)."""
        return sum(p.stat().st_size for p in self.path.glob("*.npy"))

    # ------------------------------------------------------------------
    def to_graph(self) -> HeteroGraph:
        """Materialize the store as an in-memory :class:`HeteroGraph`.

        Intended for current-scale round-trip tests and interop — it
        loads everything.  Edges come out in CSC order (grouped by
        destination, stable within a destination), which is a
        permutation of the order they were appended with; set-level
        content is identical.
        """
        graph = HeteroGraph(publication_schema(include_terms=True))
        for node_type, count in self.num_nodes.items():
            graph.num_nodes[node_type] = count
            if node_type in self.names:
                graph.node_names[node_type] = list(self.names[node_type])
        for key in self.edge_keys:
            csc = self.csc(key)
            dst = np.repeat(
                np.arange(csc.num_dst, dtype=np.intp), csc.degrees()
            )
            graph.edges[key] = EdgeArray(
                np.asarray(csc.indices, dtype=np.intp), dst,
                np.asarray(csc.weights, dtype=np.float64),
            )
        for node_type in self.feature_types:
            graph.node_features[node_type] = np.asarray(
                self.features(node_type), dtype=np.float64
            )
        for node_type, attr_names in self.attr_names.items():
            for name in attr_names:
                graph.node_attrs.setdefault(node_type, {})[name] = (
                    np.asarray(self.attr(node_type, name))
                )
        graph._topology_version += 1
        graph.validate()
        return graph

    def __repr__(self) -> str:
        counts = ", ".join(f"{t}={n}" for t, n in self.num_nodes.items())
        return (f"GraphStore({self.path}, {counts}, "
                f"edges={self.total_edges})")


class StoreWriter:
    """Write side: COO edge chunks in, CSC store out, bounded memory.

    Node counts are declared up front so appended endpoints can be
    range-checked per chunk.  Edge chunks spill to raw append-only
    binary files; :meth:`finalize` converts each spill to CSC with a
    two-pass chunked stable counting sort and writes the manifest
    atomically (a crash mid-build leaves no ``store.json``, so a
    half-written directory is never readable as a store).
    """

    def __init__(self, path: Union[str, Path], num_nodes: Dict[str, int],
                 *, chunk_edges: int = 1 << 20) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        stale = self.path / _MANIFEST
        if stale.exists():
            raise FileExistsError(
                f"{stale} already exists; refusing to overwrite a "
                f"finalized store — remove the directory first"
            )
        self.num_nodes = {t: int(n) for t, n in num_nodes.items()}
        self.chunk_edges = int(chunk_edges)
        self._tmp = self.path / "tmp"
        self._tmp.mkdir(exist_ok=True)
        self._edge_keys: List[EdgeTypeKey] = []
        self._edge_files: Dict[EdgeTypeKey, Dict[str, object]] = {}
        self._edge_counts: Dict[EdgeTypeKey, int] = {}
        self._features: List[str] = []
        self._attrs: Dict[str, List[str]] = {}
        self._splits: List[str] = []
        self._names: Dict[str, List[str]] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    def append_edges(self, key: EdgeTypeKey, src: np.ndarray,
                     dst: np.ndarray,
                     weight: Optional[np.ndarray] = None) -> None:
        """Append a COO chunk of edges of type ``key`` (any order)."""
        key = tuple(key)
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if weight is None:
            weight = np.ones(len(src), dtype=np.float64)
        weight = np.ascontiguousarray(weight, dtype=np.float64)
        if not (len(src) == len(dst) == len(weight)):
            raise ValueError("src/dst/weight length mismatch")
        src_type, _, dst_type = key
        if len(src):
            if src.min() < 0 or src.max() >= self.num_nodes[src_type]:
                raise ValueError(f"src id out of range for {key}")
            if dst.min() < 0 or dst.max() >= self.num_nodes[dst_type]:
                raise ValueError(f"dst id out of range for {key}")
        if key not in self._edge_files:
            self._edge_keys.append(key)
            stem = self._tmp / f"spill{len(self._edge_keys) - 1}"
            self._edge_files[key] = {
                "src": open(f"{stem}.src.bin", "ab"),
                "dst": open(f"{stem}.dst.bin", "ab"),
                "weight": open(f"{stem}.weight.bin", "ab"),
                "stem": str(stem),
            }
            self._edge_counts[key] = 0
        files = self._edge_files[key]
        src.tofile(files["src"])
        dst.tofile(files["dst"])
        weight.tofile(files["weight"])
        self._edge_counts[key] += len(src)

    def set_features(self, node_type: str, features: np.ndarray) -> None:
        """Write a full (already materialized) feature matrix."""
        features = np.asarray(features, dtype=np.float64)
        self._check_rows(node_type, features)
        np.save(self.path / f"feat_{node_type}.npy", features)
        if node_type not in self._features:
            self._features.append(node_type)

    def features_memmap(self, node_type: str, dim: int,
                        dtype=np.float64) -> np.ndarray:
        """Open a writable feature memmap for chunked row-by-row fill."""
        out = np.lib.format.open_memmap(
            self.path / f"feat_{node_type}.npy", mode="w+", dtype=dtype,
            shape=(self.num_nodes[node_type], dim),
        )
        if node_type not in self._features:
            self._features.append(node_type)
        return out

    def set_attr(self, node_type: str, name: str,
                 values: np.ndarray) -> None:
        values = np.asarray(values)
        self._check_rows(node_type, values)
        np.save(self.path / _attr_file(node_type, name), values)
        self._attrs.setdefault(node_type, [])
        if name not in self._attrs[node_type]:
            self._attrs[node_type].append(name)

    def set_split(self, name: str, ids: np.ndarray) -> None:
        np.save(self.path / f"split_{name}.npy",
                np.asarray(ids, dtype=np.int64))
        if name not in self._splits:
            self._splits.append(name)

    def set_names(self, node_type: str, names: Sequence[str]) -> None:
        """Optional human-readable node names (manifest-resident; meant
        for current-scale stores, not million-node ones)."""
        if len(names) != self.num_nodes[node_type]:
            raise ValueError(f"names length mismatch for {node_type!r}")
        self._names[node_type] = list(names)

    def _check_rows(self, node_type: str, values: np.ndarray) -> None:
        if values.shape[0] != self.num_nodes[node_type]:
            raise ValueError(
                f"rows ({values.shape[0]}) != node count "
                f"({self.num_nodes[node_type]}) for {node_type!r}"
            )

    # ------------------------------------------------------------------
    def finalize(self) -> GraphStore:
        """Convert spills to CSC, write the manifest, return the store."""
        if self._finalized:
            raise RuntimeError("finalize() already called")
        self._finalized = True
        for i, key in enumerate(self._edge_keys):
            files = self._edge_files[key]
            for handle_name in ("src", "dst", "weight"):
                files[handle_name].close()
            self._spill_to_csc(i, key)
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "num_nodes": self.num_nodes,
            "edge_types": [list(key) for key in self._edge_keys],
            "num_edges": [self._edge_counts[key] for key in self._edge_keys],
            "features": self._features,
            "attrs": self._attrs,
            "splits": self._splits,
        }
        if self._names:
            manifest["names"] = self._names
        atomic_write_text(self.path / _MANIFEST, json.dumps(manifest))
        for stale in self._tmp.iterdir():
            stale.unlink()
        self._tmp.rmdir()
        return GraphStore(self.path)

    def _spill_to_csc(self, index: int, key: EdgeTypeKey) -> None:
        """Two-pass chunked stable counting sort: COO spill → CSC files.

        Pass 1 accumulates per-destination counts (→ ``indptr``); pass 2
        re-reads the spill chunk by chunk, stably sorts each chunk by
        destination, and scatters the chunk's runs into their final CSC
        positions via a running per-destination write cursor.  Chunks
        are processed in append order and the per-chunk sort is stable,
        so within each destination the original append order survives —
        the same order ``EdgeStructure``'s stable argsort produces.
        """
        stem = self._edge_files[key]["stem"]
        num_edges = self._edge_counts[key]
        num_dst = self.num_nodes[key[2]]
        chunk = self.chunk_edges
        out_stem = self.path / _edge_stem(index)
        if num_edges == 0:  # mmap cannot map empty files
            np.save(f"{out_stem}.indptr.npy",
                    np.zeros(num_dst + 1, dtype=np.int64))
            np.save(f"{out_stem}.indices.npy",
                    np.empty(0, dtype=np.int64))
            np.save(f"{out_stem}.weights.npy",
                    np.empty(0, dtype=np.float64))
            return
        src_spill = np.memmap(f"{stem}.src.bin", dtype=np.int64, mode="r")
        dst_spill = np.memmap(f"{stem}.dst.bin", dtype=np.int64, mode="r")
        w_spill = np.memmap(f"{stem}.weight.bin", dtype=np.float64,
                            mode="r")
        counts = np.zeros(num_dst, dtype=np.int64)
        for lo in range(0, num_edges, chunk):
            part = np.asarray(dst_spill[lo:lo + chunk])
            counts += np.bincount(part, minlength=num_dst)
        indptr = np.zeros(num_dst + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        np.save(f"{out_stem}.indptr.npy", indptr)
        indices = np.lib.format.open_memmap(
            f"{out_stem}.indices.npy", mode="w+", dtype=np.int64,
            shape=(num_edges,),
        )
        weights = np.lib.format.open_memmap(
            f"{out_stem}.weights.npy", mode="w+", dtype=np.float64,
            shape=(num_edges,),
        )
        cursor = indptr[:-1].copy()
        for lo in range(0, num_edges, chunk):
            dst_part = np.asarray(dst_spill[lo:lo + chunk])
            order = np.argsort(dst_part, kind="stable")
            sorted_dst = dst_part[order]
            uniq, first, run = np.unique(sorted_dst, return_index=True,
                                         return_counts=True)
            within = np.arange(len(sorted_dst)) - np.repeat(first, run)
            positions = np.repeat(cursor[uniq], run) + within
            indices[positions] = np.asarray(src_spill[lo:lo + chunk])[order]
            weights[positions] = np.asarray(w_spill[lo:lo + chunk])[order]
            cursor[uniq] += run
        indices.flush()
        weights.flush()


# ----------------------------------------------------------------------
# Graph / dataset → store converters
# ----------------------------------------------------------------------
def write_store_from_graph(graph: HeteroGraph, path: Union[str, Path], *,
                           splits: Optional[Dict[str, np.ndarray]] = None,
                           include_names: bool = True) -> GraphStore:
    """Persist an in-memory :class:`HeteroGraph` as an on-disk store."""
    writer = StoreWriter(path, graph.num_nodes)
    for key, edge in graph.edges.items():
        writer.append_edges(key, edge.src, edge.dst, edge.weight)
    for node_type, features in graph.node_features.items():
        writer.set_features(node_type, features)
    for node_type, attrs in graph.node_attrs.items():
        for name, values in attrs.items():
            writer.set_attr(node_type, name, values)
    if include_names:
        for node_type, names in graph.node_names.items():
            writer.set_names(node_type, names)
    for name, ids in (splits or {}).items():
        writer.set_split(name, ids)
    return writer.finalize()


def write_store_from_dataset(dataset, path: Union[str, Path],
                             **kwargs) -> GraphStore:
    """Persist a :class:`~repro.data.dblp.CitationDataset` (graph +
    temporal splits) as an on-disk store."""
    splits = {"train": dataset.train_idx, "val": dataset.val_idx,
              "test": dataset.test_idx}
    return write_store_from_graph(dataset.graph, path, splits=splits,
                                  **kwargs)


# ----------------------------------------------------------------------
# Scalable synthetic world → store
# ----------------------------------------------------------------------
def synthesize_store(path: Union[str, Path], num_papers: int, *,
                     seed: int = 0,
                     feature_dim: int = 32,
                     papers_per_author: float = 4.0,
                     venues_per_domain: int = 5,
                     terms_per_domain: int = 28,
                     generic_terms: int = 34,
                     max_authors: int = 3,
                     max_terms: int = 4,
                     mean_references: float = 4.0,
                     same_domain_author_prob: float = 0.70,
                     same_domain_venue_prob: float = 0.85,
                     year_min: int = 2004,
                     year_max: int = 2020,
                     chunk: int = 200_000) -> GraphStore:
    """Stream a synthetic publication world of ``num_papers`` to a store.

    Fully vectorized and chunked over papers: resident memory is
    O(num_papers) small scalar arrays (years, domains, labels — ~8 bytes
    each) plus O(chunk) working arrays, never the edge lists or feature
    matrices, which stream straight to disk.  Plants the generator's
    citation-driving factors (per-domain author prestige, venue
    authority with off-domain discount, term significance driving a
    label-correlated feature column) and draws citations only into
    strictly earlier years with a recency bias.
    """
    from .dblp import TEST_FROM, TRAIN_BEFORE, VAL_YEAR
    from .lexicon import DOMAIN_NAMES
    from ..hetnet.schema import AUTHOR, PAPER, TERM, VENUE

    rng = np.random.default_rng(seed)
    num_domains = len(DOMAIN_NAMES)
    num_authors = max(num_domains, int(num_papers / papers_per_author))
    num_venues = num_domains * venues_per_domain
    num_terms = num_domains * terms_per_domain + generic_terms

    # Entity ground truth (O(entities) resident, tiny next to the edges).
    author_domain = np.sort(np.concatenate([
        np.arange(num_domains),  # every domain is inhabited
        rng.integers(0, num_domains, size=num_authors - num_domains),
    ]))
    dom_start_a = np.searchsorted(author_domain,
                                  np.arange(num_domains + 1))
    dom_size_a = np.diff(dom_start_a)
    prestige = rng.lognormal(0.0, 0.85, size=num_authors)
    authority = rng.lognormal(0.0, 0.8, size=num_venues)
    venue_domain = np.repeat(np.arange(num_domains), venues_per_domain)
    term_domain = np.concatenate([
        np.repeat(np.arange(num_domains), terms_per_domain),
        np.full(generic_terms, -1),
    ])
    significance = rng.lognormal(0.0, 0.8, size=num_terms)
    significance[term_domain < 0] = 0.0

    years = rng.integers(year_min, year_max + 1,
                         size=num_papers).astype(np.int64)
    years.sort()  # temporal index order, like the object generator
    domains = rng.integers(0, num_domains, size=num_papers)
    labels = np.empty(num_papers, dtype=np.float64)

    writer = StoreWriter(path, {PAPER: num_papers, AUTHOR: num_authors,
                                VENUE: num_venues, TERM: num_terms})
    paper_feat = writer.features_memmap(PAPER, feature_dim)

    for lo in range(0, num_papers, chunk):
        hi = min(lo + chunk, num_papers)
        n = hi - lo
        d = domains[lo:hi]

        # Authorship: 1..max_authors authors, mostly from the home domain.
        n_auth = rng.integers(1, max_authors + 1, size=n)
        p_rep = np.repeat(np.arange(lo, hi, dtype=np.int64), n_auth)
        d_rep = np.repeat(d, n_auth)
        in_domain = rng.random(len(p_rep)) < same_domain_author_prob
        pick = np.where(
            in_domain,
            dom_start_a[d_rep] + rng.integers(0, dom_size_a[d_rep]),
            rng.integers(0, num_authors, size=len(p_rep)),
        )
        writer.append_edges((PAPER, "written_by", AUTHOR), p_rep, pick)
        writer.append_edges((AUTHOR, "writes", PAPER), pick, p_rep)
        paper_prestige = (
            np.bincount(p_rep - lo, weights=prestige[pick], minlength=n)
            / n_auth
        )

        # Venue: one per paper, mostly in-domain; off-domain discounted.
        in_domain_v = rng.random(n) < same_domain_venue_prob
        venue = np.where(
            in_domain_v,
            d * venues_per_domain + rng.integers(0, venues_per_domain,
                                                 size=n),
            rng.integers(0, num_venues, size=n),
        )
        paper_ids = np.arange(lo, hi, dtype=np.int64)
        writer.append_edges((PAPER, "published_in", VENUE), paper_ids,
                            venue)
        writer.append_edges((VENUE, "publishes", PAPER), venue, paper_ids)
        paper_authority = authority[venue] * np.where(
            venue_domain[venue] == d, 1.0, 0.35
        )

        # Terms: 1..max_terms, mostly in-domain quality terms; the most
        # significant in-domain term drives the label (hot-topic effect).
        n_terms = rng.integers(1, max_terms + 1, size=n)
        p_rep_t = np.repeat(np.arange(n, dtype=np.int64), n_terms)
        d_rep_t = np.repeat(d, n_terms)
        in_domain_t = rng.random(len(p_rep_t)) < 0.7
        term = np.where(
            in_domain_t,
            d_rep_t * terms_per_domain + rng.integers(0, terms_per_domain,
                                                      size=len(p_rep_t)),
            rng.integers(0, num_terms, size=len(p_rep_t)),
        )
        writer.append_edges((PAPER, "mentions", TERM), p_rep_t + lo, term)
        writer.append_edges((TERM, "mentioned_by", PAPER), term,
                            p_rep_t + lo)
        paper_sig = np.zeros(n, dtype=np.float64)
        hit = term_domain[term] == d_rep_t
        np.maximum.at(paper_sig, p_rep_t[hit], significance[term[hit]])

        # Citations: into strictly earlier years only (years are sorted,
        # so the eligible set of paper i is exactly [0, cut_i)); the max
        # of two uniform draws biases references toward recent work.
        cut = np.searchsorted(years, years[lo:hi], side="left")
        n_ref = np.minimum(
            rng.poisson(mean_references, size=n).astype(np.int64), cut
        )
        cut_rep = np.repeat(cut, n_ref)
        refs = np.maximum(rng.integers(0, cut_rep),
                          rng.integers(0, cut_rep))
        writer.append_edges((PAPER, "cites", PAPER), refs,
                            np.repeat(paper_ids, n_ref))

        impact = (0.35 * paper_prestige + 0.25 * paper_authority
                  + 0.40 * paper_sig)
        labels[lo:hi] = 3.0 * impact * rng.lognormal(0.0, 0.15, size=n)

        block = rng.normal(0.0, 1.0, size=(n, feature_dim))
        block[:, 0] = impact  # label-correlated column
        paper_feat[lo:hi] = block
    paper_feat.flush()

    # Entity features (streamed in chunks too — authors can be large).
    for node_type, count in ((AUTHOR, num_authors), (VENUE, num_venues),
                             (TERM, num_terms)):
        out = writer.features_memmap(node_type, feature_dim)
        for lo in range(0, count, chunk):
            hi = min(lo + chunk, count)
            out[lo:hi] = rng.normal(0.0, 1.0, size=(hi - lo, feature_dim))
        out.flush()

    writer.set_attr(PAPER, "year", years)
    writer.set_attr(PAPER, "label", labels)
    writer.set_attr(PAPER, "domain", domains)
    writer.set_attr(AUTHOR, "primary_domain", author_domain)
    writer.set_attr(VENUE, "domain", venue_domain)
    writer.set_split("train", np.nonzero(years < TRAIN_BEFORE)[0])
    writer.set_split("val", np.nonzero(years == VAL_YEAR)[0])
    writer.set_split("test", np.nonzero(years >= TEST_FROM)[0])
    return writer.finalize()
