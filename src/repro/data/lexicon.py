"""Curated lexicon for the synthetic publication world.

Nine research domains (the paper's footnote-4 domain names) each own a set
of topical terms; generic filler words are shared across domains.  Real
vocabulary keeps the Table-III/Figure-5 case studies interpretable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# The exact domain names of the paper's footnote 4.
DOMAIN_NAMES: Tuple[str, ...] = (
    "data", "learning", "vision", "language", "bio",
    "robotics", "network", "system", "security",
)

DOMAIN_TERMS: Dict[str, List[str]] = {
    "data": [
        "mining", "query", "index", "warehouse", "stream", "database",
        "schema", "transaction", "olap", "clustering", "outlier", "join",
        "spatial", "temporal", "graph", "recommend", "rank", "privacy",
        "social", "crawl", "integration", "provenance", "sketch", "skyline",
        "frequent", "itemset", "keyword", "similarity",
    ],
    "learning": [
        "kernel", "gradient", "bayesian", "regression", "boosting",
        "convolution", "regularization", "sparse", "convex", "embedding",
        "classifier", "generative", "adversarial", "reinforcement",
        "transfer", "metric", "probabilistic", "inference", "latent",
        "variational", "ensemble", "margin", "smoothness", "dropout",
        "attention", "optimization", "representation", "semi-supervised",
    ],
    "vision": [
        "image", "segmentation", "detection", "tracking", "stereo",
        "texture", "saliency", "pose", "face", "pixel", "descriptor",
        "registration", "optical", "depth", "shape", "contour", "denoising",
        "super-resolution", "recognition", "scene", "keypoint", "camera",
        "illumination", "retrieval", "deblurring", "foreground", "gesture",
        "video",
    ],
    "language": [
        "parsing", "translation", "sentiment", "corpus", "syntax",
        "semantic", "discourse", "entity", "coreference", "summarization",
        "dialogue", "morphology", "tagging", "lexicon", "grammar",
        "question-answering", "tokenization", "paraphrase", "pragmatics",
        "treebank", "alignment", "transliteration", "phoneme", "prosody",
        "speech", "topic", "word", "sentence",
    ],
    "bio": [
        "genome", "protein", "sequence", "expression", "pathway",
        "phylogeny", "microarray", "snp", "annotation", "motif", "docking",
        "epigenetic", "transcription", "metabolic", "biomarker", "assembly",
        "alignment-free", "proteomics", "drug", "cell", "mutation",
        "regulatory", "ontology", "disease", "clinical", "gene", "rna",
        "folding",
    ],
    "robotics": [
        "manipulation", "slam", "grasping", "locomotion", "planning",
        "kinematics", "dynamics", "actuator", "sensor-fusion", "autonomous",
        "navigation", "humanoid", "swarm", "teleoperation", "compliance",
        "trajectory", "obstacle", "calibration", "gripper", "odometry",
        "exploration", "manipulator", "aerial", "underwater", "haptic",
        "wheeled", "legged", "control",
    ],
    "network": [
        "routing", "wireless", "protocol", "congestion", "spectrum",
        "cellular", "mesh", "multicast", "latency", "bandwidth", "sdn",
        "topology", "packet", "mobility", "handoff", "edge", "overlay",
        "peer-to-peer", "throughput", "antenna", "mimo", "ofdm", "vehicular",
        "sensor-network", "backbone", "switching", "queueing", "traffic",
    ],
    "system": [
        "cloud", "scheduler", "virtualization", "cache", "gpu", "compiler",
        "filesystem", "storage", "concurrency", "multicore", "energy",
        "workload", "memory", "kernel-module", "container", "microservice",
        "fault-tolerance", "replication", "consistency", "checkpoint",
        "pipeline", "accelerator", "runtime", "profiling", "datacenter",
        "demand", "throughput-oriented", "center",
    ],
    "security": [
        "encryption", "authentication", "malware", "intrusion", "attack",
        "vulnerability", "firewall", "botnet", "phishing", "forensics",
        "anonymity", "key-exchange", "signature", "obfuscation", "sandbox",
        "exploit", "ransomware", "audit", "access-control", "trust",
        "blockchain", "side-channel", "honeypot", "fuzzing", "threat",
        "integrity", "confidentiality", "cryptography",
    ],
}

# Generic filler words: frequent everywhere, hence low TF-IDF and low
# citation signal — the "maximization is too general" case of Sec. III-E.
GENERIC_TERMS: List[str] = [
    "approach", "method", "novel", "analysis", "framework", "study",
    "evaluation", "efficient", "effective", "improved", "towards", "using",
    "based", "model", "algorithm", "application", "design", "problem",
    "results", "performance", "technique", "survey", "empirical", "robust",
    "scalable", "adaptive", "hybrid", "unified", "general", "practical",
    "automated", "dynamic", "large", "fast",
]

VENUE_NAME_PATTERNS: List[str] = [
    "international conference on {a} and {b}",
    "transactions on {a} {b}",
    "journal of {a} and {b}",
    "symposium on {a} {b}",
    "workshop on {a} and {b}",
]

# Pools for synthetic author names.
AUTHOR_GIVEN: List[str] = [
    "wei", "jia", "min", "lee", "chen", "kim", "ana", "ivan", "joao",
    "maria", "raj", "priya", "omar", "lin", "yuki", "sara", "noah", "emma",
    "liam", "olga", "hugo", "nina", "paul", "rita", "sam", "tara", "umar",
    "vera", "walt", "xena", "yara", "zane", "amir", "bela", "cleo", "dara",
]
AUTHOR_FAMILY: List[str] = [
    "zhang", "wang", "li", "liu", "smith", "jones", "garcia", "muller",
    "kumar", "singh", "sato", "tanaka", "kim", "park", "nguyen", "tran",
    "silva", "santos", "ivanov", "petrov", "rossi", "ricci", "dubois",
    "martin", "brown", "davis", "wilson", "taylor", "clark", "lewis",
    "walker", "hall", "young", "allen", "king", "wright",
]
