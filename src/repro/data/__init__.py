"""Synthetic DBLP-like datasets (DESIGN.md §2 substitution for the real dump)."""

from .dblp import (
    TEST_FROM,
    TRAIN_BEFORE,
    VAL_YEAR,
    CitationDataset,
    TextArtifacts,
    make_all_datasets,
    make_dblp_full,
    make_dblp_random,
    make_dblp_single,
    temporal_split,
)
from .generator import (
    Author,
    Paper,
    PublicationWorld,
    Venue,
    WorldConfig,
    generate_world,
)
from .io import load_graph, mmap_npz, save_graph
from .lexicon import DOMAIN_NAMES, DOMAIN_TERMS, GENERIC_TERMS
from .sampling import (
    ItemSampler,
    MiniBatch,
    MinibatchSampler,
    NeighborSampler,
    SampledSubgraph,
    shard_items,
)
from .store import (
    STORE_FORMAT_VERSION,
    CSCEdges,
    GraphStore,
    StoreWriter,
    synthesize_store,
    write_store_from_dataset,
    write_store_from_graph,
)

__all__ = [
    "WorldConfig",
    "PublicationWorld",
    "Author",
    "Venue",
    "Paper",
    "generate_world",
    "CitationDataset",
    "TextArtifacts",
    "make_dblp_full",
    "make_dblp_single",
    "make_dblp_random",
    "make_all_datasets",
    "temporal_split",
    "TRAIN_BEFORE",
    "VAL_YEAR",
    "TEST_FROM",
    "save_graph",
    "load_graph",
    "mmap_npz",
    "DOMAIN_NAMES",
    "DOMAIN_TERMS",
    "GENERIC_TERMS",
    "STORE_FORMAT_VERSION",
    "CSCEdges",
    "GraphStore",
    "StoreWriter",
    "synthesize_store",
    "write_store_from_graph",
    "write_store_from_dataset",
    "ItemSampler",
    "MiniBatch",
    "MinibatchSampler",
    "NeighborSampler",
    "SampledSubgraph",
    "shard_items",
]
