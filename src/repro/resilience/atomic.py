"""Crash-safe filesystem primitives + content integrity (DESIGN §12).

Every durable write in this codebase (model checkpoints, training
snapshots, graph exports) goes through :func:`atomic_write_bytes` /
:func:`atomic_write_text`:

1. the payload is written to a unique temp file *in the target
   directory* (same filesystem, so the final rename cannot cross a
   device boundary);
2. the temp file is flushed and ``fsync``-ed, so the bytes are on disk
   before the name exists;
3. ``os.replace`` atomically swaps the temp file into place — readers
   see either the complete old file or the complete new file, never a
   torn write;
4. the containing directory is ``fsync``-ed so the rename itself
   survives a power cut.

A crash at any point leaves at most a stray ``*.tmp-*`` file next to the
target; the previous version of the target is intact.

Integrity: :func:`content_digest` hashes a named mapping of numpy arrays
(name + dtype + shape + raw bytes, in sorted-name order) into a SHA-256
hex digest that writers embed in their metadata blob and loaders verify,
turning silent bit rot into a loud
:class:`~repro.resilience.errors.CheckpointCorruptError`.

Fault hooks: :mod:`repro.resilience.faults` sites ``atomic.post_write``
(after the temp file is durable, before the swap — used to simulate
torn/corrupted payloads) and ``atomic.pre_replace`` (used to simulate a
kill between temp-write and rename) fire inside
:func:`atomic_write_bytes`; they are no-ops unless a drill arms them.
"""

from __future__ import annotations

import hashlib
import os
import uuid
from pathlib import Path
from typing import Mapping, Union

import numpy as np

from . import faults

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "content_digest",
    "file_sha256",
    "fsync_directory",
]


def fsync_directory(directory: Union[str, Path]) -> None:
    """``fsync`` a directory so a completed rename survives power loss.

    Best-effort: some platforms/filesystems refuse to open directories
    (Windows) — those cannot honor the barrier and are skipped.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Durably write ``data`` to ``path`` via temp file + fsync + rename.

    Returns the final path.  On any failure the target is untouched; a
    stray temp file may remain and is safe to delete.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        # Drill hooks: corrupt the durable temp payload / die pre-rename.
        faults.fire("atomic.post_write", tmp=tmp, final=path)
        faults.fire("atomic.pre_replace", tmp=tmp, final=path)
        os.replace(tmp, path)
    except BaseException:
        # Leave the target intact; drop the temp file if we still can.
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # noqa: R005 - cleanup is best-effort by design
            pass
        raise
    fsync_directory(path.parent)
    return path


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> Path:
    """Durable text variant of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))


def content_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over a named array mapping (order-independent).

    Hashes ``name || dtype || shape || raw bytes`` for every entry in
    sorted-name order, so the digest pins both the values and the exact
    layout a loader will materialize.
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(str(arr.dtype).encode("ascii"))
        h.update(repr(arr.shape).encode("ascii"))
        h.update(arr.tobytes())
    return h.hexdigest()


def file_sha256(path: Union[str, Path], chunk: int = 1 << 20) -> str:
    """SHA-256 of a file's raw bytes (streamed)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()
