"""Seeded fault injection for resilience drills (DESIGN §12).

Instrumented code calls :func:`fire` at named *sites*; when no injector
is armed this is a dict-free no-op, so production paths pay one global
read per site.  Tests and ``python -m repro.resilience.drill`` arm a
:class:`FaultInjector` as a context manager:

    from repro.resilience import faults

    with faults.nan_in_grad(iter=3):
        est.fit(dataset, checkpoint_dir=ckpt)   # diverges once at outer 3

    with faults.crash_at_outer(iter=2):
        est.fit(...)                            # raises CrashInjected

Instrumented sites
------------------
``trainer.outer``        ctx: ``outer``               (CATE-HGN, per outer iter)
``trainer.grad``         ctx: ``outer, mini, params`` (after backward, pre-clip)
``baseline.epoch``       ctx: ``epoch``               (GNN scaffold, per epoch)
``baseline.grad``        ctx: ``epoch, params``       (after backward, pre-clip)
``atomic.post_write``    ctx: ``tmp, final``          (temp file durable)
``atomic.pre_replace``   ctx: ``tmp, final``          (just before os.replace)
``ingest.record``        ctx: ``index, paper, papers`` (per generated paper)
``ingest.graph``         ctx: ``graph``               (finished ingestion graph)
``engine.predict``       ctx: ``ids``                 (serving, per predict call)
``fleet.worker.step``    ctx: ``shard, step``         (elastic worker, per step)
``fleet.transport.frame`` ctx: ``event, link, direction, method, step``
                         (FaultyTransport, per proxied frame; ``event`` is a
                         mutable :class:`~repro.fleet.transport.FrameEvent`
                         whose ``drop``/``delay_s``/``duplicate``/
                         ``partition`` fields the action sets)

Every site call also receives ``count`` — the 1-based number of times the
site has fired under the active injector — so ``raise_at_op`` can target
"the N-th write" without the instrumented code numbering anything.

Faults default to ``once=True``: after firing they disarm, so a retry
after rollback does not re-trip the same fault (exactly the semantics a
transient hardware/numerical fault has).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .errors import CrashInjected

__all__ = [
    "FaultInjector",
    "fire",
    "active",
    "crash_at_outer",
    "crash_at_epoch",
    "nan_in_grad",
    "raise_at_op",
    "truncate_after_write",
    "kill_before_replace",
    "corrupt_record",
    "poison_graph",
    "fail_engine",
    "slow_engine",
    "kill_worker",
    "drop_frame",
    "delay_frame",
    "dup_frame",
    "partition_at",
]

#: Stack of armed injectors; the innermost one receives ``fire`` calls.
_STACK: List["FaultInjector"] = []


def active() -> Optional["FaultInjector"]:
    """The innermost armed injector, or None."""
    return _STACK[-1] if _STACK else None


def fire(site: str, **ctx: Any) -> None:
    """Report reaching ``site``; a no-op unless an injector is armed."""
    injector = active()
    if injector is not None:
        injector._fire(site, ctx)


@dataclass
class _Fault:
    site: str
    when: Callable[[Dict[str, Any]], bool]
    action: Callable[[Dict[str, Any]], None]
    label: str
    once: bool = True
    fired: int = 0


@dataclass
class FaultInjector:
    """A context manager arming one or more faults (chainable builders)."""

    _faults: List[_Fault] = field(default_factory=list)
    _counts: Dict[str, int] = field(default_factory=dict)
    #: Fired-fault log for assertions: ``[{"site": ..., "label": ...}]``.
    log: List[Dict[str, Any]] = field(default_factory=list)

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        _STACK.append(self)
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        _STACK.remove(self)
        return False

    def _fire(self, site: str, ctx: Dict[str, Any]) -> None:
        self._counts[site] = self._counts.get(site, 0) + 1
        ctx = dict(ctx)
        ctx["count"] = self._counts[site]
        for fault in self._faults:
            if fault.site != site or (fault.once and fault.fired):
                continue
            if fault.when(ctx):
                fault.fired += 1
                self.log.append({"site": site, "label": fault.label,
                                 "count": ctx["count"]})
                fault.action(ctx)

    def fired(self, label: Optional[str] = None) -> int:
        """How many times faults (optionally matching ``label``) fired."""
        if label is None:
            return sum(f.fired for f in self._faults)
        return sum(f.fired for f in self._faults if f.label == label)

    # -- builders (return self so they chain) ---------------------------
    def add(self, site: str, when: Callable[[Dict[str, Any]], bool],
            action: Callable[[Dict[str, Any]], None], label: str,
            once: bool = True) -> "FaultInjector":
        self._faults.append(_Fault(site, when, action, label, once))
        return self

    def crash_at_outer(self, iter: int) -> "FaultInjector":
        """Raise :class:`CrashInjected` entering outer iteration ``iter``."""
        return self.add(
            "trainer.outer",
            lambda ctx: ctx["outer"] == iter,
            _raiser(f"injected crash at outer iteration {iter}"),
            label=f"crash_at_outer({iter})",
        )

    def crash_at_epoch(self, epoch: int) -> "FaultInjector":
        """Raise :class:`CrashInjected` entering baseline epoch ``epoch``."""
        return self.add(
            "baseline.epoch",
            lambda ctx: ctx["epoch"] == epoch,
            _raiser(f"injected crash at epoch {epoch}"),
            label=f"crash_at_epoch({epoch})",
        )

    def nan_in_grad(self, iter: int) -> "FaultInjector":
        """Poison the first live gradient with NaN at iteration ``iter``.

        Fires at ``trainer.grad`` (``iter`` = outer iteration) and
        ``baseline.grad`` (``iter`` = epoch); whichever the run reaches
        first consumes the fault (``once=True``).
        """

        def poison(ctx: Dict[str, Any]) -> None:
            for param in ctx["params"]:
                if param.grad is not None:
                    param.grad[...] = np.nan
                    return

        def when(ctx: Dict[str, Any]) -> bool:
            step = ctx.get("outer", ctx.get("epoch"))
            return step == iter

        self.add("trainer.grad", when, poison,
                 label=f"nan_in_grad({iter})")
        return self.add("baseline.grad", when, poison,
                        label=f"nan_in_grad({iter})")

    def raise_at_op(self, site: str, n: int,
                    exc_type: type = CrashInjected) -> "FaultInjector":
        """Raise on the ``n``-th (1-based) time ``site`` is reached."""
        def action(ctx: Dict[str, Any]) -> None:
            raise exc_type(f"injected failure at {site} call #{n}")

        return self.add(site, lambda ctx: ctx["count"] == n, action,
                        label=f"raise_at_op({site}, {n})")

    def truncate_after_write(self, nbytes: int = 64,
                             match: Optional[str] = None) -> "FaultInjector":
        """Chop ``nbytes`` off the durable temp file before the rename.

        Simulates a torn write reaching the final name: the corrupted
        payload *is* installed, and the loader must reject it.
        """

        def action(ctx: Dict[str, Any]) -> None:
            tmp = ctx["tmp"]
            size = tmp.stat().st_size
            with open(tmp, "r+b") as fh:
                fh.truncate(max(0, size - nbytes))

        return self.add(
            "atomic.post_write",
            lambda ctx: match is None or match in str(ctx["final"]),
            action,
            label=f"truncate_after_write({nbytes})",
        )

    def kill_before_replace(self, match: Optional[str] = None
                            ) -> "FaultInjector":
        """Die between the durable temp write and ``os.replace``.

        The previous version of the target must survive untouched.
        """
        return self.add(
            "atomic.pre_replace",
            lambda ctx: match is None or match in str(ctx["final"]),
            _raiser("injected kill between temp-write and os.replace"),
            label="kill_before_replace",
        )

    # -- ingestion / serving faults (DESIGN §13) ------------------------
    def corrupt_record(self, mode: str = "future_cite",
                       index: Optional[int] = None) -> "FaultInjector":
        """Corrupt one generated paper record at ``ingest.record``.

        Modes (both append-only on the record's reference list, so a
        contract ``repair`` pass restores the clean graph bitwise):

        - ``future_cite`` — append a reference to a *later-year* paper,
          the temporal violation C004 (a citation edge into the future);
        - ``dup_cite`` — append a copy of the record's first reference,
          the duplicate-edge violation C003.

        ``index`` pins the corrupted record; by default the first record
        where the corruption is *feasible* (a later-year paper exists /
        the record has a reference) is hit.
        """
        if mode not in ("future_cite", "dup_cite"):
            raise ValueError(f"unknown corrupt_record mode {mode!r}")

        def feasible(ctx: Dict[str, Any]) -> bool:
            if index is not None and ctx["index"] != index:
                return False
            if mode == "future_cite":
                year = ctx["paper"].year
                return any(p.year > year for p in ctx["papers"])
            return bool(ctx["paper"].references)

        def action(ctx: Dict[str, Any]) -> None:
            paper = ctx["paper"]
            if mode == "future_cite":
                for j, other in enumerate(ctx["papers"]):
                    if other.year > paper.year:
                        paper.references.append(j)
                        return
            else:
                paper.references.append(paper.references[0])

        return self.add("ingest.record", feasible, action,
                        label=f"corrupt_record({mode})")

    def poison_graph(self, mode: str = "dangling") -> "FaultInjector":
        """Poison the finished ingestion graph at ``ingest.graph``.

        Modes:

        - ``dangling`` — append a citation edge whose source id is past
          the paper count (C002).  Append-only: ``repair`` drops exactly
          this edge and restores the clean graph bitwise.
        - ``dup_edge`` — append a copy of the first citation edge (C003;
          also bitwise-restorable).
        - ``nan_feature`` — set one paper feature to NaN (C005; repair
          zeroes it, so the restore is *not* bitwise — fuzz-suite food).
        """
        if mode not in ("dangling", "dup_edge", "nan_feature"):
            raise ValueError(f"unknown poison_graph mode {mode!r}")

        def action(ctx: Dict[str, Any]) -> None:
            graph = ctx["graph"]
            if mode == "nan_feature":
                feats = next(iter(graph.node_features.values()))
                feats[0, 0] = np.nan
                return
            from ..hetnet.graph import EdgeArray

            key = next(k for k in graph.edges if k[1] == "cites")
            ea = graph.edges[key]
            if mode == "dangling":
                src = np.append(ea.src, graph.num_nodes[key[0]] + 7)
                dst = np.append(ea.dst, 0)
            else:  # dup_edge
                src = np.append(ea.src, ea.src[0])
                dst = np.append(ea.dst, ea.dst[0])
            weight = np.append(ea.weight, 1.0)
            graph.edges[key] = EdgeArray(src, dst, weight)
            graph._topology_version += 1

        return self.add("ingest.graph", lambda ctx: True, action,
                        label=f"poison_graph({mode})")

    def fail_engine(self, times: int = 1,
                    exc_type: type = RuntimeError) -> "FaultInjector":
        """Raise from the first ``times`` calls to ``engine.predict``.

        Simulates a sick serving engine (not a bad request): the fault
        fires *after* the engine's own id-range validation, so the
        degradation chain — breaker trip, cache/prior fallback — is what
        absorbs it.
        """

        def action(ctx: Dict[str, Any]) -> None:
            raise exc_type(
                f"injected engine failure (call #{ctx['count']})"
            )

        return self.add("engine.predict",
                        lambda ctx: ctx["count"] <= times, action,
                        label=f"fail_engine({times})", once=False)

    def slow_engine(self, seconds: float,
                    times: int = 1) -> "FaultInjector":
        """Stall the first ``times`` ``engine.predict`` calls.

        The answer stays correct but late — deadline-violation food for
        :class:`~repro.serve.degrade.ServingRuntime`.
        """

        def action(ctx: Dict[str, Any]) -> None:
            _time.sleep(seconds)

        return self.add("engine.predict",
                        lambda ctx: ctx["count"] <= times, action,
                        label=f"slow_engine({seconds})", once=False)

    # -- elastic-training faults (DESIGN §17) ---------------------------
    def kill_worker(self, shard: int, step: int) -> "FaultInjector":
        """``os._exit`` the training worker for ``shard`` at ``step``.

        Hard process death — no exception, no cleanup, exactly what
        SIGKILL or an OOM kill looks like to the coordinator.  The
        injector is armed in the *coordinator* before it forks workers
        (children inherit the armed stack), but fires only inside the
        worker whose shard matches.

        Per-process ``once`` bookkeeping cannot make this one-shot: the
        replacement worker the coordinator respawns replays the same
        ``(shard, step)`` and inherits a fresh copy of the armed stack,
        so it would die too, forever.  A filesystem token provides the
        cross-process exactly-once: the first worker to claim it (atomic
        ``O_CREAT | O_EXCL``) dies; every later worker sees the claimed
        token and runs through.
        """
        import os as _os
        import tempfile as _tempfile

        fd, token = _tempfile.mkstemp(prefix="repro-kill-worker-")
        _os.close(fd)
        _os.unlink(token)  # the *absence* of the token means "armed"

        def action(ctx: Dict[str, Any]) -> None:
            try:
                claimed = _os.open(token, _os.O_CREAT | _os.O_EXCL
                                   | _os.O_WRONLY)
            except FileExistsError:
                return  # a previous incarnation already died here
            _os.close(claimed)
            _os._exit(17)

        return self.add(
            "fleet.worker.step",
            lambda ctx: ctx["shard"] == shard and ctx["step"] == step,
            action, label=f"kill_worker({shard}, {step})", once=False)

    # -- transport faults (DESIGN §18) ----------------------------------
    @staticmethod
    def _frame_match(method: Optional[str], step: Optional[int],
                     link: Optional[str], direction: Optional[str]
                     ) -> Callable[[Dict[str, Any]], bool]:
        def when(ctx: Dict[str, Any]) -> bool:
            if method is not None and ctx.get("method") != method:
                return False
            if step is not None and ctx.get("step") != step:
                return False
            if link is not None and ctx.get("link") != link:
                return False
            if direction is not None and ctx.get("direction") != direction:
                return False
            return True

        return when

    def drop_frame(self, method: Optional[str] = None, *,
                   step: Optional[int] = None, link: Optional[str] = None,
                   direction: Optional[str] = None,
                   times: int = 1) -> "FaultInjector":
        """Silently discard matching frames crossing a FaultyTransport.

        The receiver simply never sees the message — the sender's
        deadline, not an error, is what surfaces the loss.
        """

        def action(ctx: Dict[str, Any]) -> None:
            ctx["event"].drop = True

        return self.add("fleet.transport.frame",
                        self._and_count(self._frame_match(
                            method, step, link, direction), times),
                        action, label=f"drop_frame({method})", once=False)

    def delay_frame(self, seconds: float, method: Optional[str] = None, *,
                    step: Optional[int] = None, link: Optional[str] = None,
                    direction: Optional[str] = None,
                    times: int = 1) -> "FaultInjector":
        """Hold matching frames for ``seconds`` before forwarding them."""

        def action(ctx: Dict[str, Any]) -> None:
            ctx["event"].delay_s = seconds

        return self.add("fleet.transport.frame",
                        self._and_count(self._frame_match(
                            method, step, link, direction), times),
                        action, label=f"delay_frame({seconds})", once=False)

    def dup_frame(self, method: Optional[str] = None, *,
                  step: Optional[int] = None, link: Optional[str] = None,
                  direction: Optional[str] = None,
                  times: int = 1) -> "FaultInjector":
        """Forward matching frames twice with the same sequence number.

        The receiving decoder rejects the replay (:class:`CodecError`),
        tears the connection down, and the sender reconnects — the
        at-least-once path the RPC layer's dedup exists for.
        """

        def action(ctx: Dict[str, Any]) -> None:
            ctx["event"].duplicate = True

        return self.add("fleet.transport.frame",
                        self._and_count(self._frame_match(
                            method, step, link, direction), times),
                        action, label=f"dup_frame({method})", once=False)

    def partition_at(self, method: Optional[str] = None, *,
                     step: Optional[int] = None, link: Optional[str] = None,
                     direction: Optional[str] = None) -> "FaultInjector":
        """Black-hole the link from the first matching frame onward.

        The matching frame itself is dropped and the proxy's partition
        latch flips: nothing crosses in either direction until the drill
        heals it with ``proxy.set_partitioned(False)``.  This is the
        netsplit primitive — deterministic (keyed on method/step, not
        wall clock), so the drill partitions the exact step it means to.
        """

        def action(ctx: Dict[str, Any]) -> None:
            ctx["event"].partition = True

        return self.add("fleet.transport.frame",
                        self._frame_match(method, step, link, direction),
                        action, label=f"partition_at({method}, {step})")

    @staticmethod
    def _and_count(when: Callable[[Dict[str, Any]], bool],
                   times: int) -> Callable[[Dict[str, Any]], bool]:
        """Limit a stateless matcher to its first ``times`` matches."""
        seen = {"n": 0}

        def bounded(ctx: Dict[str, Any]) -> bool:
            if seen["n"] >= times or not when(ctx):
                return False
            seen["n"] += 1
            return True

        return bounded


def _raiser(message: str) -> Callable[[Dict[str, Any]], None]:
    def action(ctx: Dict[str, Any]) -> None:
        raise CrashInjected(message)

    return action


# ----------------------------------------------------------------------
# One-shot conveniences: ``with faults.nan_in_grad(iter=3): ...``
# ----------------------------------------------------------------------
def crash_at_outer(iter: int) -> FaultInjector:
    return FaultInjector().crash_at_outer(iter)


def crash_at_epoch(epoch: int) -> FaultInjector:
    return FaultInjector().crash_at_epoch(epoch)


def nan_in_grad(iter: int) -> FaultInjector:
    return FaultInjector().nan_in_grad(iter)


def raise_at_op(site: str, n: int,
                exc_type: type = CrashInjected) -> FaultInjector:
    return FaultInjector().raise_at_op(site, n, exc_type)


def truncate_after_write(nbytes: int = 64,
                         match: Optional[str] = None) -> FaultInjector:
    return FaultInjector().truncate_after_write(nbytes, match)


def kill_before_replace(match: Optional[str] = None) -> FaultInjector:
    return FaultInjector().kill_before_replace(match)


def corrupt_record(mode: str = "future_cite",
                   index: Optional[int] = None) -> FaultInjector:
    return FaultInjector().corrupt_record(mode, index)


def poison_graph(mode: str = "dangling") -> FaultInjector:
    return FaultInjector().poison_graph(mode)


def fail_engine(times: int = 1, exc_type: type = RuntimeError) -> FaultInjector:
    return FaultInjector().fail_engine(times, exc_type)


def slow_engine(seconds: float, times: int = 1) -> FaultInjector:
    return FaultInjector().slow_engine(seconds, times)


def kill_worker(shard: int, step: int) -> FaultInjector:
    return FaultInjector().kill_worker(shard, step)


def drop_frame(method: Optional[str] = None, **kw: Any) -> FaultInjector:
    return FaultInjector().drop_frame(method, **kw)


def delay_frame(seconds: float, method: Optional[str] = None,
                **kw: Any) -> FaultInjector:
    return FaultInjector().delay_frame(seconds, method, **kw)


def dup_frame(method: Optional[str] = None, **kw: Any) -> FaultInjector:
    return FaultInjector().dup_frame(method, **kw)


def partition_at(method: Optional[str] = None, **kw: Any) -> FaultInjector:
    return FaultInjector().partition_at(method, **kw)
