"""``python -m repro.resilience.drill`` — prove the recovery paths work.

Runs seeded end-to-end disaster drills on a tiny synthetic world and
reports PASS/FAIL per drill (non-zero exit on any failure):

``resume``       kill CATE-HGN training mid-run (fault injection), resume
                 from the checkpoint directory, assert the final model
                 state and predictions are **bitwise** identical to an
                 uninterrupted run.
``resume-gnn``   the same guarantee for the R-GCN baseline trainer.
``sample-resume`` kill minibatch neighbor-sampled training mid-epoch,
                 resume, assert the sampler replays the exact remaining
                 batch sequence and predictions are **bitwise** identical.
``divergence``   poison one optimization step with NaN gradients, assert
                 the divergence guard rolls back exactly once, backs off
                 the learning rate, and training still completes.
``atomicity``    kill the writer between temp-write and rename, truncate
                 and bit-flip snapshot files, assert loaders either fall
                 back to the previous good snapshot or raise
                 :class:`CheckpointCorruptError` — never half-load.
``quarantine``   poison the ingestion pipeline (future-cite, duplicate
                 and dangling citation edges), assert the ``strict``
                 contract policy rejects the graph, and that training on
                 the ``repair``-validated graph replays the clean run's
                 trajectory, state and predictions **bitwise**.
``degrade``      inject engine failures under a live HTTP server, assert
                 the circuit breaker trips and every request is still
                 answered 200 from the cache/prior fallback chain — zero
                 5xx — and that a shadow-validation-failed hot reload
                 leaves the old engine serving.
``batching``     the same zero-5xx guarantee under the asyncio runtime's
                 cross-request dynamic batching: concurrent bursts, the
                 engine killed mid-run, every coalesced request still
                 answered 200 (degraded, from the prior) and every
                 queued request resolved exactly once — nothing dropped,
                 nothing double-answered.
``race``         inject the classic AB/BA lock inversion plus a
                 lock-held ``time.sleep`` and assert the tsan-lite
                 runtime detector (``repro.analysis.concurrency``)
                 diagnoses both before anything can deadlock.
``fleet``        SIGKILL a serving-fleet replica under 1000-client
                 concurrent load, assert **zero 5xx** and exactly one
                 response per request (failover retries are invisible to
                 clients), the supervisor restarts the replica and
                 re-admits it to the hash ring, and the prediction
                 caches re-warm with bitwise-identical answers.
``worker-death`` kill one elastic-training worker mid-run (hard
                 ``os._exit`` at a chosen shard/step), assert the
                 coordinator reassigns the shard from its last-acked
                 sampler state and the run's remaining batch sequence,
                 trajectory fingerprint, and final parameters are
                 **bitwise** identical to an undisturbed run's.
``netsplit``     partition the coordinator↔worker link mid-step in
                 TCP elastic training (frame-level fault at the exact
                 ``push_result``), assert the worker's lease lapses,
                 its replacement runs at an advanced fence generation,
                 the healed **zombie's stale push is rejected at the
                 fence**, and the trajectory stays **bitwise**
                 identical to an undisturbed shared-memory run.
``router-failover`` kill the active fleet router under 1000-client
                 concurrent load with a warm standby armed, assert the
                 standby takes over the public port with **zero failed
                 requests and zero 5xx**, the ring survives intact,
                 and the promoted router serves bitwise-identical
                 predictions.

These are the same scenarios the test suite pins; the CLI exists so an
operator can re-certify the machinery on their own box in seconds::

    PYTHONPATH=src python -m repro.resilience.drill
    PYTHONPATH=src python -m repro.resilience.drill --only divergence -v
"""

from __future__ import annotations

import argparse
import tempfile
import time
import traceback
import warnings
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from . import faults
from .errors import CheckpointCorruptError, CrashInjected
from .snapshot import SnapshotStore


# ----------------------------------------------------------------------
# Tiny deterministic fixtures (kept small: the whole drill is seconds)
# ----------------------------------------------------------------------
def _tiny_dataset():
    from ..data import TextArtifacts, WorldConfig, generate_world, make_dblp_full

    world = generate_world(WorldConfig(
        num_papers=120, num_authors=50, venues_per_domain=2, seed=11,
        domain_names=("data", "learning", "system"),
    ))
    text = TextArtifacts.fit(world, dim=16)
    return make_dblp_full(world=world, text=text)


def _tiny_estimator():
    from ..core.model import CATEHGNConfig
    from ..core.trainer import CATEHGN

    config = CATEHGNConfig(dim=8, num_layers=2, outer_iters=5, mini_iters=2,
                           center_iters=1, kappa=12, num_clusters=4,
                           patience=10, seed=0)
    return CATEHGN(config)


def _state_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def _check(condition: bool, message: str) -> None:
    """Drill verdict as an explicit raise (lint rule R006: no bare
    ``assert`` in library code — ``-O`` must not silence a drill)."""
    if not condition:
        raise AssertionError(message)


# ----------------------------------------------------------------------
# Drills
# ----------------------------------------------------------------------
def drill_resume(log: Callable[[str], None]) -> None:
    """Kill-and-resume must replay the uninterrupted trajectory bitwise."""
    dataset = _tiny_dataset()

    reference = _tiny_estimator()
    reference.fit(dataset)
    ref_pred = reference.predict()
    ref_state = reference.model.state_dict()
    log(f"reference run: {len(reference.history.train_loss)} "
        f"outer iterations")

    with tempfile.TemporaryDirectory() as tmp:
        victim = _tiny_estimator()
        try:
            with faults.crash_at_outer(3):
                victim.fit(dataset, checkpoint_dir=tmp)
            raise AssertionError("crash fault never fired")
        except CrashInjected:
            log("killed training at outer iteration 3")

        resumed = _tiny_estimator()
        resumed.fit(dataset, checkpoint_dir=tmp, resume=True)
        events = [e for e in resumed.history.events if e["type"] == "resume"]
        log(f"resumed from {events[0]['path']}" if events
            else "no resume event recorded!")
        _check(bool(events), "resume did not record a resume event")
        _check(_state_equal(ref_state, resumed.model.state_dict()),
               "resumed model state differs from the uninterrupted run")
        _check(np.array_equal(ref_pred, resumed.predict()),
               "resumed predictions differ from the uninterrupted run")
    log("state + predictions bitwise identical after resume")


def drill_resume_gnn(log: Callable[[str], None]) -> None:
    """Same kill-and-resume guarantee for the baseline trainer (R-GCN)."""
    from ..baselines import RGCN
    from ..baselines.gnn_common import GNNTrainConfig

    dataset = _tiny_dataset()
    config = GNNTrainConfig(epochs=6, eval_every=1, patience=10, seed=0)

    reference = RGCN(config)
    reference.fit(dataset)
    ref_pred = reference.predict()
    ref_state = reference.network.state_dict()

    with tempfile.TemporaryDirectory() as tmp:
        victim = RGCN(config)
        try:
            with faults.crash_at_epoch(3):
                victim.fit(dataset, checkpoint_dir=tmp)
            raise AssertionError("crash fault never fired")
        except CrashInjected:
            log("killed baseline training at epoch 3")
        resumed = RGCN(config)
        resumed.fit(dataset, checkpoint_dir=tmp, resume=True)
        _check(_state_equal(ref_state, resumed.network.state_dict()),
               "resumed baseline network differs from the uninterrupted run")
        _check(np.array_equal(ref_pred, resumed.predict()),
               "resumed baseline predictions differ")
    log("baseline state + predictions bitwise identical after resume")


def drill_sample_resume(log: Callable[[str], None]) -> None:
    """Kill-and-resume mid-epoch under minibatch neighbor sampling.

    The snapshot must carry the sampler's RNG + cursor state so the
    resumed run replays the *exact remaining batch sequence* — the same
    seed ids in the same order — and lands on bitwise-identical
    predictions.
    """
    from ..data.sampling import MinibatchSampler

    dataset = _tiny_dataset()

    def make_sampler() -> MinibatchSampler:
        return MinibatchSampler(batch_size=32, fanouts=5, replace=False,
                                shuffle=True, seed=0, record_seeds=True)

    reference = _tiny_estimator()
    ref_sampler = make_sampler()
    reference.fit(dataset, sampler=ref_sampler)
    ref_pred = reference.predict()
    ref_seeds = ref_sampler.seed_log
    log(f"reference run: {len(ref_seeds)} sampled minibatches")

    with tempfile.TemporaryDirectory() as tmp:
        victim = _tiny_estimator()
        victim_sampler = make_sampler()
        try:
            with faults.crash_at_outer(3):
                victim.fit(dataset, sampler=victim_sampler,
                           checkpoint_dir=tmp)
            raise AssertionError("crash fault never fired")
        except CrashInjected:
            log(f"killed sampled training after "
                f"{len(victim_sampler.seed_log)} minibatches")

        resumed = _tiny_estimator()
        resumed_sampler = make_sampler()
        resumed.fit(dataset, sampler=resumed_sampler,
                    checkpoint_dir=tmp, resume=True)
        replayed = victim_sampler.seed_log + resumed_sampler.seed_log
        _check(len(replayed) == len(ref_seeds),
               "resumed run sampled a different number of minibatches")
        _check(all(np.array_equal(a, b)
                   for a, b in zip(replayed, ref_seeds)),
               "resumed sampler did not replay the remaining batch "
               "sequence of the uninterrupted run")
        _check(np.array_equal(ref_pred, resumed.predict()),
               "resumed sampled-training predictions differ from the "
               "uninterrupted run")
        log(f"resumed run replayed the remaining "
            f"{len(resumed_sampler.seed_log)} minibatches identically")
    log("sampler state + predictions bitwise identical after resume")


def drill_divergence(log: Callable[[str], None]) -> None:
    """A NaN-poisoned step must trigger exactly one rollback + LR backoff."""
    dataset = _tiny_dataset()
    est = _tiny_estimator()
    originals = [est.config.lr, est.config.center_lr]
    with faults.nan_in_grad(iter=2):
        est.fit(dataset)
    rollbacks = [e for e in est.history.events if e["type"] == "rollback"]
    _check(len(rollbacks) == 1,
           f"expected exactly 1 rollback, got {len(rollbacks)}")
    event = rollbacks[0]
    log(f"rollback at outer {event['step']} (reason: {event['reason']})")
    _check(len(event["lr"]) == len(originals) and all(
        lr < lr0 for lr, lr0 in zip(event["lr"], originals)
    ), f"learning rates not backed off: {event['lr']} vs {originals}")
    _check(len(est.history.train_loss) > 0 and est.model is not None,
           "training did not complete after rollback")
    final = est.predict()
    _check(bool(np.all(np.isfinite(final))),
           "post-rollback predictions not finite")
    log(f"training completed {len(est.history.train_loss)} outer "
        f"iterations with finite predictions")


def drill_atomicity(log: Callable[[str], None]) -> None:
    """Snapshot writes survive kills; corrupt files never half-load."""
    with tempfile.TemporaryDirectory() as tmp:
        store = SnapshotStore(tmp, keep_last=3)
        rng = np.random.default_rng(0)
        for step in range(3):
            store.save(step, {"kind": "drill", "step": step},
                       {"w": rng.normal(size=(4, 3))})
        good = store.load_latest()
        _check(good is not None and good.step == 2,
               "latest snapshot missing before the kill drill")

        # Kill between temp-write and rename: step-2 file must survive.
        try:
            with faults.kill_before_replace():
                store.save(3, {"kind": "drill", "step": 3},
                           {"w": rng.normal(size=(4, 3))})
            raise AssertionError("kill fault never fired")
        except CrashInjected:
            log("writer killed between temp-write and rename, as injected")
        latest = store.load_latest()
        _check(latest is not None and latest.step == 2,
               "kill-before-replace lost the previous good snapshot")
        _check(_state_equal(latest.arrays, good.arrays),
               "surviving snapshot arrays differ from the pre-kill read")
        log("kill between temp-write and rename: previous snapshot intact")

        # Truncate the newest snapshot: loader must fall back to step 1.
        newest = store.path_for(2)
        payload = newest.read_bytes()
        newest.write_bytes(payload[: len(payload) // 2])
        try:
            store.load(2)
            raise AssertionError("truncated snapshot loaded without error")
        except CheckpointCorruptError as exc:
            log(f"truncated load rejected: {exc}")
        with warnings.catch_warnings():
            # load_latest warns as it skips the corrupt file — that is
            # exactly the behaviour under drill, not noise for the operator.
            warnings.simplefilter("ignore", RuntimeWarning)
            fallback = store.load_latest()
        _check(fallback is not None and fallback.step == 1,
               "load_latest did not fall back past the truncated snapshot")
        log("truncated snapshot rejected; fell back to previous good")

        # Bit-flip: checksum verification must catch silent corruption.
        newest.write_bytes(payload)  # restore
        flipped = bytearray(payload)
        flipped[len(flipped) // 2] ^= 0xFF
        newest.write_bytes(bytes(flipped))
        try:
            store.load(2)
            raise AssertionError("bit-flipped snapshot loaded without error")
        except CheckpointCorruptError as exc:
            log(f"bit-flipped load rejected: {exc}")
        log("bit-flipped snapshot rejected by checksum")


def drill_quarantine(log: Callable[[str], None]) -> None:
    """Poisoned ingestion + ``repair`` must replay the clean run bitwise.

    The poison set is append-only on citation edges (a future-cite and a
    duplicate reference at record level, a dangling edge at graph level),
    so quarantine-and-drop restores the clean graph exactly — and the
    repaired training run owes the clean run a **bitwise** trajectory.
    """
    from ..contracts import ContractViolation, validate_graph

    clean = _tiny_dataset()
    reference = _tiny_estimator()
    reference.fit(clean)
    ref_pred = reference.predict()
    ref_state = reference.model.state_dict()
    log(f"clean reference run: {len(reference.history.train_loss)} "
        f"outer iterations")

    injector = (faults.FaultInjector()
                .corrupt_record("future_cite")
                .corrupt_record("dup_cite")
                .poison_graph("dangling"))
    with injector:
        poisoned = _tiny_dataset()
    _check(injector.fired() == 3,
           f"expected 3 ingestion faults to fire, got {injector.fired()}")
    log("poisoned ingestion: future-cite + duplicate + dangling edge")

    try:
        validate_graph(poisoned.graph, policy="strict")
        raise AssertionError("strict policy accepted the poisoned graph")
    except ContractViolation as exc:
        codes = set(exc.report.codes())
        _check({"C002", "C003", "C004"} <= codes,
               f"poison not fully detected: {sorted(codes)}")
        log(f"strict policy rejected the graph: {exc.report.summary()}")

    victim = _tiny_estimator()
    victim.fit(poisoned, validate="repair")
    quarantines = [e for e in victim.history.events
                   if e["type"] == "quarantine"]
    _check(len(quarantines) == 1,
           f"expected 1 quarantine event, got {len(quarantines)}")
    log(f"repair policy quarantined: "
        f"{quarantines[0]['report'].get('repaired', {})}")

    _check(np.array_equal(np.asarray(reference.history.train_loss),
                          np.asarray(victim.history.train_loss)),
           "repaired-run loss trajectory differs from the clean run")
    _check(_state_equal(ref_state, victim.model.state_dict()),
           "repaired-run model state differs from the clean run")
    _check(np.array_equal(ref_pred, victim.predict()),
           "repaired-run predictions differ from the clean run")
    log("trajectory + state + predictions bitwise identical to clean run")


def drill_degrade(log: Callable[[str], None]) -> None:
    """Engine faults under live HTTP: breaker trips, prior answers, no 5xx."""
    import json
    import threading
    import urllib.error
    import urllib.request

    from ..core.trainer import GraphBatch  # noqa: F401 — warm import
    from ..serve import (CircuitBreaker, InferenceEngine, ServingRuntime,
                         make_server, save_catehgn)

    dataset = _tiny_dataset()
    est = _tiny_estimator()
    est.fit(dataset)

    with tempfile.TemporaryDirectory() as tmp:
        path = save_catehgn(est, f"{tmp}/model.npz")
        engine = InferenceEngine.from_checkpoint(path)
        _check(engine.prior is not None,
               "checkpoint did not bake a prior head")
        runtime = ServingRuntime(engine, breaker=CircuitBreaker(
            failure_threshold=2, recovery_seconds=60.0))
        server = make_server(engine, port=0, runtime=runtime)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"

        def call(method: str, endpoint: str, body: Optional[dict] = None):
            data = None if body is None else json.dumps(body).encode()
            req = urllib.request.Request(
                base + endpoint, data=data, method=method,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(req, timeout=10) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        try:
            status, body = call("POST", "/predict", {"paper_ids": [0, 1, 2]})
            _check(status == 200 and body["source"] == "model"
                   and body["degraded"] is False,
                   f"healthy request not served by the model: {body}")
            log("healthy request served from source=model")

            with faults.fail_engine(times=10):
                responses = [call("POST", "/predict", {"paper_ids": [5]})
                             for _ in range(4)]
                responses.append(call("GET", "/predict?ids=0", None))
            statuses = [s for s, _ in responses]
            _check(all(s == 200 for s in statuses),
                   f"expected zero 5xx under engine fault, got {statuses}")
            _check(all(b["degraded"] is True for _, b in responses),
                   "fault-window responses not tagged degraded")
            sources = [b["source"] for _, b in responses]
            _check(all(s == "prior" for s in sources[:4]),
                   f"uncached ids not served by the prior head: {sources}")
            _check(sources[4] == "cache",
                   f"cached id not served from the cache: {sources[4]}")
            log(f"5/5 fault-window requests answered 200 "
                f"(sources: {sources})")

            status, health = call("GET", "/healthz", None)
            _check(status == 200 and health["status"] == "degraded"
                   and health["breaker"] == "open",
                   f"healthz did not report the open breaker: {health}")
            status, metrics = call("GET", "/metrics", None)
            _check(metrics["breaker"]["trips"] >= 1,
                   f"breaker never tripped: {metrics['breaker']}")
            _check(metrics["served"]["prior"] == 4
                   and metrics["served"]["cache"] == 1,
                   f"fallback counters wrong: {metrics['served']}")
            log("breaker open in /healthz; fallback counters in /metrics")

            # Shadow-validation gate: a corrupt candidate must be
            # rejected with 409 and the old engine must keep serving.
            bad = f"{tmp}/bad.npz"
            with open(bad, "wb") as fh:
                fh.write(b"this is not a checkpoint")
            old_engine = runtime.engine
            status, body = call("POST", "/admin/reload", {"path": bad})
            _check(status == 409 and body["reloaded"] is False,
                   f"corrupt reload not rejected: {status} {body}")
            _check(runtime.engine is old_engine,
                   "rejected reload swapped the engine anyway")
            status, body = call("POST", "/predict", {"paper_ids": [0]})
            _check(status == 200,
                   f"old engine stopped serving after rejected reload: "
                   f"{status}")
            log("corrupt reload rejected with 409; old engine kept serving")

            # A good candidate passes all gates and resets the breaker.
            status, body = call("POST", "/admin/reload", {"path": str(path)})
            _check(status == 200 and body["reloaded"] is True
                   and body["golden_checked"] > 0,
                   f"good reload rejected: {status} {body}")
            status, health = call("GET", "/healthz", None)
            _check(health["breaker"] == "closed",
                   f"reload did not reset the breaker: {health}")
            status, body = call("POST", "/predict", {"paper_ids": [7]})
            _check(status == 200 and body["source"] == "model",
                   f"post-reload request not served by the model: {body}")
            log("valid reload passed shadow validation; breaker reset, "
                "source=model again")
        finally:
            server.shutdown()
            server.server_close()


def drill_race(log: Callable[[str], None]) -> None:
    """The tsan-lite detector must trip on a seeded lock inversion.

    Injects the classic AB/BA deadlock (two threads taking two locks in
    opposite orders) and a lock-held ``time.sleep``, and asserts the
    runtime detector (:mod:`repro.analysis.concurrency.runtime`)
    diagnoses both *before* anything can actually hang.
    """
    import threading

    from ..analysis.concurrency import (
        InstrumentedLock,
        LockHeldIOError,
        LockOrderError,
        detect_races,
    )

    # -- seeded AB/BA inversion ----------------------------------------
    with detect_races(patch_factories=False) as detector:
        lock_a = InstrumentedLock(name="drill.A")
        lock_b = InstrumentedLock(name="drill.B")
        with lock_a:
            with lock_b:  # main thread records the order A -> B
                pass
        log("main thread established lock order A -> B")

        caught: List[BaseException] = []

        def inverted() -> None:
            try:
                with lock_b:
                    with lock_a:  # closes the cycle: B -> A
                        pass
            except LockOrderError as exc:
                caught.append(exc)

        worker = threading.Thread(target=inverted)
        worker.start()
        worker.join(timeout=10)
        _check(not worker.is_alive(), "inversion thread hung (deadlock the "
               "detector was supposed to preempt)")
        _check(len(caught) == 1,
               "seeded B -> A inversion was not detected")
        _check(len(detector.violations) == 1,
               f"expected exactly 1 violation, got {detector.violations}")
        log(f"inversion diagnosed before blocking: {caught[0]}")

    # -- seeded lock-held sleep ----------------------------------------
    with detect_races() as detector:  # patched factories: stdlib locks
        lock = threading.Lock()
        try:
            with lock:
                time.sleep(0.001)
            raise AssertionError("lock-held sleep was not detected")
        except LockHeldIOError as exc:
            log(f"lock-held sleep diagnosed: {exc}")
        detector.violations.clear()  # consumed above; window exits clean
    log("race detector drill: both seeded hazards diagnosed")


def drill_batching(log: Callable[[str], None]) -> None:
    """Engine faults under concurrent *batched* load (asyncio runtime).

    The dynamic batcher coalesces concurrent requests into shared
    engine forwards, so one engine failure now threatens a whole batch
    of clients at once.  This drill fires concurrent bursts at the
    asyncio server, kills the engine mid-run (same
    ``engine.predict`` fault site as the ``degrade`` drill), and
    asserts the two invariants that make batching operable:

    * **zero 5xx** — every fault-window request degrades to a 200 via
      the breaker fallback chain (model → cache → prior), exactly as
      unbatched requests would;
    * **exactly one response per request** — nothing queued is dropped
      or double-resolved, which the batcher's ``resolutions`` counter
      and the admission accounting pin from both sides.
    """
    import json
    import threading
    import urllib.error
    import urllib.request

    from ..serve import (BackgroundAsyncServer, BatchSettings,
                         CircuitBreaker, InferenceEngine, ServingRuntime,
                         save_catehgn)

    dataset = _tiny_dataset()
    est = _tiny_estimator()
    est.fit(dataset)

    with tempfile.TemporaryDirectory() as tmp:
        path = save_catehgn(est, f"{tmp}/model.npz")
        engine = InferenceEngine.from_checkpoint(path)
        runtime = ServingRuntime(engine, breaker=CircuitBreaker(
            failure_threshold=2, recovery_seconds=60.0))
        # A generous wait watermark so the concurrent bursts reliably
        # coalesce — the drill is about batched failure, not latency.
        bg = BackgroundAsyncServer(
            engine, runtime=runtime,
            settings=BatchSettings(max_batch_size=64, max_wait_ms=20.0))
        host, port = bg.start()
        base = f"http://{host}:{port}"

        def call(method: str, endpoint: str, body: Optional[dict] = None):
            data = None if body is None else json.dumps(body).encode()
            req = urllib.request.Request(
                base + endpoint, data=data, method=method,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        def burst(threads: int, per_thread: int, id_offset: int):
            """Concurrent predict burst; returns every (status, body)."""
            results: List = []
            results_lock = threading.Lock()
            barrier = threading.Barrier(threads)

            def worker(t: int) -> None:
                barrier.wait(timeout=30)
                for i in range(per_thread):
                    pid = (id_offset + t * per_thread + i) % engine.num_papers
                    out = call("POST", "/predict", {"paper_ids": [pid]})
                    with results_lock:
                        results.append(out)

            pool = [threading.Thread(target=worker, args=(t,))
                    for t in range(threads)]
            for th in pool:
                th.start()
            for th in pool:
                th.join(timeout=60)
            _check(not any(th.is_alive() for th in pool),
                   "burst worker hung — a queued request never got "
                   "its response")
            return results

        try:
            healthy = burst(8, 3, id_offset=0)
            _check(len(healthy) == 24,
                   f"expected 24 healthy responses, got {len(healthy)}")
            _check(all(s == 200 and b["source"] == "model"
                       and b["degraded"] is False for s, b in healthy),
                   "healthy burst not fully served by the model")
            log("healthy burst: 24/24 answered 200 from source=model")

            with faults.fail_engine(times=10):
                faulted = burst(8, 3, id_offset=24)
            statuses = sorted({s for s, _ in faulted})
            _check(len(faulted) == 24,
                   f"expected 24 fault-window responses, got {len(faulted)}")
            _check(statuses == [200],
                   f"expected zero 5xx under engine fault, got {statuses}")
            _check(all(b["degraded"] is True and b["source"] == "prior"
                       for _, b in faulted),
                   "fault-window responses not degraded prior fallbacks")
            log("fault burst: 24/24 answered 200 (degraded, source=prior) "
                "— zero 5xx")

            status, health = call("GET", "/healthz")
            _check(status == 200 and health["breaker"] == "open"
                   and health["status"] == "degraded",
                   f"healthz did not report the open breaker: {health}")

            # Exactly-one-response accounting, from both sides: every
            # admitted request was resolved exactly once, and every
            # resolved future was observed as an HTTP response above.
            status, metrics = call("GET", "/metrics")
            batching = metrics["batching"]
            _check(batching["admitted"] == 48,
                   f"admission accounting off: {batching['admitted']} != 48")
            _check(batching["batched_requests"] == 48,
                   f"batch accounting off: "
                   f"{batching['batched_requests']} != 48")
            _check(bg.app.batcher.resolutions == 48,
                   f"future resolutions off: "
                   f"{bg.app.batcher.resolutions} != 48")
            _check(batching["batches"] < 48,
                   f"concurrent bursts never coalesced: "
                   f"{batching['batches']} batches for 48 requests")
            _check(batching["failed_batches"] == 0,
                   f"batches surfaced failures despite the fallback "
                   f"chain: {batching['failed_batches']}")
            log(f"48 requests → {batching['batches']} batches "
                f"(mean {batching['mean_batch_size']:.1f}), every future "
                f"resolved exactly once")
        finally:
            bg.shutdown()


def drill_fleet(log: Callable[[str], None]) -> None:
    """Replica death under 1000-client load: zero 5xx, exactly-once.

    Boots a 2-replica :class:`~repro.fleet.ServingFleet`, drives 1000
    concurrent keep-alive clients through the consistent-hash router,
    and SIGKILLs one replica mid-load.  Asserts:

    * every scripted request gets **exactly one** response, all 200 —
      the router's failover (retry ring successors on connection
      errors; predictions are idempotent) absorbs the death invisibly;
    * the supervisor restarts the dead replica and re-admits it to the
      ring (visible in ``/fleet/status`` with ``restarts >= 1``);
    * caches re-warm: the same request body answered before the kill
      is answered bitwise-identically after recovery, and the fleet's
      aggregate cache counters show hits again.
    """
    import threading

    from ..fleet import ServingFleet
    from ..fleet.client import predict_scripts, run_load
    from ..fleet.heartbeat import http_json
    from ..serve import save_catehgn

    dataset = _tiny_dataset()
    est = _tiny_estimator()
    est.fit(dataset)
    num_papers = dataset.num_papers

    with tempfile.TemporaryDirectory() as tmp:
        path = save_catehgn(est, f"{tmp}/model.npz")
        fleet = ServingFleet(str(path), 2, probe_interval=0.2)
        host, port = fleet.start()
        try:
            probe_body = {"paper_ids": [3, 1, 4]}
            status, before = http_json(host, port, "POST", "/predict",
                                       probe_body)
            _check(status == 200, f"warmup predict failed: {status}")

            clients, per_client = 1000, 2
            scripts = predict_scripts(clients, per_client, num_papers,
                                      seed=23)
            holder: List = []
            load = threading.Thread(
                target=lambda: holder.append(
                    run_load(host, port, scripts)))
            load.start()
            time.sleep(0.5)  # let the load ramp before pulling a replica
            victim = fleet.supervisor.replica_names()[0]
            pid = fleet.supervisor.kill_replica(victim)
            log(f"killed {victim} (pid {pid}) mid-load")
            load.join(timeout=240)
            _check(not load.is_alive(), "load generator hung")
            result = holder[0]

            total = clients * per_client
            _check(result.failures == 0,
                   f"{result.failures} requests never answered "
                   f"(exactly-once broken on the drop side)")
            _check(len(result.statuses) == total,
                   f"expected {total} responses, got {len(result.statuses)} "
                   f"(exactly-once broken on the duplicate side)")
            _check(result.server_errors() == 0,
                   f"5xx leaked through failover: "
                   f"{sorted(set(result.statuses))}")
            _check(result.count(200) == total,
                   f"non-200 responses: {sorted(set(result.statuses))}")
            log(f"{total}/{total} requests answered 200 through the kill "
                f"window — zero 5xx")

            deadline = time.monotonic() + 60
            healed = False
            while time.monotonic() < deadline:
                status, snap = http_json(host, port, "GET", "/fleet/status")
                rep = snap["replicas"][victim]
                if (status == 200 and rep["alive"] and rep["restarts"] >= 1
                        and victim in snap["ring"]):
                    healed = True
                    break
                time.sleep(0.2)
            _check(healed, f"supervisor never restarted {victim}")
            log(f"supervisor restarted {victim} and re-admitted it "
                f"to the ring")

            status, after = http_json(host, port, "POST", "/predict",
                                      probe_body)
            _check(status == 200 and after == before,
                   "post-recovery predictions differ from pre-kill")
            http_json(host, port, "POST", "/predict", probe_body)
            status, metrics = http_json(host, port, "GET", "/metrics")
            hits = sum(r.get("cache", {}).get("hits", 0)
                       for r in metrics["replicas"].values()
                       if isinstance(r, dict))
            _check(hits > 0, "prediction caches never re-warmed")
            log("caches re-warmed; answers bitwise-identical to pre-kill")
        finally:
            fleet.shutdown()


def drill_worker_death(log: Callable[[str], None]) -> None:
    """Elastic training absorbs a worker kill bitwise.

    Runs the K=2 elastic trainer undisturbed for a reference, then
    reruns it with ``faults.kill_worker(shard=1, step=2)`` — a hard
    ``os._exit`` in the worker process, no cleanup.  The coordinator
    must detect the death, rebuild the shard's sampler from its
    last-acked snapshot state, re-issue the in-flight step, and finish
    with the **bitwise-identical** remaining batch sequence (per-step
    seed hashes), trajectory fingerprint, and final parameters.
    """
    from ..fleet import ElasticTrainer

    dataset = _tiny_dataset()
    config = _tiny_estimator().config

    reference = ElasticTrainer(config, num_workers=2, steps=4).fit(dataset)
    _check(reference.deaths == [],
           f"undisturbed run reported deaths: {reference.deaths}")
    log(f"reference run: fingerprint {reference.fingerprint[:16]}…")

    with faults.kill_worker(shard=1, step=2):
        survived = ElasticTrainer(config, num_workers=2, steps=4).fit(dataset)
    _check(len(survived.deaths) == 1,
           f"expected exactly one worker death, got {survived.deaths}")
    death = survived.deaths[0]
    _check(death["shard"] == 1 and death["step"] == 2,
           f"death recorded at the wrong site: {death}")
    log(f"worker shard={death['shard']} killed at step {death['step']} "
        f"(exit {death['exitcode']}), coordinator respawned it")

    _check(survived.seed_hashes == reference.seed_hashes,
           "remaining batch sequence diverged after reassignment")
    _check(survived.fingerprint == reference.fingerprint,
           f"trajectory fingerprint diverged: {survived.fingerprint[:16]}… "
           f"!= {reference.fingerprint[:16]}…")
    _check(set(survived.state) == set(reference.state)
           and all(np.array_equal(survived.state[k], reference.state[k])
                   for k in reference.state),
           "final parameters are not bitwise-identical")
    _check(survived.losses == reference.losses,
           "per-shard loss trajectory diverged")
    log("killed run matches reference bitwise: batch sequence, "
        "fingerprint, final parameters")


def drill_netsplit(log: Callable[[str], None]) -> None:
    """A mid-step netsplit must fence the zombie and stay bitwise.

    Runs the K=2 elastic trainer over the TCP transport with one
    worker's link routed through a :class:`FaultyTransport` proxy, and
    arms a frame-level partition that black-holes the link at the exact
    ``push_result`` of step 1.  The coordinator must see the lease
    lapse, fence the shard, and respawn it from the last-acked sampler
    state; when the partition heals, the zombie predecessor's stale
    push must be **rejected at the fence** (never reduced); and the
    final trajectory — fingerprint, per-step seed hashes, parameters —
    must be bitwise identical to an undisturbed *shared-memory* run,
    proving cross-transport parity under partition in one stroke.
    """
    import threading

    from ..fleet import ElasticTrainer
    from ..fleet.transport import FaultyTransport

    dataset = _tiny_dataset()
    config = _tiny_estimator().config

    reference = ElasticTrainer(config, num_workers=2, steps=3).fit(dataset)
    _check(reference.transport == "shm" and reference.deaths == [],
           f"undisturbed shm reference not clean: {reference.deaths}")
    log(f"shm reference: fingerprint {reference.fingerprint[:16]}…")

    proxies: Dict[str, FaultyTransport] = {}

    def endpoint_factory(shard: int, gen: int, address):
        # Only the first incarnation of shard 1 rides the faulty link;
        # its fenced replacement dials the coordinator directly.
        if shard == 1 and gen == 0:
            proxy = FaultyTransport(address, link="victim")
            addr = proxy.start()
            proxies["victim"] = proxy
            return addr
        return address

    def healer() -> None:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            proxy = proxies.get("victim")
            if proxy is not None and proxy.partitioned:
                time.sleep(1.5)  # let fencing + respawn land first
                proxy.set_partitioned(False)
                return
            time.sleep(0.05)

    with faults.partition_at("push_result", step=1, link="victim"):
        threading.Thread(target=healer, daemon=True).start()
        result = ElasticTrainer(config, num_workers=2, steps=3,
                                transport="tcp", lease_ttl=1.0,
                                endpoint_factory=endpoint_factory,
                                ).fit(dataset)
    proxies["victim"].stop()

    _check([(d["step"], d["shard"], d["reason"]) for d in result.deaths]
           == [(1, 1, "lease")],
           f"expected one lease death of shard 1 at step 1: "
           f"{result.deaths}")
    log(f"partition at step 1: shard 1 lease lapsed, respawned at "
        f"gen {result.deaths[0]['gen'] + 1}")
    _check(any(r["member"] == "shard-1" and r["stale_gen"] == 0
               for r in result.fenced),
           f"healed zombie was never fenced: {result.fenced}")
    log(f"zombie's stale push rejected at the fence "
        f"({len(result.fenced)} rejection(s))")
    _check(result.fingerprint == reference.fingerprint,
           f"trajectory fingerprint diverged: {result.fingerprint[:16]}… "
           f"!= {reference.fingerprint[:16]}…")
    _check(result.seed_hashes == reference.seed_hashes,
           "remaining batch sequence diverged across the partition")
    _check(set(result.state) == set(reference.state)
           and all(np.array_equal(result.state[k], reference.state[k])
                   for k in reference.state),
           "final parameters are not bitwise-identical")
    log("TCP run under netsplit matches the shm reference bitwise")


def drill_router_failover(log: Callable[[str], None]) -> None:
    """Kill the active router under 1000-client load: zero failures.

    Boots a 2-replica fleet with a warm-standby router mirroring ring
    membership over the transport, drives 1000 concurrent keep-alive
    clients, and kills the active router (public listener + control
    server, no warning) mid-load.  Asserts the standby notices the
    lease lapse, binds the same public port, and that **every scripted
    request is answered 200** — no failures, no 5xx — with the ring
    intact and predictions bitwise-identical through the promoted twin.
    """
    import threading

    from ..fleet import ServingFleet
    from ..fleet.client import predict_scripts, run_load
    from ..fleet.heartbeat import http_json
    from ..serve import save_catehgn

    dataset = _tiny_dataset()
    est = _tiny_estimator()
    est.fit(dataset)
    num_papers = dataset.num_papers

    with tempfile.TemporaryDirectory() as tmp:
        path = save_catehgn(est, f"{tmp}/model.npz")
        fleet = ServingFleet(str(path), 2, probe_interval=0.2,
                             standby=True)
        host, port = fleet.start()
        try:
            probe_body = {"paper_ids": [3, 1, 4]}
            status, before = http_json(host, port, "POST", "/predict",
                                       probe_body)
            _check(status == 200, f"warmup predict failed: {status}")

            clients, per_client = 1000, 2
            scripts = predict_scripts(clients, per_client, num_papers,
                                      seed=29)
            holder: List = []
            load = threading.Thread(
                target=lambda: holder.append(
                    run_load(host, port, scripts)))
            load.start()
            time.sleep(0.5)  # let the load ramp before pulling the router
            fleet.kill_active()
            log("killed the active router (listener + control) mid-load")
            load.join(timeout=240)
            _check(not load.is_alive(), "load generator hung")
            result = holder[0]

            _check(fleet.standby.promoted.wait(10),
                   "standby never promoted")
            log(f"standby took the public port over in "
                f"{fleet.standby.takeover_seconds * 1000:.1f} ms after "
                f"{fleet.standby.syncs} membership syncs")

            total = clients * per_client
            _check(result.failures == 0,
                   f"{result.failures} requests never answered through "
                   f"the takeover window")
            _check(result.server_errors() == 0,
                   f"5xx leaked through the takeover: "
                   f"{sorted(set(result.statuses))}")
            _check(result.count(200) == result.total == total,
                   f"non-200 responses: {sorted(set(result.statuses))}")
            log(f"{total}/{total} requests answered 200 through the "
                f"router kill — zero failures, zero 5xx")

            status, snap = http_json(host, port, "GET", "/fleet/status")
            _check(status == 200
                   and sorted(snap["ring"]) == ["replica-0", "replica-1"],
                   f"ring not intact through takeover: {snap.get('ring')}")
            status, after = http_json(host, port, "POST", "/predict",
                                      probe_body)
            _check(status == 200 and after == before,
                   "post-takeover predictions differ from pre-kill")
            log("ring intact; predictions bitwise-identical through "
                "the promoted router")
        finally:
            fleet.shutdown()


DRILLS: Dict[str, Callable[[Callable[[str], None]], None]] = {
    "resume": drill_resume,
    "resume-gnn": drill_resume_gnn,
    "sample-resume": drill_sample_resume,
    "divergence": drill_divergence,
    "atomicity": drill_atomicity,
    "quarantine": drill_quarantine,
    "degrade": drill_degrade,
    "batching": drill_batching,
    "race": drill_race,
    "fleet": drill_fleet,
    "worker-death": drill_worker_death,
    "netsplit": drill_netsplit,
    "router-failover": drill_router_failover,
}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.drill",
        description="Run seeded disaster drills against the resilience "
                    "machinery (resume, divergence rollback, crash-safe "
                    "writes) and report PASS/FAIL.",
    )
    parser.add_argument("--only", choices=sorted(DRILLS), action="append",
                        help="run only the named drill (repeatable)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-drill progress lines")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names: List[str] = args.only or list(DRILLS)
    failures = 0
    for name in names:
        log = (lambda msg: print(f"    {msg}")) if args.verbose else (
            lambda msg: None)
        start = time.perf_counter()
        print(f"[drill] {name} ...", flush=True)
        try:
            DRILLS[name](log)
        except Exception:  # noqa: BLE001 — a drill failure is the verdict
            failures += 1
            print(f"[drill] {name}: FAIL ({time.perf_counter() - start:.1f}s)")
            traceback.print_exc()
        else:
            print(f"[drill] {name}: PASS ({time.perf_counter() - start:.1f}s)")
    total = len(names)
    print(f"\n{total - failures}/{total} drills passed")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
