"""Trainer-integrated divergence watchdog (DESIGN §12).

The guard watches two signals every optimization step:

- **NaN/Inf** in the loss or the pre-clip global gradient norm (the same
  condition :func:`repro.analysis.detect_anomaly` raises on, caught here
  even with the sanitizer off because the checks are one ``isfinite``
  each);
- **loss explosion** — ``|loss| > explode_factor * max(|ref|, eps)``
  against the last healthy loss, which catches runs that blow up through
  large-but-finite values before they ever reach NaN.

On a trip the trainer raises :class:`DivergenceSignal`; the guard then
**rolls back** to the last good in-memory state (model params, both Adam
states, RNG stream, TE term sets, history), multiplies every managed
optimizer's learning rate by ``lr_backoff``, records the event, and the
trainer retries the same iteration.  ``max_rollbacks`` bounds the retry
budget; exhausting it raises
:class:`~repro.resilience.errors.TrainingDivergedError`.

The guard is deliberately trajectory-neutral: while no anomaly occurs it
only copies state and compares floats, so a guarded run is bitwise
identical to an unguarded one (golden-metrics tests pin this).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from .errors import TrainingDivergedError

__all__ = ["DivergenceSignal", "DivergenceGuard"]


class DivergenceSignal(Exception):
    """Internal control-flow signal: the current step diverged.

    Raised by the trainer's per-step checks and caught by its outer
    loop, which converts it into a rollback.  Never escapes ``fit``.
    """


class DivergenceGuard:
    """Last-good-state watchdog with rollback + LR backoff."""

    def __init__(self, capture: Callable[[], Any],
                 restore: Callable[[Any], None],
                 optimizers: Sequence[Any],
                 max_rollbacks: int = 3,
                 lr_backoff: float = 0.5,
                 explode_factor: float = 1e6) -> None:
        self._capture = capture
        self._restore = restore
        self.optimizers = [opt for opt in optimizers if opt is not None]
        self.max_rollbacks = int(max_rollbacks)
        self.lr_backoff = float(lr_backoff)
        self.explode_factor = float(explode_factor)
        self.rollbacks = 0
        self._good: Optional[Any] = None
        self._good_step: Optional[int] = None
        self._ref_loss: Optional[float] = None

    # ------------------------------------------------------------------
    def record_good(self, step: int) -> None:
        """Capture the current state as the rollback target."""
        self._good = self._capture()
        self._good_step = step

    def check_step(self, loss: float,
                   grad_norm: Optional[float] = None) -> None:
        """Raise :class:`DivergenceSignal` if this step looks diverged."""
        if not np.isfinite(loss):
            raise DivergenceSignal(f"non-finite training loss ({loss!r})")
        if grad_norm is not None and not np.isfinite(grad_norm):
            raise DivergenceSignal(
                f"non-finite gradient norm ({grad_norm!r})"
            )
        if self._ref_loss is not None:
            ceiling = self.explode_factor * max(abs(self._ref_loss), 1e-8)
            if abs(loss) > ceiling:
                raise DivergenceSignal(
                    f"loss explosion: |{loss:.6g}| > {self.explode_factor:g}"
                    f" * |last good {self._ref_loss:.6g}|"
                )
        self._ref_loss = float(loss)

    # ------------------------------------------------------------------
    def rollback(self, step: int, reason: str) -> Dict[str, Any]:
        """Restore last good state, back off LR; returns the event record.

        Raises :class:`TrainingDivergedError` once the budget is spent or
        when no good state was ever captured.
        """
        self.rollbacks += 1
        if self.rollbacks > self.max_rollbacks:
            raise TrainingDivergedError(
                f"divergence at step {step} ({reason}) after exhausting "
                f"the rollback budget of {self.max_rollbacks}; the run is "
                f"unrecoverable under the current configuration"
            )
        if self._good is None:
            raise TrainingDivergedError(
                f"divergence at step {step} ({reason}) before any good "
                f"state existed to roll back to"
            )
        self._restore(self._good)
        for opt in self.optimizers:
            opt.lr *= self.lr_backoff
        event = {
            "type": "rollback",
            "step": int(step),
            "resumed_from": int(self._good_step),
            "reason": reason,
            "rollback_index": self.rollbacks,
            "lr": [float(opt.lr) for opt in self.optimizers],
        }
        return event

    # ------------------------------------------------------------------
    def adopt_history(self, events: List[Dict[str, Any]]) -> None:
        """Resume bookkeeping from a restored event log.

        Counting past rollbacks keeps the budget global across resumes
        instead of resetting every time a run restarts from disk.
        """
        self.rollbacks = sum(1 for e in events if e.get("type") == "rollback")
