"""Checksummed, crash-safe training snapshots with keep-last-K retention.

A :class:`SnapshotStore` manages ``snap-NNNNNN.npz`` files inside one
checkpoint directory.  Each snapshot is a single ``.npz`` holding

- ``__snapshot__``: a 0-d unicode array with the JSON metadata blob
  (``format_version``, ``step``, ``content_sha256`` over every other
  array, plus whatever the trainer packs in: RNG state, history, term
  sets, optimizer scalars, ...);
- every other entry: one numpy array (model params, Adam moments, ...),
  namespaced by the caller (``model/…``, ``opt_main/m/0000``, ...).

Writes go through :func:`repro.resilience.atomic.atomic_write_bytes`
(temp file + fsync + ``os.replace``), so a crash mid-write never damages
an existing snapshot.  Loads verify the content checksum and reject
truncated archives with :class:`CheckpointCorruptError`;
:meth:`SnapshotStore.load_latest` walks backwards past corrupt snapshots
to the newest *good* one — the "never half-load" contract.

Retention: ``keep_last`` bounds the directory; older snapshots are
pruned after every successful write (newest-first survivorship).
"""

from __future__ import annotations

import io
import json
import re
import warnings
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from .atomic import atomic_write_bytes, content_digest
from .errors import CheckpointCorruptError

__all__ = ["SNAPSHOT_FORMAT_VERSION", "Snapshot", "SnapshotStore",
           "pack_namespace", "unpack_namespace"]

#: On-disk snapshot format version; unknown versions are rejected.
SNAPSHOT_FORMAT_VERSION = 1

_META_KEY = "__snapshot__"
_NAME_RE = re.compile(r"^snap-(\d{6,})\.npz$")


def pack_namespace(arrays: Dict[str, np.ndarray], prefix: str,
                   items: Mapping[str, np.ndarray]) -> None:
    """Merge ``items`` into ``arrays`` under ``prefix/``."""
    for name, value in items.items():
        arrays[f"{prefix}/{name}"] = np.asarray(value)


def unpack_namespace(arrays: Mapping[str, np.ndarray],
                     prefix: str) -> Dict[str, np.ndarray]:
    """Extract the ``prefix/`` namespace of ``arrays`` (prefix stripped)."""
    head = prefix + "/"
    return {name[len(head):]: value for name, value in arrays.items()
            if name.startswith(head)}


@dataclass
class Snapshot:
    """One loaded, checksum-verified training snapshot."""

    step: int
    meta: Dict[str, Any]
    arrays: Dict[str, np.ndarray]
    path: Path


class SnapshotStore:
    """Atomic, checksummed, pruned snapshot files under one directory."""

    def __init__(self, directory: Union[str, Path],
                 keep_last: int = 3) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = int(keep_last)

    # ------------------------------------------------------------------
    def path_for(self, step: int) -> Path:
        return self.directory / f"snap-{step:06d}.npz"

    def steps(self) -> List[int]:
        """Steps with a snapshot file on disk, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _NAME_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # ------------------------------------------------------------------
    def save(self, step: int, meta: Dict[str, Any],
             arrays: Mapping[str, np.ndarray]) -> Path:
        """Durably write one snapshot and prune beyond ``keep_last``."""
        arrays = {name: np.asarray(value) for name, value in arrays.items()}
        if _META_KEY in arrays:
            raise ValueError(f"array name {_META_KEY!r} is reserved")
        meta = dict(meta)
        meta["format_version"] = SNAPSHOT_FORMAT_VERSION
        meta["step"] = int(step)
        meta["content_sha256"] = content_digest(arrays)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **{_META_KEY: np.array(json.dumps(meta))},
                            **arrays)
        path = atomic_write_bytes(self.path_for(step), buffer.getvalue())
        self.prune()
        return path

    def prune(self) -> None:
        """Drop the oldest snapshots beyond ``keep_last``."""
        for step in self.steps()[:-self.keep_last]:
            self.path_for(step).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def load(self, step: int) -> Snapshot:
        """Load + verify one snapshot; raises CheckpointCorruptError."""
        path = self.path_for(step)
        try:
            with np.load(path, allow_pickle=False) as payload:
                if _META_KEY not in payload:
                    raise CheckpointCorruptError(
                        f"{path} is not a training snapshot (missing "
                        f"{_META_KEY!r} metadata entry)"
                    )
                raw_meta = str(payload[_META_KEY][()])
                arrays = {name: payload[name] for name in payload.files
                          if name != _META_KEY}
        except FileNotFoundError:
            raise
        except (zipfile.BadZipFile, zlib.error, EOFError, OSError,
                ValueError, KeyError) as exc:
            raise CheckpointCorruptError(
                f"snapshot {path} is truncated or corrupt ({exc}); delete "
                f"it or resume from an earlier snapshot"
            ) from exc
        try:
            meta = json.loads(raw_meta)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptError(
                f"snapshot {path} carries an unreadable metadata blob: {exc}"
            ) from exc
        version = meta.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"snapshot {path} has format_version {version!r}; this "
                f"build reads version {SNAPSHOT_FORMAT_VERSION}"
            )
        digest = content_digest(arrays)
        if digest != meta.get("content_sha256"):
            raise CheckpointCorruptError(
                f"snapshot {path} failed its content checksum "
                f"(expected {meta.get('content_sha256')!r}, computed "
                f"{digest!r}); the file is corrupt — resume from an "
                f"earlier snapshot"
            )
        return Snapshot(step=int(meta["step"]), meta=meta, arrays=arrays,
                        path=path)

    def load_latest(self) -> Optional[Snapshot]:
        """Newest *verified* snapshot, skipping corrupt ones (or None)."""
        for step in reversed(self.steps()):
            try:
                return self.load(step)
            except CheckpointCorruptError as exc:
                warnings.warn(
                    f"skipping corrupt snapshot at step {step}: {exc}",
                    RuntimeWarning, stacklevel=2,
                )
        return None
