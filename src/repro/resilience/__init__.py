"""Fault tolerance for training and serving (DESIGN §12).

- :mod:`repro.resilience.atomic` — crash-safe writes (temp + fsync +
  ``os.replace``) and content checksums; every durable write in the repo
  goes through here.
- :mod:`repro.resilience.snapshot` — checksummed training snapshots with
  keep-last-K retention and corrupt-file fallback.
- :mod:`repro.resilience.guard` — divergence watchdog: NaN/Inf +
  loss-explosion detection, last-good rollback, LR backoff.
- :mod:`repro.resilience.faults` — seeded fault injection (crash at
  iteration N, NaN in gradients, truncated writes, kill mid-replace)
  used by the test suite and ``python -m repro.resilience.drill`` to
  prove the recovery paths actually work.

High-level entry points live on the estimators:
``CATEHGN.fit(dataset, checkpoint_dir=..., resume=True)`` and the same
keywords on every :class:`repro.baselines.gnn_common.SupervisedGNNBaseline`.
"""

from . import faults
from .atomic import (
    atomic_write_bytes,
    atomic_write_text,
    content_digest,
    file_sha256,
    fsync_directory,
)
from .errors import (
    CheckpointCorruptError,
    CrashInjected,
    ResilienceError,
    TrainingDivergedError,
)
from .guard import DivergenceGuard, DivergenceSignal
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    Snapshot,
    SnapshotStore,
    pack_namespace,
    unpack_namespace,
)

__all__ = [
    "faults",
    "atomic_write_bytes",
    "atomic_write_text",
    "content_digest",
    "file_sha256",
    "fsync_directory",
    "CheckpointCorruptError",
    "CrashInjected",
    "ResilienceError",
    "TrainingDivergedError",
    "DivergenceGuard",
    "DivergenceSignal",
    "SNAPSHOT_FORMAT_VERSION",
    "Snapshot",
    "SnapshotStore",
    "pack_namespace",
    "unpack_namespace",
]
