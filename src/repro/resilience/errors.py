"""Exception types for the fault-tolerance layer (DESIGN §12)."""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class for resilience-layer failures."""


class CheckpointCorruptError(ResilienceError):
    """On-disk state (checkpoint / snapshot / graph) failed validation.

    Raised for truncated archives, checksum mismatches, and structurally
    broken files.  Callers that keep multiple snapshots should fall back
    to the previous good one (:meth:`SnapshotStore.load_latest` does this
    automatically); callers with a single file should surface the message,
    which always names the offending path and what failed.
    """


class TrainingDivergedError(ResilienceError):
    """The divergence guard exhausted its rollback budget.

    Training hit NaN/Inf or a loss explosion repeatedly even after
    rolling back to the last good state and backing off the learning
    rate ``max_rollbacks`` times; the run is unrecoverable under the
    current configuration.  The event log (``TrainHistory.events``)
    records every rollback attempt leading up to this error.
    """


class CrashInjected(RuntimeError):
    """A deliberately injected crash (``repro.resilience.faults``).

    Deliberately *not* a :class:`ResilienceError`: fault drills must
    verify that recovery paths handle arbitrary failures, so the injected
    exception should never be caught by resilience machinery itself.
    """
