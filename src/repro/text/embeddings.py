"""Corpus-derived word embeddings ("pre-trained" stand-in).

The paper uses aggregated pre-trained word embeddings as node features.
With no network access we fit our own on the corpus itself: truncated SVD of
the PPMI co-occurrence matrix, the classical count-based construction that
word2vec implicitly performs (Levy & Goldberg 2014).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from .cooccurrence import cooccurrence_counts, ppmi
from .vocabulary import Vocabulary


class WordEmbeddings:
    """Dense word vectors with document aggregation helpers."""

    def __init__(self, vocabulary: Vocabulary, vectors: np.ndarray) -> None:
        if vectors.shape[0] != len(vocabulary):
            raise ValueError("vector rows must match vocabulary size")
        self.vocabulary = vocabulary
        self.vectors = vectors

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def vector(self, token: str) -> np.ndarray:
        return self.vectors[self.vocabulary.id(token)]

    def embed_tokens(self, tokens: Iterable[str]) -> np.ndarray:
        """Mean vector of the known tokens; zero vector when none known."""
        ids = [self.vocabulary.get(t) for t in tokens]
        ids = [i for i in ids if i >= 0]
        if not ids:
            return np.zeros(self.dim)
        mean = self.vectors[ids].mean(axis=0)
        norm = np.linalg.norm(mean)
        return mean / norm if norm > 0 else mean

    def embed_documents(self, documents: Sequence[Sequence[str]]) -> np.ndarray:
        return np.stack([self.embed_tokens(doc) for doc in documents])

    @classmethod
    def fit(
        cls,
        documents: Sequence[Sequence[int]],
        vocabulary: Vocabulary,
        dim: int = 32,
        window: int = 8,
        seed: int = 0,
    ) -> "WordEmbeddings":
        """Fit SVD-of-PPMI embeddings on tokenized (id-encoded) documents."""
        vocab_size = len(vocabulary)
        counts = cooccurrence_counts(documents, vocab_size, window=window)
        matrix = ppmi(counts)
        k = min(dim, vocab_size - 1)
        if k < 1 or matrix.nnz == 0:
            vectors = np.zeros((vocab_size, dim))
            return cls(vocabulary, vectors)
        # Deterministic start vector keeps embeddings reproducible.
        rng = np.random.default_rng(seed)
        v0 = rng.normal(size=min(matrix.shape))
        u, s, _ = svds(matrix.astype(np.float64), k=k, v0=v0)
        # svds returns ascending singular values; flip to descending.
        order = np.argsort(s)[::-1]
        u, s = u[:, order], s[order]
        vectors = u * np.sqrt(s)
        if vectors.shape[1] < dim:
            pad = np.zeros((vocab_size, dim - vectors.shape[1]))
            vectors = np.hstack([vectors, pad])
        return cls(vocabulary, vectors)
