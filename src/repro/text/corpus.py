"""Document corpus container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .vocabulary import Vocabulary, tokenize


@dataclass
class Corpus:
    """A list of tokenized documents with a shared vocabulary.

    In the publication setting each document is the raw textual content of a
    paper (title + abstract terms); ``keywords`` optionally carries the
    noisy author-specified keyword lists the paper contrasts against mined
    quality terms.
    """

    documents: List[List[str]]
    vocabulary: Vocabulary
    keywords: Optional[List[List[str]]] = None

    def __len__(self) -> int:
        return len(self.documents)

    def encoded(self) -> List[List[int]]:
        """Documents as token-id lists (unknown tokens dropped)."""
        return [self.vocabulary.encode(doc) for doc in self.documents]

    @classmethod
    def from_texts(cls, texts: Sequence[str], min_count: int = 1) -> "Corpus":
        documents = [tokenize(t) for t in texts]
        vocabulary = Vocabulary.from_documents(documents, min_count=min_count)
        return cls(documents=documents, vocabulary=vocabulary)
