"""TF-IDF scoring and paper-term link construction (Eq. 24).

The TE module connects papers to terms with weight

    ω(e) = (f(u, v) / Σ_{u'} f(u', v)) · log(N_papers / n(u)),

i.e. normalized term frequency times inverse document frequency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def document_frequencies(documents: Sequence[Sequence[int]],
                         vocab_size: int) -> np.ndarray:
    """n(u): number of documents containing each token id."""
    df = np.zeros(vocab_size, dtype=np.float64)
    for doc in documents:
        for token in set(doc):
            df[token] += 1
    return df


def tfidf_matrix_entries(
    documents: Sequence[Sequence[int]],
    vocab_size: int,
    restrict_to: Sequence[int] | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All (doc, token, tfidf) entries, optionally restricted to a token set.

    Implements Eq. (24) exactly: tf is normalized by the document's total
    token count, idf uses the raw document count n(u).  Tokens appearing in
    every document get idf = 0 and are dropped (zero-weight links carry no
    information).
    """
    df = document_frequencies(documents, vocab_size)
    num_docs = len(documents)
    keep = None
    if restrict_to is not None:
        keep = np.zeros(vocab_size, dtype=bool)
        keep[np.asarray(list(restrict_to), dtype=np.intp)] = True

    doc_ids: List[int] = []
    token_ids: List[int] = []
    weights: List[float] = []
    for doc_id, doc in enumerate(documents):
        if not doc:
            continue
        total = len(doc)
        counts: Dict[int, int] = {}
        for token in doc:
            counts[token] = counts.get(token, 0) + 1
        for token, count in counts.items():
            if keep is not None and not keep[token]:
                continue
            idf = np.log(num_docs / df[token]) if df[token] > 0 else 0.0
            weight = (count / total) * idf
            if weight > 0:
                doc_ids.append(doc_id)
                token_ids.append(token)
                weights.append(weight)
    return (np.array(doc_ids, dtype=np.intp),
            np.array(token_ids, dtype=np.intp),
            np.array(weights, dtype=np.float64))
