"""Token vocabulary and tokenizer."""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional

_TOKEN_RE = re.compile(r"[a-z][a-z0-9_\-]*")


def tokenize(text: str) -> List[str]:
    """Lowercase and split into alphanumeric tokens."""
    return _TOKEN_RE.findall(text.lower())


class Vocabulary:
    """Bidirectional token <-> id mapping."""

    def __init__(self, tokens: Optional[Iterable[str]] = None) -> None:
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        if tokens is not None:
            for token in tokens:
                self.add(token)

    def add(self, token: str) -> int:
        """Add ``token`` (idempotent); return its id."""
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    def id(self, token: str) -> int:
        return self._token_to_id[token]

    def get(self, token: str, default: int = -1) -> int:
        return self._token_to_id.get(token, default)

    def token(self, index: int) -> str:
        return self._id_to_token[index]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self):
        return iter(self._id_to_token)

    def encode(self, tokens: Iterable[str], skip_unknown: bool = True) -> List[int]:
        if skip_unknown:
            return [self._token_to_id[t] for t in tokens if t in self._token_to_id]
        return [self.add(t) for t in tokens]

    @classmethod
    def from_documents(cls, documents: Iterable[Iterable[str]],
                       min_count: int = 1) -> "Vocabulary":
        counts: Dict[str, int] = {}
        for doc in documents:
            for token in doc:
                counts[token] = counts.get(token, 0) + 1
        vocab = cls()
        for token in sorted(counts):
            if counts[token] >= min_count:
                vocab.add(token)
        return vocab
