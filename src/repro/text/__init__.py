"""Text substrate: corpus, TF-IDF, PPMI embeddings, distributional MLM."""

from .cooccurrence import cooccurrence_counts, ppmi
from .corpus import Corpus
from .embeddings import WordEmbeddings
from .mlm import DistributionalMLM
from .tfidf import document_frequencies, tfidf_matrix_entries
from .vocabulary import Vocabulary, tokenize

__all__ = [
    "Vocabulary",
    "tokenize",
    "Corpus",
    "WordEmbeddings",
    "DistributionalMLM",
    "cooccurrence_counts",
    "ppmi",
    "document_frequencies",
    "tfidf_matrix_entries",
]
