"""Distributional masked language model — the pre-trained-BERT stand-in.

The TE module (Section III-E1) uses BERT's masked-LM head only as a black
box: mask each occurrence of a research-domain name and read the probability
``p(u | z)`` of every vocabulary term filling the slot (Eq. 23), then keep
the top-κ terms.  A term fills the same slots as "data mining" precisely
when it is *distributionally similar* to it, so we reproduce the oracle with
corpus statistics: the masked-slot distribution for a word w is the softmax
over its PPMI co-occurrence profile blended with the distributional cosine
similarity of full PPMI rows.  The public API matches what the TE module
needs from BERT and nothing more.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy import sparse

from .cooccurrence import cooccurrence_counts, ppmi
from .vocabulary import Vocabulary


class DistributionalMLM:
    """Masked-slot term distribution from corpus co-occurrence statistics."""

    def __init__(self, vocabulary: Vocabulary, ppmi_matrix: sparse.csr_matrix,
                 temperature: float = 1.0) -> None:
        self.vocabulary = vocabulary
        self.ppmi = ppmi_matrix
        self.temperature = temperature
        # Row norms for cosine similarity of distributional profiles.
        norms = np.sqrt(np.asarray(self.ppmi.multiply(self.ppmi).sum(axis=1)).ravel())
        self._row_norms = np.maximum(norms, 1e-12)

    @classmethod
    def fit(cls, documents: Sequence[Sequence[int]], vocabulary: Vocabulary,
            window: int = 8, temperature: float = 1.0) -> "DistributionalMLM":
        counts = cooccurrence_counts(documents, len(vocabulary), window=window)
        return cls(vocabulary, ppmi(counts), temperature=temperature)

    # ------------------------------------------------------------------
    def _scores(self, token_id: int) -> np.ndarray:
        """Unnormalized slot-fill scores for masking occurrences of a token.

        Combines first-order association (the PPMI row: words seen next to
        w) with second-order similarity (cosine between PPMI profiles: words
        used in the same contexts as w).  Second-order similarity is what
        lets the model surface synonyms that rarely co-occur with w itself,
        mirroring BERT's behaviour on masked slots.
        """
        row = np.asarray(self.ppmi[token_id].todense()).ravel()
        profile = self.ppmi[token_id]
        # cosine(w, u) over sparse rows.
        dots = np.asarray(self.ppmi @ profile.T.todense()).ravel()
        cosine = dots / (self._row_norms * self._row_norms[token_id])
        scores = row / max(row.max(), 1e-12) + cosine
        scores[token_id] = 0.0  # a word does not predict itself
        return scores

    def mask_distribution(self, token: str) -> np.ndarray:
        """p(u | z) over the vocabulary for masked occurrences of ``token``.

        Softmax of the slot-fill scores (Eq. 23's final softmax).
        """
        token_id = self.vocabulary.get(token)
        if token_id < 0:
            return np.full(len(self.vocabulary), 1.0 / len(self.vocabulary))
        scores = self._scores(token_id) / self.temperature
        scores -= scores.max()
        exp = np.exp(scores)
        return exp / exp.sum()

    def top_terms(self, token: str, k: int) -> List[Tuple[str, float]]:
        """Top-``k`` (term, probability) pairs for the masked slot of ``token``.

        The hard-threshold-κ bootstrap of Section III-E1.
        """
        dist = self.mask_distribution(token)
        k = min(k, len(dist))
        top = np.argpartition(-dist, k - 1)[:k]
        top = top[np.argsort(-dist[top])]
        return [(self.vocabulary.token(int(i)), float(dist[i])) for i in top]
