"""Windowed co-occurrence statistics and PPMI weighting.

The positive pointwise mutual information (PPMI) matrix is the shared
backbone of two substitutions documented in DESIGN.md:

- :mod:`repro.text.embeddings` factorizes it with truncated SVD to obtain
  "pre-trained" word vectors (word2vec/GloVe are implicit factorizations of
  exactly this matrix — Levy & Goldberg 2014);
- :mod:`repro.text.mlm` reads its rows as the masked-slot distribution of a
  distributional language model (the BERT MLM stand-in).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse


def cooccurrence_counts(
    documents: Sequence[Sequence[int]],
    vocab_size: int,
    window: int = 8,
) -> sparse.csr_matrix:
    """Symmetric windowed co-occurrence counts.

    Paper titles are short, so the default window effectively counts all
    within-document pairs.
    """
    rows: list[int] = []
    cols: list[int] = []
    for doc in documents:
        n = len(doc)
        for i in range(n):
            hi = min(n, i + 1 + window)
            for j in range(i + 1, hi):
                rows.append(doc[i])
                cols.append(doc[j])
                rows.append(doc[j])
                cols.append(doc[i])
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sparse.coo_matrix(
        (data, (rows, cols)), shape=(vocab_size, vocab_size)
    )
    return matrix.tocsr()


def ppmi(counts: sparse.csr_matrix, shift: float = 0.0) -> sparse.csr_matrix:
    """Positive PMI: max(0, log(p(i,j) / (p(i) p(j))) - shift)."""
    counts = counts.tocoo()
    total = counts.data.sum()
    if total == 0:
        return sparse.csr_matrix(counts.shape)
    row_sums = np.asarray(counts.tocsr().sum(axis=1)).ravel()
    col_sums = np.asarray(counts.tocsr().sum(axis=0)).ravel()
    # PMI over the nonzero entries only (zero counts have PMI -inf -> 0).
    p_joint = counts.data / total
    p_row = row_sums[counts.row] / total
    p_col = col_sums[counts.col] / total
    pmi = np.log(p_joint / (p_row * p_col)) - shift
    positive = pmi > 0
    matrix = sparse.coo_matrix(
        (pmi[positive], (counts.row[positive], counts.col[positive])),
        shape=counts.shape,
    )
    return matrix.tocsr()
