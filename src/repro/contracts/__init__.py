"""Data contracts: validation, quarantine, and repair (DESIGN §13).

The paper's pipeline assumes clean DBLP inputs; real bibliographic dumps
contain dangling references, duplicate records, citations "into the
future" (metadata errors), and NaN features.  This package makes the
assumptions explicit: a catalogue of invariants (:mod:`.validators`,
codes ``C001``–``C012``), machine-readable reports (:mod:`.report`), a
deterministic order-preserving repair pass (:mod:`.repair`), and a
three-policy enforcement front door:

``strict``
    raise :class:`ContractViolation` carrying the full report;
``repair``
    rebuild the graph/batch with offenders dropped/clipped into a
    quarantine report — and **return the input object unchanged when it
    is already clean**, so enabling validation on clean data is
    trajectory-neutral (pinned by ``test_golden_metrics.py``);
``warn``
    emit one :class:`ContractWarning` per pass and continue.

Entry points::

    from repro.contracts import validate_graph, validate_batch

    graph, report = validate_graph(graph, policy="repair")
    batch, report = validate_batch(batch, policy="strict")

The ``repro-validate`` CLI (``python -m repro.contracts``) applies the
same checks to saved graph sidecars and serve checkpoints.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

from .report import ContractViolation, Finding, ValidationReport
from .validators import check_batch, check_graph

__all__ = [
    "POLICIES",
    "ContractViolation",
    "ContractWarning",
    "Finding",
    "ValidationReport",
    "check_batch",
    "check_graph",
    "validate_batch",
    "validate_graph",
]

POLICIES = ("strict", "repair", "warn")


class ContractWarning(UserWarning):
    """Emitted by the ``warn`` policy for each failing validation pass."""


def _check_policy(policy: str) -> None:
    if policy not in POLICIES:
        raise ValueError(
            f"unknown validation policy {policy!r}; expected one of {POLICIES}"
        )


def validate_graph(graph, policy: str = "strict", *,
                   year_attr: str = "year",
                   subject: Optional[str] = None
                   ) -> Tuple[object, ValidationReport]:
    """Check ``graph`` and enforce ``policy``.

    Returns ``(graph, report)``.  The returned graph **is the input
    object** unless ``policy="repair"`` found error findings, in which
    case it is a rebuilt :class:`~repro.hetnet.graph.HeteroGraph`.
    """
    _check_policy(policy)
    report = check_graph(graph, year_attr=year_attr)
    if subject:
        report.subject = subject
    if not report.has_errors:
        return graph, report
    if policy == "strict":
        raise ContractViolation(report)
    if policy == "warn":
        warnings.warn(report.summary(), ContractWarning, stacklevel=2)
        return graph, report
    from .repair import repair_graph

    fixed = repair_graph(graph, report, year_attr=year_attr)
    _assert_repaired(check_graph(fixed, year_attr=year_attr))
    return fixed, report


def validate_batch(batch, policy: str = "strict", *,
                   subject: Optional[str] = None
                   ) -> Tuple[object, ValidationReport]:
    """Check a :class:`~repro.core.hgn.GraphBatch` and enforce ``policy``.

    Same contract as :func:`validate_graph`: identity return on clean
    input, rebuilt batch only under ``repair`` with error findings.
    """
    _check_policy(policy)
    report = check_batch(batch)
    if subject:
        report.subject = subject
    if not report.has_errors:
        return batch, report
    if policy == "strict":
        raise ContractViolation(report)
    if policy == "warn":
        warnings.warn(report.summary(), ContractWarning, stacklevel=2)
        return batch, report
    from .repair import repair_batch

    fixed = repair_batch(batch, report)
    _assert_repaired(check_batch(fixed))
    return fixed, report


def _assert_repaired(recheck: ValidationReport) -> None:
    """Repair must converge in one pass; anything else is a repro bug."""
    if recheck.has_errors:  # pragma: no cover - defensive
        raise ContractViolation(
            recheck, "repair did not converge: " + recheck.summary()
        )
