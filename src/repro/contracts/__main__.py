"""``repro-validate`` — contract-check saved graphs and checkpoints.

Usage::

    PYTHONPATH=src python -m repro.contracts artifacts/dblp_graph
    PYTHONPATH=src python -m repro.contracts model.npz --json
    PYTHONPATH=src python -m repro.contracts dump --policy repair \
        --output dump_clean

Accepts either artifact family this repo writes:

- a **graph export** (``<base>.npz`` + ``<base>.json`` sidecar pair from
  :func:`repro.data.save_graph`);
- a **serve checkpoint** (single ``.npz`` carrying the ``__checkpoint__``
  metadata entry from :func:`repro.serve.save_checkpoint`); CATE-HGN
  checkpoints have their graph sidecar validated, baseline checkpoints
  carry no graph and only get the container integrity check.

Exit status: ``0`` — clean (or fully repaired under ``--policy repair``),
``1`` — contract violations found (and, under ``repair``, not fully
repairable), ``2`` — the artifact could not be read at all (missing,
truncated, checksum mismatch).
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import Optional, Sequence, Tuple

from . import POLICIES, ValidationReport, check_graph, validate_graph


def _load_graph_permissive(base: Path):
    """Read a save_graph export without content enforcement.

    Container-level integrity (checksums, truncation) still raises —
    a file we cannot parse cannot be validated, only rejected.
    """
    from ..data.io import load_graph

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the report replaces the warning
        return load_graph(base, policy="warn")


def _resolve(path: Path) -> Tuple[str, Path]:
    """Classify ``path`` as a graph export or a serve checkpoint."""
    base = path.with_suffix("") if path.suffix in (".npz", ".json") else path
    npz = base.with_suffix(".npz")
    if not npz.exists():
        raise FileNotFoundError(f"no such artifact: {npz}")
    if base.with_suffix(".json").exists():
        return "graph", base
    import numpy as np

    with np.load(npz, allow_pickle=False) as arrays:
        if "__checkpoint__" in arrays:
            return "checkpoint", base
    raise ValueError(
        f"{npz} is neither a graph export (missing the "
        f"{base.with_suffix('.json').name} sidecar) nor a serve "
        f"checkpoint (missing the __checkpoint__ entry)"
    )


def _emit(report: ValidationReport, as_json: bool, extra: dict) -> None:
    if as_json:
        payload = report.to_dict()
        payload.update(extra)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for key, value in extra.items():
            print(f"{key}: {value}")
        print(report.render())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Contract-check a saved graph export or serve "
                    "checkpoint against invariants C001-C012 "
                    "(see repro.contracts).",
    )
    parser.add_argument("path", help="graph export base path (.npz/.json "
                                     "pair) or serve checkpoint .npz")
    parser.add_argument("--policy", choices=list(POLICIES), default="strict",
                        help="strict: report violations (default); repair: "
                             "also attempt a deterministic repair; warn: "
                             "report but always exit 0 unless unreadable")
    parser.add_argument("--output", default=None, metavar="BASE",
                        help="with --policy repair: write the repaired "
                             "graph to BASE.npz/BASE.json")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable report as JSON")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    path = Path(args.path)

    try:
        kind, base = _resolve(path)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"repro-validate: {exc}", file=sys.stderr)
        return 2

    from ..resilience import CheckpointCorruptError

    extra = {"artifact": str(base.with_suffix(".npz")), "kind": kind}
    try:
        if kind == "checkpoint":
            from ..serve.checkpoint import load_checkpoint

            ckpt = load_checkpoint(base)
            extra["checkpoint_kind"] = ckpt.kind
            graph_name = ckpt.meta.get("graph")
            if graph_name is None:
                # Baseline checkpoints replay topology from the dataset;
                # there is nothing graph-shaped to contract-check.
                report = ValidationReport(subject=str(base))
                _emit(report, args.as_json, dict(
                    extra, note="container integrity OK; checkpoint "
                                "carries no graph sidecar"))
                return 0
            graph = _load_graph_permissive(base.parent / graph_name)
            extra["graph_sidecar"] = graph_name
        else:
            graph = _load_graph_permissive(base)
    except (CheckpointCorruptError, FileNotFoundError, ValueError,
            OSError) as exc:
        print(f"repro-validate: {exc}", file=sys.stderr)
        return 2

    if args.policy == "repair":
        repaired, report = validate_graph(graph, policy="repair",
                                          subject=str(base))
        recheck = check_graph(repaired)
        # NB: key name chosen not to collide with the report's own
        # ``repaired`` per-code counts in the JSON payload.
        extra["graph_rebuilt"] = repaired is not graph
        extra["repair_clean"] = not recheck.has_errors
        if args.output is not None:
            from ..data.io import save_graph

            save_graph(repaired, Path(args.output))
            extra["output"] = str(Path(args.output).with_suffix(".npz"))
        _emit(report, args.as_json, extra)
        return 0 if not recheck.has_errors else 1
    report = check_graph(graph)
    report.subject = str(base)
    _emit(report, args.as_json, extra)
    if args.policy == "warn":
        return 0
    return 1 if report.has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
