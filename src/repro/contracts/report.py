"""Machine-readable validation reports and the contract-violation error.

A validation pass produces a :class:`ValidationReport` — a list of
:class:`Finding` records, each tagged with a stable code (``C001``…),
a severity, the location (edge-type key or ``node_type.field``), an
offender count, and a bounded sample of offending indices.  Reports are
JSON-serializable (:meth:`ValidationReport.to_dict`) so the CLI, the
quarantine events in training history, and the serving shadow-validation
gate all speak the same format.

Under the ``strict`` policy, any error-severity finding raises
:class:`ContractViolation`, which carries the full report on
``exc.report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Maximum offender indices retained per finding — keeps reports bounded
#: no matter how poisoned the input is.
MAX_SAMPLE = 8

#: Severities in increasing order of concern.
SEVERITIES = ("info", "warning", "error")


@dataclass
class Finding:
    """One detected contract violation (or notable observation)."""

    code: str          # stable machine code, e.g. "C002"
    severity: str      # "error" | "warning" | "info"
    where: str         # location, e.g. "paper-cites->paper" or "paper.features"
    count: int         # number of offending records
    message: str       # human-readable one-liner
    sample: Tuple[int, ...] = ()   # up to MAX_SAMPLE offending indices
    repair: str = ""   # what the repair policy does about it

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        self.sample = tuple(int(i) for i in self.sample[:MAX_SAMPLE])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "where": self.where,
            "count": int(self.count),
            "message": self.message,
            "sample": list(self.sample),
            "repair": self.repair,
        }


@dataclass
class ValidationReport:
    """The outcome of checking one graph or batch against the contracts."""

    subject: str = "graph"   # "graph" | "batch" | free-form label
    findings: List[Finding] = field(default_factory=list)
    #: Filled by the ``repair`` policy: per-code number of records dropped
    #: or clipped while rebuilding.
    repaired: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, code: str, severity: str, where: str, count: int,
            message: str, sample: Sequence[int] = (),
            repair: str = "") -> Finding:
        finding = Finding(code=code, severity=severity, where=where,
                          count=int(count), message=message,
                          sample=tuple(sample), repair=repair)
        self.findings.append(finding)
        return finding

    def extend(self, other: "ValidationReport") -> None:
        self.findings.extend(other.findings)
        for code, n in other.repaired.items():
            self.repaired[code] = self.repaired.get(code, 0) + n

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def has_errors(self) -> bool:
        return any(f.severity == "error" for f in self.findings)

    @property
    def ok(self) -> bool:
        return not self.has_errors

    def codes(self) -> List[str]:
        """Sorted unique finding codes (handy for assertions)."""
        return sorted({f.code for f in self.findings})

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One line: ``graph: 2 errors, 1 warning (C002 C004 C006)``."""
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        if not self.findings:
            return f"{self.subject}: clean"
        codes = " ".join(self.codes())
        parts = []
        if n_err:
            parts.append(f"{n_err} error{'s' if n_err != 1 else ''}")
        if n_warn:
            parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
        n_info = len(self.findings) - n_err - n_warn
        if n_info:
            parts.append(f"{n_info} info")
        return f"{self.subject}: {', '.join(parts)} ({codes})"

    def render(self) -> str:
        """Multi-line human-readable report (used by the CLI)."""
        lines = [self.summary()]
        for f in self.findings:
            sample = (f" sample={list(f.sample)}" if f.sample else "")
            lines.append(
                f"  [{f.code}] {f.severity:7s} {f.where}: "
                f"{f.message} (count={f.count}){sample}"
            )
            if f.repair:
                lines.append(f"          repair: {f.repair}")
        if self.repaired:
            fixed = ", ".join(f"{c}={n}" for c, n in sorted(self.repaired.items()))
            lines.append(f"  repaired: {fixed}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (stored in quarantine events and CLI --json)."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.to_dict() for f in self.findings],
            "repaired": {k: int(v) for k, v in self.repaired.items()},
        }


class ContractViolation(ValueError):
    """Raised under the ``strict`` policy when error findings exist.

    Carries the full machine-readable report on :attr:`report`.
    """

    def __init__(self, report: ValidationReport,
                 message: Optional[str] = None) -> None:
        self.report = report
        super().__init__(message or report.summary())
