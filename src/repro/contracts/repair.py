"""Deterministic repair: rebuild a valid graph/batch from a poisoned one.

Repair is *order-preserving* and *pure*: the input object is never
mutated, the surviving records keep their original relative order (the
Eq. 13 message summation order — and therefore the training trajectory —
is a function of edge insertion order), and the same poisoned input
always repairs to the same output.

Repair actions per contract code (see :mod:`.validators` for the
catalogue):

- ``C001`` unknown edge types / node-type entries are dropped whole;
- ``C002`` edges with out-of-range endpoints are dropped;
- ``C003`` duplicate ``(src, dst)`` pairs keep their first occurrence;
- ``C004`` future-citing edges are dropped;
- ``C005``/``C009`` non-finite feature/attr entries are zeroed;
- ``C006`` non-finite-weight edges are dropped, negative weights clip
  to 0;
- ``C007`` feature/name/attr rows are truncated or zero-padded to the
  node count;
- ``C010``/``C011`` out-of-range, duplicate, or non-finite labels are
  dropped (keep-first);
- ``C012`` normalized weights are recomputed from the repaired raw
  weights.

Dedup (C003) runs *after* the drop rules so that a dangling or
future-citing edge can never shadow a valid edge with the same
``(src, dst)`` pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hetnet.graph import EdgeArray, HeteroGraph
from ..hetnet.schema import PAPER
from .report import ValidationReport
from .validators import CITES_KEY, duplicate_edge_mask


def _bump(report: ValidationReport, code: str, n: int) -> None:
    if n:
        report.repaired[code] = report.repaired.get(code, 0) + int(n)


def _fit_rows(values: np.ndarray, n: int) -> np.ndarray:
    """Truncate or zero-pad ``values`` along axis 0 to exactly ``n`` rows."""
    if values.shape[0] == n:
        return values
    if values.shape[0] > n:
        return values[:n].copy()
    pad_shape = (n - values.shape[0],) + values.shape[1:]
    return np.concatenate([values, np.zeros(pad_shape, dtype=values.dtype)])


def _zero_nonfinite(values: np.ndarray, report: ValidationReport,
                    code: str) -> np.ndarray:
    bad = ~np.isfinite(values)
    if not bad.any():
        return values
    fixed = values.copy()
    fixed[bad] = 0.0
    _bump(report, code, int(bad.sum()))
    return fixed


def _repair_edge_arrays(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray,
    num_src: int, num_dst: int, report: ValidationReport,
    years: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply drop/clip rules to one edge array; returns repaired copies."""
    keep = ((src >= 0) & (src < num_src) & (dst >= 0) & (dst < num_dst))
    _bump(report, "C002", int((~keep).sum()))

    finite_w = np.isfinite(weight)
    _bump(report, "C006", int((keep & ~finite_w).sum()))
    keep &= finite_w

    if years is not None:
        # Only applied on the cites key: src = cited, dst = citing.
        future = np.zeros(len(src), dtype=bool)
        idx = np.nonzero(keep)[0]
        if len(idx):
            future[idx] = years[src[idx]] > years[dst[idx]]
        _bump(report, "C004", int(future.sum()))
        keep &= ~future

    src, dst, weight = src[keep], dst[keep], weight[keep].copy()

    neg = weight < 0
    if neg.any():
        _bump(report, "C006", int(neg.sum()))
        weight[neg] = 0.0

    first = duplicate_edge_mask(src, dst)
    _bump(report, "C003", int((~first).sum()))
    return src[first], dst[first], weight[first]


# ----------------------------------------------------------------------
# Graph repair
# ----------------------------------------------------------------------
def repair_graph(graph: HeteroGraph, report: ValidationReport, *,
                 year_attr: str = "year") -> HeteroGraph:
    """Rebuild ``graph`` with every contract violation repaired.

    ``report`` (usually the output of :func:`~.validators.check_graph`)
    accumulates per-code repaired counts; the input graph is untouched.
    """
    schema = graph.schema
    known_types = set(schema.node_types)
    fixed = HeteroGraph(schema)

    # Nodes, names, features, attrs — per declared type only (C001 drops
    # unknown types by construction).
    dropped_types = [t for t in graph.num_nodes if t not in known_types]
    dropped_types += [t for t in graph.node_features
                      if t not in known_types and t not in dropped_types]
    _bump(report, "C001", len(dropped_types))

    for t in schema.node_types:
        n = int(graph.num_nodes.get(t, 0))
        names = graph.node_names.get(t)
        if names is not None and len(names) != n:
            _bump(report, "C007", 1)
            names = (list(names[:n]) if len(names) > n
                     else list(names) + [f"{t}:{i}"
                                         for i in range(len(names), n)])
        fixed.add_nodes(t, n, names)

        if t in graph.node_features:
            feats = np.asarray(graph.node_features[t], dtype=np.float64)
            if feats.shape[0] != n:
                _bump(report, "C007", 1)
                feats = _fit_rows(feats, n)
            fixed.node_features[t] = _zero_nonfinite(feats, report, "C005")

        for name, values in graph.node_attrs.get(t, {}).items():
            values = np.asarray(values)
            if values.shape[0] != n:
                _bump(report, "C007", 1)
                values = _fit_rows(values, n)
            if values.dtype.kind == "f":
                values = _zero_nonfinite(values, report, "C009")
            fixed.node_attrs[t][name] = values

    years = None
    if PAPER in fixed.node_attrs and year_attr in fixed.node_attrs[PAPER]:
        years = np.asarray(fixed.node_attrs[PAPER][year_attr])

    dropped_edge_types = 0
    for key, edge in graph.edges.items():
        if not schema.has_edge_type(tuple(key)):
            dropped_edge_types += edge.num_edges
            continue
        src_type, _, dst_type = key
        src, dst, weight = _repair_edge_arrays(
            edge.src, edge.dst, edge.weight,
            fixed.num_nodes[src_type], fixed.num_nodes[dst_type], report,
            years=years if tuple(key) == CITES_KEY else None,
        )
        fixed.set_edges(tuple(key), src, dst, weight)
    _bump(report, "C001", dropped_edge_types)
    return fixed


# ----------------------------------------------------------------------
# Batch repair
# ----------------------------------------------------------------------
def repair_batch(batch, report: ValidationReport):
    """Rebuild a :class:`~repro.core.hgn.GraphBatch` with violations fixed.

    Normalized weights are recomputed from the repaired raw weights
    exactly as :meth:`GraphBatch.from_graph` does, so a repaired batch is
    indistinguishable from one built from a repaired graph.
    """
    from ..core.hgn import GraphBatch  # lazy: contracts must not hard-depend on core

    edges: Dict[Tuple[str, str, str], Tuple[np.ndarray, ...]] = {}
    for key, (src, dst, weight, norm) in batch.edges.items():
        src_type, _, dst_type = key
        new_src, new_dst, new_weight = _repair_edge_arrays(
            src, dst, weight,
            batch.num_nodes.get(src_type, 0),
            batch.num_nodes.get(dst_type, 0), report,
        )
        if (len(new_src) == len(src) and np.isfinite(norm).all()):
            new_norm = norm
        else:
            max_w = new_weight.max() if len(new_weight) else 1.0
            new_norm = new_weight / max(max_w, 1e-12)
            _bump(report, "C012", int((~np.isfinite(norm)).sum()))
        edges[key] = (new_src, new_dst, new_weight, new_norm)

    features = {t: _zero_nonfinite(np.asarray(f, dtype=np.float64),
                                   report, "C005")
                for t, f in batch.features.items()}

    num_papers = batch.num_nodes.get(PAPER, 0)
    ids = np.asarray(batch.labeled_ids, dtype=np.intp)
    labels = np.asarray(batch.labels, dtype=np.float64)
    if len(labels) != len(ids):
        n = min(len(labels), len(ids))
        _bump(report, "C011", max(len(labels), len(ids)) - n)
        ids, labels = ids[:n], labels[:n]
    keep = (ids >= 0) & (ids < num_papers)
    _bump(report, "C010", int((~keep).sum()))
    finite = np.isfinite(labels)
    _bump(report, "C011", int((keep & ~finite).sum()))
    keep &= finite
    ids, labels = ids[keep], labels[keep]
    _, first = np.unique(ids, return_index=True)
    if len(first) != len(ids):
        _bump(report, "C010", len(ids) - len(first))
        first = np.sort(first)
        ids, labels = ids[first], labels[first]

    return GraphBatch(
        node_types=list(batch.node_types), features=features, edges=edges,
        num_nodes=dict(batch.num_nodes), labeled_ids=ids, labels=labels,
    )
