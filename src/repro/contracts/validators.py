"""Invariant checks for :class:`HeteroGraph` and :class:`GraphBatch`.

The contract catalogue (stable codes, used by quarantine reports, the
fuzz suite, and the CLI):

========  ========  =====================================================
code      severity  invariant
========  ========  =====================================================
``C001``  error     schema conformance: every edge-type key and node type
                    present in the graph is declared by its schema
``C002``  error     no dangling endpoints: edge src/dst ids in
                    ``[0, num_nodes[type])``
``C003``  error     no duplicate ``(src, dst)`` pairs within an edge type
``C004``  error     temporal sanity: no citation edge into a later-year
                    paper (``cites`` src = cited, dst = citing, so
                    ``year[src] <= year[dst]`` must hold)
``C005``  error     node feature matrices are finite (no NaN/Inf)
``C006``  error     edge weights finite and non-negative
``C007``  error     shape conformance: feature/attr/name rows match the
                    node count of their type
``C008``  info      node-name uniqueness (duplicates reported, never
                    fatal — the synthetic generator legitimately reuses
                    title prefixes)
``C009``  error     float node attributes are finite
``C010``  error     batch ``labeled_ids`` in range and unique
``C011``  error     batch ``labels`` finite and aligned with
                    ``labeled_ids``
``C012``  error     batch normalized weights finite
========  ========  =====================================================

All checks are vectorized numpy scans; a clean pass over the bench-scale
graph costs a few milliseconds (see the ``contracts`` section of
``benchmarks/results/BENCH_perf.json``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..hetnet.graph import HeteroGraph
from ..hetnet.schema import PAPER
from .report import ValidationReport

#: The one deliberately-directed edge type (src = cited, dst = citing).
CITES_KEY = (PAPER, "cites", PAPER)


def _sample(indices: np.ndarray) -> Tuple[int, ...]:
    return tuple(int(i) for i in indices[:8])


def _key_str(key: Sequence[str]) -> str:
    return f"{key[0]}-{key[1]}->{key[2]}"


# ----------------------------------------------------------------------
# Shared edge-array checks (graph and batch paths)
# ----------------------------------------------------------------------
def _check_edge_arrays(report: ValidationReport, key: Tuple[str, str, str],
                       src: np.ndarray, dst: np.ndarray,
                       weight: np.ndarray, num_src: int,
                       num_dst: int) -> None:
    where = _key_str(key)
    bad_src = (src < 0) | (src >= num_src)
    bad_dst = (dst < 0) | (dst >= num_dst)
    dangling = bad_src | bad_dst
    if dangling.any():
        idx = np.nonzero(dangling)[0]
        report.add(
            "C002", "error", where, len(idx),
            f"dangling endpoints ({int(bad_src.sum())} src, "
            f"{int(bad_dst.sum())} dst out of range)",
            sample=_sample(idx), repair="drop edge",
        )
    bad_w = ~np.isfinite(weight)
    if bad_w.any():
        idx = np.nonzero(bad_w)[0]
        report.add("C006", "error", where, len(idx),
                   "non-finite edge weights", sample=_sample(idx),
                   repair="drop edge")
    neg_w = np.isfinite(weight) & (weight < 0)
    if neg_w.any():
        idx = np.nonzero(neg_w)[0]
        report.add("C006", "error", where, len(idx),
                   "negative edge weights", sample=_sample(idx),
                   repair="clip to 0")
    if len(src):
        pairs = np.stack([src, dst], axis=1)
        _, first = np.unique(pairs, axis=0, return_index=True)
        keep = np.zeros(len(src), dtype=bool)
        keep[first] = True
        if not keep.all():
            idx = np.nonzero(~keep)[0]
            report.add("C003", "error", where, len(idx),
                       "duplicate (src, dst) edges", sample=_sample(idx),
                       repair="keep first occurrence, drop the rest")


def duplicate_edge_mask(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Boolean keep-mask: True for the first occurrence of each pair."""
    keep = np.zeros(len(src), dtype=bool)
    if len(src):
        pairs = np.stack([src, dst], axis=1)
        _, first = np.unique(pairs, axis=0, return_index=True)
        keep[first] = True
    return keep


def _check_temporal(report: ValidationReport, src: np.ndarray,
                    dst: np.ndarray, years: np.ndarray,
                    num_papers: int) -> None:
    """C004: a paper must not cite a paper published after it.

    Dangling endpoints are masked out first (they are already C002
    findings) so the year lookup never indexes out of range.
    """
    in_range = ((src >= 0) & (src < num_papers)
                & (dst >= 0) & (dst < num_papers))
    if not in_range.any():
        return
    idx = np.nonzero(in_range)[0]
    future = years[src[idx]] > years[dst[idx]]
    if future.any():
        offenders = idx[future]
        report.add(
            "C004", "error", _key_str(CITES_KEY), len(offenders),
            "citation into a later-year paper (cited year > citing year)",
            sample=_sample(offenders), repair="drop edge",
        )


# ----------------------------------------------------------------------
# Graph-level contract check
# ----------------------------------------------------------------------
def check_graph(graph: HeteroGraph, *,
                year_attr: str = "year") -> ValidationReport:
    """Scan ``graph`` against the full contract catalogue.

    Pure read-only — never mutates or raises on findings; policy
    enforcement lives in :func:`repro.contracts.validate_graph`.
    """
    report = ValidationReport(subject="graph")
    schema = graph.schema
    known_types = set(schema.node_types)

    # C001 — schema conformance
    for key in graph.edges:
        if not schema.has_edge_type(tuple(key)):
            report.add("C001", "error", _key_str(key),
                       graph.edges[key].num_edges,
                       "edge type not declared by the schema",
                       repair="drop all edges of this type")
    for mapping, label in ((graph.num_nodes, "num_nodes"),
                           (graph.node_features, "features"),
                           (graph.node_names, "names")):
        for t in mapping:
            if t not in known_types:
                report.add("C001", "error", f"{t}.{label}", 1,
                           "node type not declared by the schema",
                           repair="drop this node type")

    # C007 — shape conformance
    for t, feats in graph.node_features.items():
        n = graph.num_nodes.get(t)
        if n is not None and feats.shape[0] != n:
            report.add("C007", "error", f"{t}.features", 1,
                       f"feature rows ({feats.shape[0]}) != node count ({n})",
                       repair="truncate or zero-pad rows to the node count")
    for t, names in graph.node_names.items():
        n = graph.num_nodes.get(t)
        if n is not None and len(names) != n:
            report.add("C007", "error", f"{t}.names", 1,
                       f"name rows ({len(names)}) != node count ({n})",
                       repair="truncate or pad names to the node count")
    for t, attrs in graph.node_attrs.items():
        n = graph.num_nodes.get(t)
        for name, values in attrs.items():
            if n is not None and values.shape[0] != n:
                report.add("C007", "error", f"{t}.{name}", 1,
                           f"attr rows ({values.shape[0]}) != node count ({n})",
                           repair="truncate or pad rows to the node count")

    # C002/C003/C006 per edge type (known schema keys only; unknown keys
    # are already fatal C001s and get dropped whole by repair)
    for key, edge in graph.edges.items():
        if not schema.has_edge_type(tuple(key)):
            continue
        src_type, _, dst_type = key
        _check_edge_arrays(report, tuple(key), edge.src, edge.dst,
                           edge.weight,
                           graph.num_nodes.get(src_type, 0),
                           graph.num_nodes.get(dst_type, 0))

    # C004 — temporal sanity on the citation edges
    if (CITES_KEY in graph.edges and PAPER in graph.node_attrs
            and year_attr in graph.node_attrs[PAPER]):
        years = np.asarray(graph.node_attrs[PAPER][year_attr])
        edge = graph.edges[CITES_KEY]
        _check_temporal(report, edge.src, edge.dst, years,
                        graph.num_nodes.get(PAPER, 0))

    # C005 — finite features
    for t, feats in graph.node_features.items():
        bad = ~np.isfinite(feats)
        if bad.any():
            rows = np.nonzero(bad.any(axis=tuple(range(1, feats.ndim))))[0]
            report.add("C005", "error", f"{t}.features", len(rows),
                       f"non-finite feature values in {len(rows)} rows",
                       sample=_sample(rows), repair="zero the bad entries")

    # C009 — finite float attrs
    for t, attrs in graph.node_attrs.items():
        for name, values in attrs.items():
            if values.dtype.kind != "f":
                continue
            bad = ~np.isfinite(values)
            if bad.any():
                if values.ndim > 1:
                    rows = np.nonzero(
                        bad.any(axis=tuple(range(1, values.ndim))))[0]
                else:
                    rows = np.nonzero(bad)[0]
                report.add("C009", "error", f"{t}.{name}", len(rows),
                           "non-finite attribute values",
                           sample=_sample(rows),
                           repair="zero the bad entries")

    # C008 — name uniqueness (informational only)
    for t, names in graph.node_names.items():
        if len(names) != len(set(names)):
            dup = len(names) - len(set(names))
            report.add("C008", "info", f"{t}.names", dup,
                       "duplicate node names (ids stay unique)")

    return report


# ----------------------------------------------------------------------
# Batch-level contract check
# ----------------------------------------------------------------------
def check_batch(batch) -> ValidationReport:
    """Scan a :class:`repro.core.hgn.GraphBatch` against the contracts.

    ``batch`` is duck-typed (node_types/features/edges/num_nodes/
    labeled_ids/labels) so this module never imports ``repro.core``.
    """
    report = ValidationReport(subject="batch")

    for key, (src, dst, weight, norm) in batch.edges.items():
        src_type, _, dst_type = key
        _check_edge_arrays(report, tuple(key), src, dst, weight,
                           batch.num_nodes.get(src_type, 0),
                           batch.num_nodes.get(dst_type, 0))
        bad_norm = ~np.isfinite(norm)
        if bad_norm.any():
            idx = np.nonzero(bad_norm)[0]
            report.add("C012", "error", _key_str(key), len(idx),
                       "non-finite normalized weights", sample=_sample(idx),
                       repair="recompute norm from raw weights")

    for t, feats in batch.features.items():
        bad = ~np.isfinite(feats)
        if bad.any():
            rows = np.nonzero(bad.any(axis=tuple(range(1, feats.ndim))))[0]
            report.add("C005", "error", f"{t}.features", len(rows),
                       f"non-finite feature values in {len(rows)} rows",
                       sample=_sample(rows), repair="zero the bad entries")

    num_papers = batch.num_nodes.get(PAPER, 0)
    ids = np.asarray(batch.labeled_ids)
    labels = np.asarray(batch.labels)
    bad_ids = (ids < 0) | (ids >= num_papers)
    if bad_ids.any():
        idx = np.nonzero(bad_ids)[0]
        report.add("C010", "error", "labeled_ids", len(idx),
                   "labeled paper ids out of range", sample=_sample(idx),
                   repair="drop the label")
    if len(ids) != len(np.unique(ids)):
        dup = len(ids) - len(np.unique(ids))
        report.add("C010", "error", "labeled_ids", dup,
                   "duplicate labeled paper ids",
                   repair="keep first occurrence")
    if len(labels) != len(ids):
        report.add("C011", "error", "labels", abs(len(labels) - len(ids)),
                   f"labels ({len(labels)}) misaligned with labeled_ids "
                   f"({len(ids)})", repair="truncate to the shorter length")
    bad_labels = ~np.isfinite(labels)
    if bad_labels.any():
        idx = np.nonzero(bad_labels)[0]
        report.add("C011", "error", "labels", len(idx),
                   "non-finite label values", sample=_sample(idx),
                   repair="drop the label")
    return report
