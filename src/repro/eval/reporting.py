"""Plain-text rendering of the paper's tables and figures."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table2(results: Mapping[str, Mapping[str, "object"]],
                  order: Sequence[str],
                  stars: Mapping[str, bool] | None = None) -> str:
    """Table-II layout: algorithms x datasets, RMSE cells."""
    datasets = list(results.keys())
    rows: List[List[str]] = []
    for name in order:
        row = [name]
        for ds in datasets:
            result = results[ds].get(name)
            if result is None:
                row.append("-")
                continue
            cell = f"{result.test_rmse:.4f}"
            if stars and stars.get(ds) and name == "CATE-HGN":
                cell += "*"
            row.append(cell)
        rows.append(row)
    return render_table(["Algorithm"] + datasets, rows,
                        title="Table II: RMSE of compared algorithms")


def render_bar_chart(labels: Sequence[str], values: Sequence[float],
                     title: str = "", width: int = 40) -> str:
    """ASCII bar chart (Fig. 4 style)."""
    peak = max(values) if values else 1.0
    lines = [title] if title else []
    label_w = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / max(peak, 1e-12))))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.4f}")
    return "\n".join(lines)


def render_series(xs: Sequence, ys: Sequence[float], title: str = "",
                  x_name: str = "x", y_name: str = "RMSE") -> str:
    """Small x/y series (Fig. 4(b)(c) sweeps)."""
    lines = [title] if title else []
    lines.append(f"{x_name:>10s}  {y_name}")
    for x, y in zip(xs, ys):
        lines.append(f"{str(x):>10s}  {y:.4f}")
    return "\n".join(lines)
