"""Regression metrics and significance testing (Table II)."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error — the paper's headline metric."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return float("nan")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(np.asarray(y_true) - np.asarray(y_pred))))


def r2(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else float("nan")


def paired_significance(
    y_true: np.ndarray, pred_a: np.ndarray, pred_b: np.ndarray
) -> Tuple[float, float]:
    """Paired t-test on squared errors of two models (Table II asterisks).

    Returns (t statistic, p value); a small p with a negative t means
    model A's errors are significantly smaller than model B's.
    """
    err_a = (np.asarray(y_true) - np.asarray(pred_a)) ** 2
    err_b = (np.asarray(y_true) - np.asarray(pred_b)) ** 2
    t, p = stats.ttest_rel(err_a, err_b)
    return float(t), float(p)
