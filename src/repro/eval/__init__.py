"""Metrics, significance tests, experiment runners, and table rendering.

The runner symbols are loaded lazily (PEP 562): ``repro.eval.runner``
imports the baseline roster, which imports :mod:`repro.core`, which needs
:mod:`repro.eval.metrics` — lazy loading breaks that cycle.
"""

from .metrics import mae, paired_significance, r2, rmse
from .reporting import render_bar_chart, render_series, render_table, render_table2

_RUNNER_EXPORTS = {
    "ModelResult",
    "evaluate_model",
    "run_roster",
    "full_table2",
    "make_cate_variants",
    "default_cate_config",
    "significance_stars",
}

__all__ = [
    "rmse",
    "mae",
    "r2",
    "paired_significance",
    "render_table",
    "render_table2",
    "render_bar_chart",
    "render_series",
] + sorted(_RUNNER_EXPORTS)


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
