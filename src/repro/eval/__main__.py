"""Command-line experiment runner.

Usage::

    python -m repro.eval table2 [--papers 1000] [--authors 200] [--seed 3]
    python -m repro.eval quick   # three-model sanity run on a small world

Prints Table-II-style RMSE results to stdout; the pytest benchmark suite
(`pytest benchmarks/ --benchmark-only`) remains the canonical way to
regenerate every paper artifact with assertions.
"""

from __future__ import annotations

import argparse

from ..baselines import make_baselines
from ..data import WorldConfig, make_all_datasets
from .runner import make_cate_variants, run_roster, significance_stars
from .reporting import render_table2

ORDER = ["BERT", "GAT", "CCP", "CPDF", "metapath2vec", "hin2vec", "R-GCN",
         "HAN", "HetGNN", "HGT", "MAGNN", "HGCN", "HGN", "CA-HGN",
         "CATE-HGN"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.eval",
                                     description=__doc__)
    parser.add_argument("experiment", choices=["table2", "quick"])
    parser.add_argument("--papers", type=int, default=1000)
    parser.add_argument("--authors", type=int, default=200)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--dim", type=int, default=24)
    args = parser.parse_args(argv)

    config = WorldConfig(num_papers=args.papers, num_authors=args.authors,
                         seed=args.seed)
    datasets = make_all_datasets(config)

    if args.experiment == "quick":
        roster = make_cate_variants(dim=16, outer_iters=8, mini_iters=5)
        results = {"DBLP-full": run_roster(datasets["full"], roster,
                                           verbose=True)}
        print()
        print(render_table2(results, list(roster)))
        return 0

    table = {}
    for key in ("full", "single", "random"):
        dataset = datasets[key]
        print(f"[{dataset.name}]")
        roster = {}
        roster.update(make_baselines(dim=2 * args.dim, epochs=60))
        roster.update(make_cate_variants(dim=args.dim, outer_iters=18,
                                         mini_iters=8, kappa=40, patience=8))
        table[dataset.name] = run_roster(dataset, roster, verbose=True)
    stars = significance_stars(table, {d.name: d for d in datasets.values()})
    print()
    print(render_table2(table, ORDER, stars=stars))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
