"""Experiment runner: trains model rosters and collects Table-II rows."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..baselines import make_baselines
from ..baselines.api import CitationModel
from ..core import CATEHGN, CATEHGNConfig
from ..core.hgn import GraphBatch
from ..data.dblp import CitationDataset
from .metrics import mae, paired_significance, rmse


def warm_structure_cache(dataset: CitationDataset) -> None:
    """Prebuild the shared message-passing structure for ``dataset.graph``.

    Every estimator that trains on this dataset with ``share_structure=True``
    (the CATE-HGN trainer and all GNN baselines) then reuses one
    :class:`~repro.hetnet.structure.BatchStructure` instead of re-sorting
    every edge type per model.  TE variants that rewrite term edges bump the
    graph's topology version and correctly fall back to a fresh build.
    """
    empty = np.array([], dtype=np.intp)
    batch = GraphBatch.from_graph(dataset.graph, empty, np.array([]),
                                  share_structure=True)
    batch.structure  # force the build into the graph's shared cell


@dataclass
class ModelResult:
    name: str
    dataset: str
    test_rmse: float
    val_rmse: float
    test_mae: float
    seconds: float
    predictions: np.ndarray


def evaluate_model(name: str, model: CitationModel,
                   dataset: CitationDataset) -> ModelResult:
    """Fit one model on one dataset and score the temporal test split."""
    start = time.perf_counter()
    model.fit(dataset)
    predictions = model.predict()
    elapsed = time.perf_counter() - start
    test = dataset.test_idx
    val = dataset.val_idx if len(dataset.val_idx) else dataset.train_idx
    return ModelResult(
        name=name,
        dataset=dataset.name,
        test_rmse=rmse(dataset.labels[test], predictions[test]),
        val_rmse=rmse(dataset.labels[val], predictions[val]),
        test_mae=mae(dataset.labels[test], predictions[test]),
        seconds=elapsed,
        predictions=predictions,
    )


def default_cate_config(dim: int = 16, seed: int = 0,
                        **overrides) -> CATEHGNConfig:
    """CPU-scale CATE-HGN settings used across the benchmark harness."""
    params = dict(dim=dim, attention_heads=2, outer_iters=12, mini_iters=4,
                  lr=0.03, kappa=30, patience=6, seed=seed)
    params.update(overrides)
    return CATEHGNConfig(**params)


def make_cate_variants(dim: int = 16, seed: int = 0,
                       **overrides) -> Dict[str, CitationModel]:
    """The paper's three ablation rows: HGN, CA-HGN, CATE-HGN."""
    return {
        "HGN": CATEHGN(default_cate_config(dim, seed, use_ca=False,
                                           use_te=False, **overrides)),
        "CA-HGN": CATEHGN(default_cate_config(dim, seed, use_te=False,
                                              **overrides)),
        "CATE-HGN": CATEHGN(default_cate_config(dim, seed, **overrides)),
    }


def run_roster(dataset: CitationDataset,
               models: Dict[str, CitationModel],
               verbose: bool = False) -> Dict[str, ModelResult]:
    """Fit and score every model in ``models`` on one dataset."""
    results = {}
    warm_structure_cache(dataset)  # one structure build for the whole roster
    for name, model in models.items():
        result = evaluate_model(name, model, dataset)
        results[name] = result
        if verbose:
            print(f"  {name:<14s} RMSE={result.test_rmse:7.4f} "
                  f"({result.seconds:5.1f}s)")
    return results


def full_table2(datasets: Dict[str, CitationDataset],
                dim: int = 16, epochs: int = 60, seed: int = 0,
                verbose: bool = False) -> Dict[str, Dict[str, ModelResult]]:
    """Train all fifteen models on every dataset (Table II)."""
    table: Dict[str, Dict[str, ModelResult]] = {}
    for ds_name, dataset in datasets.items():
        if verbose:
            print(f"[{ds_name}]")
        roster: Dict[str, CitationModel] = {}
        roster.update(make_baselines(dim=2 * dim, epochs=epochs, seed=seed))
        roster.update(make_cate_variants(dim=dim, seed=seed))
        table[ds_name] = run_roster(dataset, roster, verbose=verbose)
    return table


def significance_stars(table: Dict[str, Dict[str, ModelResult]],
                       datasets: Dict[str, CitationDataset],
                       champion: str = "CATE-HGN",
                       alpha: float = 0.05) -> Dict[str, bool]:
    """Paired t-test of the champion vs the best non-champion per dataset."""
    stars = {}
    for ds_name, results in table.items():
        dataset = datasets[ds_name]
        test = dataset.test_idx
        y = dataset.labels[test]
        rivals = {n: r for n, r in results.items() if n != champion}
        best_rival = min(rivals.values(), key=lambda r: r.test_rmse)
        _t, p = paired_significance(
            y, results[champion].predictions[test],
            best_rival.predictions[test],
        )
        better = results[champion].test_rmse < best_rival.test_rmse
        stars[ds_name] = bool(better and p < alpha)
    return stars
