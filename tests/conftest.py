"""Shared fixtures: tiny worlds/datasets sized for fast unit tests."""

import numpy as np
import pytest

from repro.data import (
    TextArtifacts,
    WorldConfig,
    generate_world,
    make_dblp_full,
    make_dblp_random,
    make_dblp_single,
)

TINY_DOMAINS = ("data", "learning", "system")


def tiny_config(**overrides) -> WorldConfig:
    params = dict(
        num_papers=150,
        num_authors=60,
        venues_per_domain=2,
        seed=11,
        domain_names=TINY_DOMAINS,
    )
    params.update(overrides)
    return WorldConfig(**params)


@pytest.fixture(scope="session")
def tiny_world():
    return generate_world(tiny_config())


@pytest.fixture(scope="session")
def tiny_text(tiny_world):
    return TextArtifacts.fit(tiny_world, dim=16)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_world, tiny_text):
    return make_dblp_full(world=tiny_world, text=tiny_text)


@pytest.fixture(scope="session")
def tiny_random_dataset(tiny_world, tiny_text):
    return make_dblp_random(world=tiny_world, text=tiny_text)


@pytest.fixture(scope="session")
def tiny_single_dataset(tiny_world):
    return make_dblp_single(world=tiny_world, feature_dim=16)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
