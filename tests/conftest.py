"""Shared fixtures: tiny worlds/datasets sized for fast unit tests."""

import threading

import numpy as np
import pytest

from repro.analysis.concurrency import detect_races

from repro.data import (
    TextArtifacts,
    WorldConfig,
    generate_world,
    make_dblp_full,
    make_dblp_random,
    make_dblp_single,
)

TINY_DOMAINS = ("data", "learning", "system")


def tiny_config(**overrides) -> WorldConfig:
    params = dict(
        num_papers=150,
        num_authors=60,
        venues_per_domain=2,
        seed=11,
        domain_names=TINY_DOMAINS,
    )
    params.update(overrides)
    return WorldConfig(**params)


@pytest.fixture(scope="session")
def tiny_world():
    return generate_world(tiny_config())


@pytest.fixture(scope="session")
def tiny_text(tiny_world):
    return TextArtifacts.fit(tiny_world, dim=16)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_world, tiny_text):
    return make_dblp_full(world=tiny_world, text=tiny_text)


@pytest.fixture(scope="session")
def tiny_random_dataset(tiny_world, tiny_text):
    return make_dblp_random(world=tiny_world, text=tiny_text)


@pytest.fixture(scope="session")
def tiny_single_dataset(tiny_world):
    return make_dblp_single(world=tiny_world, feature_dim=16)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def run_threads():
    """Barrier-started, exception-collecting worker pool for stress tests.

    ``run(worker, count=8)`` starts ``count`` threads that all block on a
    barrier (so the contended section genuinely overlaps), runs
    ``worker(tid)`` in each, joins with a timeout, and asserts that no
    worker raised and none hung.  The whole pool runs inside a
    ``detect_races()`` window (tsan-lite), so a lock-order inversion or
    a lock-held sleep anywhere under the workers fails the test with a
    diagnosis instead of a flake.
    """

    def run(worker, count=8, timeout=60, races=True):
        errors = []

        def wrapped(tid):
            try:
                barrier.wait(timeout=timeout)
                worker(tid)
            except Exception as exc:  # noqa: BLE001 — collected, asserted
                errors.append((tid, repr(exc)))

        def pool():
            threads = [
                threading.Thread(target=wrapped, args=(tid,), daemon=True)
                for tid in range(count)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=timeout)
            return [t for t in threads if t.is_alive()]

        if races:
            with detect_races(raise_immediately=False) as detector:
                barrier = threading.Barrier(count)
                hung = pool()
            assert not detector.violations, detector.violations[:3]
        else:
            barrier = threading.Barrier(count)
            hung = pool()
        assert not hung, f"{len(hung)} worker thread(s) hung"
        assert not errors, errors[:5]

    return run
